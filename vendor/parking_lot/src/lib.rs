//! Offline drop-in subset of the [parking_lot](https://docs.rs/parking_lot)
//! API: non-poisoning `Mutex`, `RwLock`, and `Condvar` built on `std::sync`.
//!
//! The build environment has no crates.io access. Upstream parking_lot's
//! value over std is performance and poison-free guards; this stub keeps the
//! poison-free API (the property the workspace relies on) and delegates the
//! locking itself to std. A poisoned std lock (a panic while holding the
//! guard) is transparently recovered, matching parking_lot semantics.

use std::fmt;
use std::sync::TryLockError;
use std::time::Duration;

/// A mutual-exclusion primitive whose guards never poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard { inner }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A reader-writer lock whose guards never poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner }
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard { inner }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(inner) => Some(RwLockWriteGuard { inner }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Outcome of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until another thread notifies this condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(&mut guard.inner, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(&mut guard.inner, |g| {
            let (g, result) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// Runs `f` on the guard by value; std's condvar wait consumes and returns
/// the guard while our wrapper holds it in place.
fn replace_guard<'a, T>(
    slot: &mut std::sync::MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is forgotten before being overwritten, and `f` always
    // returns a live guard for the same mutex, so no double unlock occurs
    // and `slot` is never left dangling.
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        assert!(*ready);
        handle.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let result = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(result.timed_out());
    }
}
