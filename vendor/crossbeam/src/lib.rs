//! Offline drop-in subset of the [crossbeam](https://docs.rs/crossbeam) API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice the MedSen workspace uses: `crossbeam::channel` MPMC channels
//! (bounded and unbounded) with `send`/`try_send`/`recv`/`try_recv`/
//! `recv_timeout` and disconnect semantics. The implementation is a
//! `Mutex<VecDeque>` + two condvars — simpler and slower than upstream's
//! lock-free queues, but semantically equivalent for the simulation-scale
//! workloads in this repository.

pub mod channel;

pub use channel::{bounded, unbounded};

/// Spawns scoped threads (thin alias of `std::thread::scope` for API parity).
pub mod thread {
    /// Crossbeam-style scope entry point delegating to the standard library.
    pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}
