//! Multi-producer multi-consumer channels with crossbeam's API surface.
//!
//! Both [`bounded`] and [`unbounded`] channels are backed by a shared
//! `Mutex<VecDeque>` with separate not-empty / not-full condvars. Sender
//! and receiver counts are tracked so that dropping the last peer on either
//! side disconnects the channel, exactly like upstream crossbeam:
//!
//! - With no receivers, `send`/`try_send` fail with `Disconnected`.
//! - With no senders, `recv` drains remaining messages then fails with
//!   `RecvError` (`try_recv` reports `Disconnected`).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// Whether the failure was a full buffer.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    /// Whether the failure was a disconnect.
    pub fn is_disconnected(&self) -> bool {
        matches!(self, TrySendError::Disconnected(_))
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half of a channel; clonable for multiple producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a channel; clonable for multiple consumers.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel that holds at most `capacity` in-flight messages.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        capacity > 0,
        "zero-capacity rendezvous channels are not supported by this stub"
    );
    make_channel(Some(capacity))
}

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make_channel(None)
}

fn make_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = self
                .shared
                .capacity
                .is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(msg);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Sends `msg` without blocking; fails if the channel is full.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if self
            .shared
            .capacity
            .is_some_and(|cap| state.queue.len() >= cap)
        {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().queue.is_empty()
    }

    /// The channel's capacity (`None` for unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake receivers so they can observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receives a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives a message, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, result) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
            if result.timed_out() && state.queue.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().queue.is_empty()
    }

    /// Drains and returns all currently buffered messages (blocking iterator
    /// in upstream; here an eager helper used via `iter().collect()`).
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Blocking iterator over received messages; ends on disconnect.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Wake blocked senders so they can observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn dropping_senders_disconnects() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn dropping_receiver_disconnects_sender() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert!(tx.try_send(2).unwrap_err().is_disconnected());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<i32>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn mpmc_across_threads_delivers_everything() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn blocking_send_unblocks_when_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }
}
