//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an associated type.
///
/// Unlike upstream proptest there is no value tree / shrinking; a strategy
/// is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Rejects generated values failing `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

// Upstream's `BoxedStrategy` equivalent: lets `prop_flat_map` arms with
// different strategy types erase to `Box<dyn Strategy<Value = T>>`.
impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.base.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
        )*
    };
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*
    };
}

arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// The canonical strategy for a type: `any::<u8>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String strategies from regex-lite patterns (`"[a-z]{1,8}"`).
///
/// Supported syntax: literal characters, character classes with ranges and
/// singles (`[a-z0-9_]`), and the quantifiers `{m}`, `{m,n}`, `?`, `*`
/// (0–8 repeats), and `+` (1–8 repeats). Anything else panics with a
/// description, so unsupported patterns fail loudly rather than silently
/// generating wrong data.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut spans = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some(ch) => ch,
                        None => panic!("unterminated character class in regex {pattern:?}"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.next() {
                            Some(']') | None => {
                                panic!("dangling '-' in character class in regex {pattern:?}")
                            }
                            Some(hi) => spans.push((lo, hi)),
                        }
                    } else {
                        spans.push((lo, lo));
                    }
                }
                Atom::Class(spans)
            }
            '\\' => match chars.next() {
                Some('d') => Atom::Class(vec![('0', '9')]),
                Some('w') => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                Some(escaped) => Atom::Literal(escaped),
                None => panic!("dangling escape in regex {pattern:?}"),
            },
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("regex feature {c:?} is not supported by the proptest stub ({pattern:?})")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().unwrap_or_else(|_| {
                            panic!("bad quantifier {{{spec}}} in regex {pattern:?}")
                        }),
                        n.trim().parse().unwrap_or_else(|_| {
                            panic!("bad quantifier {{{spec}}} in regex {pattern:?}")
                        }),
                    ),
                    None => {
                        let exact = spec.trim().parse().unwrap_or_else(|_| {
                            panic!("bad quantifier {{{spec}}} in regex {pattern:?}")
                        });
                        (exact, exact)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "empty quantifier range in regex {pattern:?}");
        atoms.push((atom, min, max));
    }
    atoms
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, min, max) in parse_pattern(pattern) {
        let count = rng.random_range(min..=max);
        for _ in 0..count {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(spans) => {
                    let total: u32 = spans
                        .iter()
                        .map(|&(lo, hi)| (hi as u32).saturating_sub(lo as u32) + 1)
                        .sum();
                    let mut pick = rng.random_range(0..total);
                    for &(lo, hi) in spans {
                        let span = (hi as u32) - (lo as u32) + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick).expect("valid char"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}
