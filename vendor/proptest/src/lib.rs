//! Offline drop-in subset of the [proptest](https://docs.rs/proptest) API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of proptest the MedSen workspace uses: the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, range and tuple strategies, regex-lite
//! string strategies, `collection::{vec, btree_set}`, `any::<T>()`, the
//! [`proptest!`] block macro with `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports its seed and generated case
//!   number; it does not minimize. Failures are still reproducible because
//!   case RNGs are derived deterministically from the test's source
//!   location and case index.
//! - **Regex strategies** (`"[a-z]{1,8}"` as a `Strategy<Value = String>`)
//!   support only the subset used here: literals, `[a-z0-9_]`-style
//!   classes, and `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property-test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            __left,
            __right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Fails the current property-test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left != __right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __left
        );
    }};
}

/// Discards the current case (counts as neither pass nor fail) unless
/// `cond` holds. This stub simply skips the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares a block of property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]`-style
/// function (attributes written on it are passed through) that runs the
/// body against `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(
                    &__config,
                    concat!(file!(), "::", stringify!($name)),
                    |__rng| {
                        let ($($pat,)*) = (
                            $($crate::strategy::Strategy::generate(&($strat), __rng),)*
                        );
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges honour their bounds.
        #[test]
        fn ranges_in_bounds(a in 3u8..9, b in -2i32..=2, x in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2..=2).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
        }

        /// Collections honour their size specs.
        #[test]
        fn collections_sized(
            v in crate::collection::vec(any::<u8>(), 2..5),
            s in crate::collection::btree_set(1u8..=9, 1..=9),
            exact in crate::collection::vec(0u8..16, 9),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!((1..=9).contains(&s.len()));
            prop_assert_eq!(exact.len(), 9);
        }

        /// prop_map / prop_flat_map compose.
        #[test]
        fn combinators_compose(
            pair in (1usize..4).prop_flat_map(|n| {
                crate::collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v))
            }),
        ) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }

        /// Regex-lite string strategies.
        #[test]
        fn regex_strings(word in "[a-z]{1,8}") {
            prop_assert!(!word.is_empty() && word.len() <= 8);
            prop_assert!(word.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    proptest! {
        /// Default config path (no inner attribute) also expands.
        #[test]
        fn default_config_block(flag in any::<bool>(), tuple in (0u8..4, 0u8..4)) {
            prop_assume!(tuple.0 < 4);
            prop_assert!(u8::from(flag) <= 1 && tuple.1 < 4);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
