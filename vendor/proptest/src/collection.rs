//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// An inclusive size specification for collection strategies.
///
/// Converts from a bare `usize` (exact size), a `Range<usize>`
/// (half-open), or a `RangeInclusive<usize>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        Self {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        Self {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min..=self.max)
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
///
/// Duplicate draws are retried; if the element space is too small to reach
/// the minimum size the generator panics rather than looping forever.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target {
            set.insert(self.element.generate(rng));
            attempts += 1;
            if attempts > 100 * target.max(1) + 1_000 {
                if set.len() >= self.size.min {
                    break;
                }
                panic!(
                    "btree_set strategy could not reach the minimum size {} \
                     (element space too small?)",
                    self.size.min
                );
            }
        }
        set
    }
}
