//! The case loop driving `proptest!` blocks.

use rand::SeedableRng;
use std::fmt;

/// The RNG handed to strategies, seeded per test case.
pub type TestRng = rand::rngs::StdRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a, used to derive a per-test seed from its source location.
fn fnv1a(data: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in data.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `property` against `config.cases` deterministic cases, panicking
/// with the case number and message on the first failure.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base_seed = fnv1a(name);
    for case in 0..config.cases {
        let seed = base_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(err) = property(&mut rng) {
            panic!(
                "proptest property {name} failed at case {case}/{total} (seed {seed:#x}):\n{err}",
                total = config.cases,
            );
        }
    }
}
