//! Offline drop-in subset of the [bytes](https://docs.rs/bytes) API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice the MedSen workspace uses: cheaply clonable [`Bytes`], a
//! growable [`BytesMut`], and big-endian cursor reads/writes via [`Buf`] /
//! [`BufMut`]. `Bytes` is backed by `Arc<[u8]>` plus a range, so `clone`
//! and `slice` are O(1) just like upstream.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns an O(1) sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let data: Arc<[u8]> = data.into();
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Self::from(data.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        Bytes::as_ref(self).iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.data).fmt(f)
    }
}

/// Sequential big-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "buffer underflow");
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underflow");
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Sequential big-endian writes into a byte sink.
pub trait BufMut {
    /// Appends a raw slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u16(0x0102);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u16(), 0x0102);
        assert_eq!(cursor, b"xy".as_slice());
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let a = Bytes::copy_from_slice(b"hello world");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.slice(6..), Bytes::from_static(b"world"));
        assert_eq!(a.slice(..5).len(), 5);
    }

    #[test]
    fn slices_share_storage() {
        let a = Bytes::copy_from_slice(b"0123456789");
        let b = a.slice(2..8);
        let c = b.slice(1..3);
        assert_eq!(c, b"34".as_slice());
    }
}
