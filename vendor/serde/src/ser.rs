//! Serialization half of the data model: the `Serialize` and `Serializer`
//! trait families plus impls for the std types used in MedSen wire structs.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A serialization error.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: core::fmt::Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into the serde data model.
pub trait Serialize {
    /// Serializes `self` through `serializer`.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// Compound serializer for sequences.
pub trait SerializeSeq {
    /// Output type produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one sequence element.
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Closes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuples.
pub trait SerializeTuple {
    /// Output type produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one tuple element.
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Closes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuple structs.
pub trait SerializeTupleStruct {
    /// Output type produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Closes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for tuple enum variants.
pub trait SerializeTupleVariant {
    /// Output type produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Closes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for maps.
pub trait SerializeMap {
    /// Output type produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T>(&mut self, key: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serializes one value.
    fn serialize_value<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serializes one key/value entry.
    fn serialize_entry<K, V>(&mut self, key: &K, value: &V) -> Result<(), Self::Error>
    where
        K: Serialize + ?Sized,
        V: Serialize + ?Sized,
    {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Closes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for structs.
pub trait SerializeStruct {
    /// Output type produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Closes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer for struct enum variants.
pub trait SerializeStructVariant {
    /// Output type produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    /// Closes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// A format backend: the receiving half of the serde data model.
pub trait Serializer: Sized {
    /// Output produced by a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sequence sub-serializer.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple sub-serializer.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-struct sub-serializer.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Tuple-variant sub-serializer.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Map sub-serializer.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Struct sub-serializer.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Struct-variant sub-serializer.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T>(self, value: &T) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct.
    fn serialize_newtype_struct<T>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

// ───────────────────────── std impls ─────────────────────────

macro_rules! primitive_serialize {
    ($($ty:ty => $method:ident,)*) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

primitive_serialize! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, iter: I, len: usize) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        SerializeSeq::serialize_element(&mut seq, &item)?;
    }
    SerializeSeq::end(seq)
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), N)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            SerializeMap::serialize_entry(&mut map, key, value)?;
        }
        SerializeMap::end(map)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (key, value) in self {
            SerializeMap::serialize_entry(&mut map, key, value)?;
        }
        SerializeMap::end(map)
    }
}

macro_rules! tuple_serialize {
    ($(($($name:ident . $idx:tt),+) => $len:expr,)*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut tuple = serializer.serialize_tuple($len)?;
                    $(SerializeTuple::serialize_element(&mut tuple, &self.$idx)?;)+
                    SerializeTuple::end(tuple)
                }
            }
        )*
    };
}

tuple_serialize! {
    (A.0) => 1,
    (A.0, B.1) => 2,
    (A.0, B.1, C.2) => 3,
    (A.0, B.1, C.2, D.3) => 4,
    (A.0, B.1, C.2, D.3, E.4) => 5,
    (A.0, B.1, C.2, D.3, E.4, F.5) => 6,
}
