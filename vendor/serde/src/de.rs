//! Deserialization half of the data model: the `Deserialize`,
//! `Deserializer`, `Visitor`, and access-trait families plus impls for the
//! std types used in MedSen wire structs.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::marker::PhantomData;

/// A deserialization error.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: core::fmt::Display>(msg: T) -> Self;

    /// Reports a value of the wrong type.
    fn invalid_type(unexpected: &str, expected: &str) -> Self {
        Self::custom(format!("invalid type: {unexpected}, expected {expected}"))
    }

    /// Reports a missing struct field.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }

    /// Reports an unknown enum variant.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }
}

/// A data structure that can be built from the serde data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from `deserializer`.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A value that can be deserialized without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// A stateful `Deserialize` driver (serde's seed abstraction).
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Deserializes the value using this seed.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// A format backend: the producing half of the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Deserializes whatever the input contains.
    fn deserialize_any<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a `bool`.
    fn deserialize_bool<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes an `i8`.
    fn deserialize_i8<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes an `i16`.
    fn deserialize_i16<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes an `i32`.
    fn deserialize_i32<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes an `i64`.
    fn deserialize_i64<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a `u8`.
    fn deserialize_u8<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a `u16`.
    fn deserialize_u16<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a `u32`.
    fn deserialize_u32<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a `u64`.
    fn deserialize_u64<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes an `f32`.
    fn deserialize_f32<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes an `f64`.
    fn deserialize_f64<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a `char`.
    fn deserialize_char<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a borrowed string.
    fn deserialize_str<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes an owned string.
    fn deserialize_string<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes borrowed bytes.
    fn deserialize_bytes<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes an `Option`.
    fn deserialize_option<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes `()`.
    fn deserialize_unit<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a sequence.
    fn deserialize_seq<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a tuple.
    fn deserialize_tuple<V>(self, len: usize, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a map.
    fn deserialize_map<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a struct.
    fn deserialize_struct<V>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes an enum.
    fn deserialize_enum<V>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a struct-field or variant identifier.
    fn deserialize_identifier<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes and discards whatever the input contains.
    fn deserialize_ignored_any<V>(self, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
}

/// Receives values produced by a `Deserializer`.
///
/// Every `visit_*` method has a default body that reports a type error, so
/// implementations only override the shapes they accept.
pub trait Visitor<'de>: Sized {
    /// The value this visitor builds.
    type Value;

    /// Describes what this visitor expects (used in error messages).
    fn expecting(&self, formatter: &mut core::fmt::Formatter<'_>) -> core::fmt::Result;

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(Error::invalid_type(
            &format!("boolean `{v}`"),
            &expectation(&self),
        ))
    }
    /// Visits an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(Error::invalid_type(
            &format!("integer `{v}`"),
            &expectation(&self),
        ))
    }
    /// Visits a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(Error::invalid_type(
            &format!("integer `{v}`"),
            &expectation(&self),
        ))
    }
    /// Visits an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(Error::invalid_type(
            &format!("float `{v}`"),
            &expectation(&self),
        ))
    }
    /// Visits a `char`.
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_string(v.to_string())
    }
    /// Visits a borrowed string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        self.visit_string(v.to_owned())
    }
    /// Visits an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::invalid_type("string", &expectation(&self)))
    }
    /// Visits borrowed bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::invalid_type("bytes", &expectation(&self)))
    }
    /// Visits `()` / null.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::invalid_type("unit", &expectation(&self)))
    }
    /// Visits a missing optional value.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::invalid_type("none", &expectation(&self)))
    }
    /// Visits a present optional value.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::invalid_type("some", &expectation(&self)))
    }
    /// Visits a newtype struct's inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::invalid_type("newtype struct", &expectation(&self)))
    }
    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::invalid_type("sequence", &expectation(&self)))
    }
    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::invalid_type("map", &expectation(&self)))
    }
    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::invalid_type("enum", &expectation(&self)))
    }
}

/// Renders a visitor's `expecting` message to a string.
fn expectation<'de, V: Visitor<'de>>(visitor: &V) -> String {
    struct Expected<'a, V>(&'a V);
    impl<'de, V: Visitor<'de>> core::fmt::Display for Expected<'_, V> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            self.0.expecting(f)
        }
    }
    Expected(visitor).to_string()
}

/// Iterative access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Deserializes the next element via a seed.
    fn next_element_seed<T>(&mut self, seed: T) -> Result<Option<T::Value>, Self::Error>
    where
        T: DeserializeSeed<'de>;
    /// Deserializes the next element.
    fn next_element<T>(&mut self) -> Result<Option<T>, Self::Error>
    where
        T: Deserialize<'de>,
    {
        self.next_element_seed(PhantomData)
    }
    /// Size hint, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Iterative access to the entries of a map.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Deserializes the next key via a seed.
    fn next_key_seed<K>(&mut self, seed: K) -> Result<Option<K::Value>, Self::Error>
    where
        K: DeserializeSeed<'de>;
    /// Deserializes the next value via a seed.
    fn next_value_seed<V>(&mut self, seed: V) -> Result<V::Value, Self::Error>
    where
        V: DeserializeSeed<'de>;
    /// Deserializes the next key.
    fn next_key<K>(&mut self) -> Result<Option<K>, Self::Error>
    where
        K: Deserialize<'de>,
    {
        self.next_key_seed(PhantomData)
    }
    /// Deserializes the next value.
    fn next_value<V>(&mut self) -> Result<V, Self::Error>
    where
        V: Deserialize<'de>,
    {
        self.next_value_seed(PhantomData)
    }
    /// Size hint, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Access to the variant payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;
    /// Deserializes the variant tag via a seed.
    fn variant_seed<V>(self, seed: V) -> Result<(V::Value, Self::Variant), Self::Error>
    where
        V: DeserializeSeed<'de>;
    /// Deserializes the variant tag.
    fn variant<V>(self) -> Result<(V, Self::Variant), Self::Error>
    where
        V: Deserialize<'de>,
    {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Consumes a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;
    /// Deserializes a newtype variant's payload via a seed.
    fn newtype_variant_seed<T>(self, seed: T) -> Result<T::Value, Self::Error>
    where
        T: DeserializeSeed<'de>;
    /// Deserializes a newtype variant's payload.
    fn newtype_variant<T>(self) -> Result<T, Self::Error>
    where
        T: Deserialize<'de>,
    {
        self.newtype_variant_seed(PhantomData)
    }
    /// Deserializes a tuple variant's payload.
    fn tuple_variant<V>(self, len: usize, visitor: V) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
    /// Deserializes a struct variant's payload.
    fn struct_variant<V>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>
    where
        V: Visitor<'de>;
}

// ───────────────────────── std impls ─────────────────────────

macro_rules! int_deserialize {
    ($($ty:ident => $method:ident,)*) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct IntVisitor;
                    impl<'de> Visitor<'de> for IntVisitor {
                        type Value = $ty;
                        fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                            write!(f, concat!("a ", stringify!($ty)))
                        }
                        fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                            $ty::try_from(v).map_err(|_| {
                                E::custom(format!(concat!("{} out of range for ", stringify!($ty)), v))
                            })
                        }
                        fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                            $ty::try_from(v).map_err(|_| {
                                E::custom(format!(concat!("{} out of range for ", stringify!($ty)), v))
                            })
                        }
                    }
                    deserializer.$method(IntVisitor)
                }
            }
        )*
    };
}

int_deserialize! {
    i8 => deserialize_i8,
    i16 => deserialize_i16,
    i32 => deserialize_i32,
    i64 => deserialize_i64,
    u8 => deserialize_u8,
    u16 => deserialize_u16,
    u32 => deserialize_u32,
    u64 => deserialize_u64,
    usize => deserialize_u64,
    isize => deserialize_i64,
}

macro_rules! float_deserialize {
    ($($ty:ident => $method:ident,)*) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct FloatVisitor;
                    impl<'de> Visitor<'de> for FloatVisitor {
                        type Value = $ty;
                        fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                            write!(f, concat!("an ", stringify!($ty)))
                        }
                        fn visit_f64<E: Error>(self, v: f64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                        fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                        fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                    }
                    deserializer.$method(FloatVisitor)
                }
            }
        )*
    };
}

float_deserialize! {
    f32 => deserialize_f32,
    f64 => deserialize_f64,
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BoolVisitor;
        impl<'de> Visitor<'de> for BoolVisitor {
            type Value = bool;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a boolean")
            }
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(BoolVisitor)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct CharVisitor;
        impl<'de> Visitor<'de> for CharVisitor {
            type Value = char;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a single character")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single-character string")),
                }
            }
            fn visit_string<E: Error>(self, v: String) -> Result<char, E> {
                self.visit_str(&v)
            }
        }
        deserializer.deserialize_char(CharVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "an optional value")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut values = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(value) = seq.next_element()? {
                    values.push(value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SetVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for SetVisitor<T> {
            type Value = BTreeSet<T>;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a sequence of unique values")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut values = BTreeSet::new();
                while let Some(value) = seq.next_element()? {
                    values.insert(value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_seq(SetVisitor(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for MapVisitor<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut values = BTreeMap::new();
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    values.insert(key, value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, S>(PhantomData<(K, V, S)>);
        impl<'de, K, V, S> Visitor<'de> for MapVisitor<K, V, S>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            S: std::hash::BuildHasher + Default,
        {
            type Value = HashMap<K, V, S>;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut values = HashMap::with_hasher(S::default());
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    values.insert(key, value);
                }
                Ok(values)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

macro_rules! tuple_deserialize {
    ($(($($name:ident),+) => $len:expr,)*) => {
        $(
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize<__D: Deserializer<'de>>(
                    deserializer: __D,
                ) -> Result<Self, __D::Error> {
                    struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                    impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                        type Value = ($($name,)+);
                        fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                            write!(f, "a tuple of length {}", $len)
                        }
                        #[allow(non_snake_case)]
                        fn visit_seq<Acc: SeqAccess<'de>>(
                            self,
                            mut seq: Acc,
                        ) -> Result<Self::Value, Acc::Error> {
                            $(
                                let $name = seq
                                    .next_element()?
                                    .ok_or_else(|| Error::custom("tuple is too short"))?;
                            )+
                            Ok(($($name,)+))
                        }
                    }
                    deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
                }
            }
        )*
    };
}

tuple_deserialize! {
    (A) => 1,
    (A, B) => 2,
    (A, B, C) => 3,
    (A, B, C, D) => 4,
    (A, B, C, D, E) => 5,
    (A, B, C, D, E, F) => 6,
}

/// A value that deserializes from anything and discards it (used to skip
/// unknown struct fields).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IgnoredVisitor;
        impl<'de> Visitor<'de> for IgnoredVisitor {
            type Value = IgnoredAny;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "anything")
            }
            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_string<E: Error>(self, _: String) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(deserializer)
            }
            fn visit_newtype_struct<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(deserializer)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while map.next_key::<IgnoredAny>()?.is_some() {
                    map.next_value::<IgnoredAny>()?;
                }
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_ignored_any(IgnoredVisitor)
    }
}
