//! Offline drop-in subset of the [serde](https://serde.rs) data model.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate reimplements the slice of serde's API that the MedSen crates
//! actually use: the `Serialize`/`Deserialize` traits, the serializer and
//! deserializer trait families (the "data model"), impls for the std types
//! that appear in wire structs, and the `forward_to_deserialize_any!`
//! macro. The `derive` feature re-exports working derive macros from the
//! sibling `serde_derive` stub.
//!
//! It is API-compatible for the shapes this workspace uses (plain structs,
//! newtype structs, and enums with unit/newtype/tuple/struct variants, plus
//! the `#[serde(default)]` and `#[serde(transparent)]` attributes) — it is
//! **not** a general serde replacement.

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};

/// Forwards the listed `deserialize_*` methods to `deserialize_any`.
///
/// Like serde's macro of the same name, this only works inside an
/// `impl<'de> Deserializer<'de>` block whose lifetime is literally named
/// `'de`.
#[macro_export]
macro_rules! forward_to_deserialize_any {
    ($($func:ident)*) => {
        $($crate::forward_to_deserialize_any_method!{$func})*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! forward_to_deserialize_any_method {
    (bool) => {
        fn deserialize_bool<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (i8) => {
        fn deserialize_i8<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (i16) => {
        fn deserialize_i16<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (i32) => {
        fn deserialize_i32<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (i64) => {
        fn deserialize_i64<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (u8) => {
        fn deserialize_u8<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (u16) => {
        fn deserialize_u16<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (u32) => {
        fn deserialize_u32<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (u64) => {
        fn deserialize_u64<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (f32) => {
        fn deserialize_f32<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (f64) => {
        fn deserialize_f64<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (char) => {
        fn deserialize_char<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (str) => {
        fn deserialize_str<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (string) => {
        fn deserialize_string<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (bytes) => {
        fn deserialize_bytes<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (byte_buf) => {
        fn deserialize_byte_buf<V>(
            self,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (unit) => {
        fn deserialize_unit<V>(self, visitor: V) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (identifier) => {
        fn deserialize_identifier<V>(
            self,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
    (ignored_any) => {
        fn deserialize_ignored_any<V>(
            self,
            visitor: V,
        ) -> ::core::result::Result<V::Value, Self::Error>
        where
            V: $crate::de::Visitor<'de>,
        {
            self.deserialize_any(visitor)
        }
    };
}
