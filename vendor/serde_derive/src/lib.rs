//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the offline serde stub.
//!
//! The sandbox that builds this workspace has no crates.io access, so there
//! is no `syn`/`quote`; this crate parses the item token stream directly.
//! Supported shapes — exactly what the MedSen crates use:
//!
//! * structs with named fields (`#[serde(default)]` honored per field);
//! * single-field tuple ("newtype") structs, including
//!   `#[serde(transparent)]` ones (both serialize as their inner value);
//! * enums with unit, newtype, tuple, and struct variants (externally
//!   tagged, serde's default), including unit variants with explicit
//!   discriminants (`Foo = 0x01`).
//!
//! Generics are intentionally unsupported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ───────────────────────── item model ─────────────────────────

struct Field {
    name: String,
    ty: String,
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    /// Tuple struct/variant: the positional field types.
    Tuple(Vec<String>),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ───────────────────────── parsing ─────────────────────────

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == name {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Skips `#[...]` attributes, returning true if any of them was
    /// `#[serde(...)]` containing the ident `flag`.
    fn skip_attrs_checking_serde(&mut self, flag: &str) -> bool {
        let mut found = false;
        while self.eat_punct('#') {
            let Some(TokenTree::Group(group)) = self.next() else {
                panic!("expected `[...]` after `#`");
            };
            let mut inner = Cursor::new(group.stream());
            if inner.eat_ident("serde") {
                if let Some(TokenTree::Group(args)) = inner.peek() {
                    let args_text = args.stream().to_string();
                    if args_text
                        .split(|c: char| !c.is_alphanumeric() && c != '_')
                        .any(|word| word == flag)
                    {
                        found = true;
                    }
                }
            }
        }
        found
    }

    /// Skips a `pub` / `pub(crate)` visibility marker.
    fn skip_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Collects tokens until a top-level comma (or the end), tracking `<>`
    /// depth so commas inside generic arguments don't split the type.
    fn collect_type(&mut self) -> String {
        let mut depth: i32 = 0;
        let mut collected: Vec<TokenTree> = Vec::new();
        while let Some(token) = self.peek() {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            collected.push(self.next().expect("peeked"));
        }
        collected.into_iter().collect::<TokenStream>().to_string()
    }
}

fn parse_named_fields(group_stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(group_stream);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let default = cursor.skip_attrs_checking_serde("default");
        cursor.skip_visibility();
        let Some(TokenTree::Ident(name)) = cursor.next() else {
            panic!("expected a field name");
        };
        assert!(cursor.eat_punct(':'), "expected `:` after field name");
        let ty = cursor.collect_type();
        cursor.eat_punct(',');
        fields.push(Field {
            name: name.to_string(),
            ty,
            default,
        });
    }
    fields
}

fn parse_tuple_fields(group_stream: TokenStream) -> Vec<String> {
    let mut cursor = Cursor::new(group_stream);
    let mut types = Vec::new();
    while !cursor.at_end() {
        cursor.skip_attrs_checking_serde("default");
        cursor.skip_visibility();
        let ty = cursor.collect_type();
        cursor.eat_punct(',');
        if !ty.is_empty() {
            types.push(ty);
        }
    }
    types
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    cursor.skip_attrs_checking_serde("");
    cursor.skip_visibility();
    if cursor.eat_ident("struct") {
        let Some(TokenTree::Ident(name)) = cursor.next() else {
            panic!("expected a struct name");
        };
        if matches!(cursor.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            panic!("the offline serde derive does not support generic types");
        }
        let fields = match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        Item::Struct {
            name: name.to_string(),
            fields,
        }
    } else if cursor.eat_ident("enum") {
        let Some(TokenTree::Ident(name)) = cursor.next() else {
            panic!("expected an enum name");
        };
        if matches!(cursor.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            panic!("the offline serde derive does not support generic types");
        }
        let Some(TokenTree::Group(body)) = cursor.next() else {
            panic!("expected an enum body");
        };
        let mut inner = Cursor::new(body.stream());
        let mut variants = Vec::new();
        while !inner.at_end() {
            inner.skip_attrs_checking_serde("");
            let Some(TokenTree::Ident(vname)) = inner.next() else {
                panic!("expected a variant name");
            };
            let fields = match inner.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let g = g.stream();
                    inner.pos += 1;
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let g = g.stream();
                    inner.pos += 1;
                    Fields::Tuple(parse_tuple_fields(g))
                }
                _ => Fields::Unit,
            };
            // Skip an explicit discriminant (`= 0x01`).
            if inner.eat_punct('=') {
                while let Some(token) = inner.peek() {
                    if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    inner.next();
                }
            }
            inner.eat_punct(',');
            variants.push(Variant {
                name: vname.to_string(),
                fields,
            });
        }
        Item::Enum {
            name: name.to_string(),
            variants,
        }
    } else {
        panic!("#[derive(Serialize/Deserialize)] supports only structs and enums");
    }
}

// ───────────────────────── Serialize codegen ─────────────────────────

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fields) => {
            let mut out = format!(
                "let mut __state = serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for field in fields {
                out.push_str(&format!(
                    "serde::ser::SerializeStruct::serialize_field(&mut __state, \"{0}\", &self.{0})?;\n",
                    field.name
                ));
            }
            out.push_str("serde::ser::SerializeStruct::end(__state)\n");
            out
        }
        Fields::Tuple(types) if types.len() == 1 => format!(
            "serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)\n"
        ),
        Fields::Tuple(types) => {
            let mut out = format!(
                "let mut __state = serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {})?;\n",
                types.len()
            );
            for idx in 0..types.len() {
                out.push_str(&format!(
                    "serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{idx})?;\n"
                ));
            }
            out.push_str("serde::ser::SerializeTupleStruct::end(__state)\n");
            out
        }
        Fields::Unit => {
            format!("serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\
             }}\n\
         }}\n"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (index, variant) in variants.iter().enumerate() {
        let vname = &variant.name;
        match &variant.fields {
            Fields::Unit => {
                arms.push_str(&format!(
                    "{name}::{vname} => serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {index}, \"{vname}\"),\n"
                ));
            }
            Fields::Tuple(types) if types.len() == 1 => {
                arms.push_str(&format!(
                    "{name}::{vname}(__f0) => serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {index}, \"{vname}\", __f0),\n"
                ));
            }
            Fields::Tuple(types) => {
                let bindings: Vec<String> = (0..types.len()).map(|i| format!("__f{i}")).collect();
                let mut arm = format!(
                    "{name}::{vname}({}) => {{\n\
                     let mut __state = serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {index}, \"{vname}\", {})?;\n",
                    bindings.join(", "),
                    types.len()
                );
                for binding in &bindings {
                    arm.push_str(&format!(
                        "serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {binding})?;\n"
                    ));
                }
                arm.push_str("serde::ser::SerializeTupleVariant::end(__state)\n},\n");
                arms.push_str(&arm);
            }
            Fields::Named(fields) => {
                let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut arm = format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                     let mut __state = serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {index}, \"{vname}\", {})?;\n",
                    bindings.join(", "),
                    fields.len()
                );
                for field in fields {
                    arm.push_str(&format!(
                        "serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{0}\", {0})?;\n",
                        field.name
                    ));
                }
                arm.push_str("serde::ser::SerializeStructVariant::end(__state)\n},\n");
                arms.push_str(&arm);
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}\n"
    )
}

// ───────────────────────── Deserialize codegen ─────────────────────────

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

/// Emits the body of a `visit_map` that fills the named fields of
/// `constructor` (either `Name` or `Name::Variant`).
fn named_fields_visit_map(constructor: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for field in fields {
        out.push_str(&format!(
            "let mut __field_{0}: ::core::option::Option<{1}> = ::core::option::Option::None;\n",
            field.name, field.ty
        ));
    }
    out.push_str(
        "while let ::core::option::Option::Some(__key) = \
         serde::de::MapAccess::next_key::<::std::string::String>(&mut __map)? {\n\
         match __key.as_str() {\n",
    );
    for field in fields {
        out.push_str(&format!(
            "\"{0}\" => {{ __field_{0} = ::core::option::Option::Some(\
             serde::de::MapAccess::next_value::<{1}>(&mut __map)?); }}\n",
            field.name, field.ty
        ));
    }
    out.push_str(
        "_ => { serde::de::MapAccess::next_value::<serde::de::IgnoredAny>(&mut __map)?; }\n}\n}\n",
    );
    out.push_str(&format!("::core::result::Result::Ok({constructor} {{\n"));
    for field in fields {
        if field.default {
            out.push_str(&format!(
                "{0}: __field_{0}.unwrap_or_default(),\n",
                field.name
            ));
        } else {
            out.push_str(&format!(
                "{0}: match __field_{0} {{\n\
                 ::core::option::Option::Some(__value) => __value,\n\
                 ::core::option::Option::None => return ::core::result::Result::Err(\
                 serde::de::Error::missing_field(\"{0}\")),\n}},\n",
                field.name
            ));
        }
    }
    out.push_str("})\n");
    out
}

/// Emits the body of a `visit_seq` that fills the positional fields of
/// `constructor` from a tuple payload.
fn tuple_fields_visit_seq(constructor: &str, types: &[String]) -> String {
    let mut out = String::new();
    for (idx, ty) in types.iter().enumerate() {
        out.push_str(&format!(
            "let __f{idx}: {ty} = match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             ::core::option::Option::Some(__value) => __value,\n\
             ::core::option::Option::None => return ::core::result::Result::Err(\
             serde::de::Error::custom(\"tuple payload is too short\")),\n}};\n"
        ));
    }
    let bindings: Vec<String> = (0..types.len()).map(|i| format!("__f{i}")).collect();
    out.push_str(&format!(
        "::core::result::Result::Ok({constructor}({}))\n",
        bindings.join(", ")
    ));
    out
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let (visitor_body, driver) = match fields {
        Fields::Named(fields) => {
            let field_names: Vec<String> =
                fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
            let visit_map = named_fields_visit_map(name, fields);
            (
                format!(
                    "fn visit_map<__A: serde::de::MapAccess<'de>>(self, mut __map: __A) \
                     -> ::core::result::Result<Self::Value, __A::Error> {{\n{visit_map}}}\n"
                ),
                format!(
                    "serde::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{}], __Visitor)",
                    field_names.join(", ")
                ),
            )
        }
        Fields::Tuple(types) if types.len() == 1 => (
            format!(
                "fn visit_newtype_struct<__D: serde::Deserializer<'de>>(self, __deserializer: __D) \
                 -> ::core::result::Result<Self::Value, __D::Error> {{\n\
                 ::core::result::Result::Ok({name}(<{} as serde::Deserialize>::deserialize(__deserializer)?))\n}}\n",
                types[0]
            ),
            format!(
                "serde::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __Visitor)"
            ),
        ),
        Fields::Tuple(types) => {
            let visit_seq = tuple_fields_visit_seq(name, types);
            (
                format!(
                    "fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                     -> ::core::result::Result<Self::Value, __A::Error> {{\n{visit_seq}}}\n"
                ),
                format!(
                    "serde::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {}, __Visitor)",
                    types.len()
                ),
            )
        }
        Fields::Unit => (
            format!(
                "fn visit_unit<__E: serde::de::Error>(self) \
                 -> ::core::result::Result<Self::Value, __E> {{\n\
                 ::core::result::Result::Ok({name})\n}}\n"
            ),
            format!(
                "serde::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __Visitor)"
            ),
        ),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                         ::core::write!(__f, \"struct {name}\")\n\
                     }}\n\
                     {visitor_body}\
                 }}\n\
                 {driver}\n\
             }}\n\
         }}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let variant_names: Vec<String> = variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
    // Per-variant payload visitors (tuple/struct variants need their own).
    let mut payload_visitors = String::new();
    let mut arms = String::new();
    for (index, variant) in variants.iter().enumerate() {
        let vname = &variant.name;
        match &variant.fields {
            Fields::Unit => {
                arms.push_str(&format!(
                    "\"{vname}\" => {{ serde::de::VariantAccess::unit_variant(__access)?; \
                     ::core::result::Result::Ok({name}::{vname}) }}\n"
                ));
            }
            Fields::Tuple(types) if types.len() == 1 => {
                arms.push_str(&format!(
                    "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                     serde::de::VariantAccess::newtype_variant::<{}>(__access)?)),\n",
                    types[0]
                ));
            }
            Fields::Tuple(types) => {
                let visit_seq = tuple_fields_visit_seq(&format!("{name}::{vname}"), types);
                payload_visitors.push_str(&format!(
                    "struct __Payload{index};\n\
                     impl<'de> serde::de::Visitor<'de> for __Payload{index} {{\n\
                         type Value = {name};\n\
                         fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                             ::core::write!(__f, \"tuple variant {name}::{vname}\")\n\
                         }}\n\
                         fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                             -> ::core::result::Result<Self::Value, __A::Error> {{\n{visit_seq}}}\n\
                     }}\n"
                ));
                arms.push_str(&format!(
                    "\"{vname}\" => serde::de::VariantAccess::tuple_variant(__access, {}, __Payload{index}),\n",
                    types.len()
                ));
            }
            Fields::Named(fields) => {
                let field_names: Vec<String> =
                    fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
                let visit_map = named_fields_visit_map(&format!("{name}::{vname}"), fields);
                payload_visitors.push_str(&format!(
                    "struct __Payload{index};\n\
                     impl<'de> serde::de::Visitor<'de> for __Payload{index} {{\n\
                         type Value = {name};\n\
                         fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                             ::core::write!(__f, \"struct variant {name}::{vname}\")\n\
                         }}\n\
                         fn visit_map<__A: serde::de::MapAccess<'de>>(self, mut __map: __A) \
                             -> ::core::result::Result<Self::Value, __A::Error> {{\n{visit_map}}}\n\
                     }}\n"
                ));
                arms.push_str(&format!(
                    "\"{vname}\" => serde::de::VariantAccess::struct_variant(__access, &[{}], __Payload{index}),\n",
                    field_names.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {payload_visitors}\
                 struct __Visitor;\n\
                 impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                         ::core::write!(__f, \"enum {name}\")\n\
                     }}\n\
                     fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) \
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         let (__variant, __access) = \
                             serde::de::EnumAccess::variant::<::std::string::String>(__data)?;\n\
                         match __variant.as_str() {{\n\
                             {arms}\
                             __other => ::core::result::Result::Err(\
                                 serde::de::Error::unknown_variant(__other, &[{variant_list}])),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 serde::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{variant_list}], __Visitor)\n\
             }}\n\
         }}\n",
        variant_list = variant_names.join(", ")
    )
}
