//! Offline drop-in subset of the [criterion](https://docs.rs/criterion) API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of criterion the MedSen benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`throughput`/`bench_function`/
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: per benchmark it calibrates an
//! iteration count to roughly [`TARGET_SAMPLE`], takes `sample_size`
//! samples, and prints min/mean/max per-iteration times (plus throughput
//! when configured) to stdout. There is no statistical analysis, HTML
//! report, or baseline comparison — numbers are for quick local reading,
//! and the benches double as correctness smoke tests.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-sample wall-clock budget used when calibrating iteration counts.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.label, self.default_sample_size, None, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares how much work one iteration performs, enabling rate output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; drop would do the same).
    pub fn finish(self) {}
}

/// A benchmark label, optionally `function/parameter` shaped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label with distinct function and parameter parts.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A label that is only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// The timing harness passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called `self.iters` times per recorded sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    // Calibrate: time one iteration, then scale so a sample lasts roughly
    // TARGET_SAMPLE (capped to keep pathological cases bounded).
    let mut probe = Bencher {
        iters: 1,
        samples: Vec::new(),
    };
    routine(&mut probe);
    let single = probe
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::from_nanos(1))
        .max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / single.as_nanos()).clamp(1, 10_000) as u64;

    let mut bencher = Bencher {
        iters,
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        routine(&mut bencher);
    }

    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|s| s.as_secs_f64() / iters as f64)
        .collect();
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;

    print!(
        "{label:<50} time: [{} {} {}]",
        fmt_seconds(min),
        fmt_seconds(mean),
        fmt_seconds(max)
    );
    if let Some(throughput) = throughput {
        let (amount, unit) = match throughput {
            Throughput::Bytes(n) => (n as f64, "B"),
            Throughput::Elements(n) => (n as f64, "elem"),
        };
        print!(
            "  thrpt: {:.3e} {unit}/s",
            amount / mean.max(f64::MIN_POSITIVE)
        );
    }
    println!();
}

fn fmt_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut __criterion = $crate::Criterion::default();
            $(
                $target(&mut __criterion);
            )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("toy");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
    }

    criterion_group!(benches, toy_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
