//! Offline drop-in subset of the [rand](https://docs.rs/rand) 0.10 API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of `rand` the MedSen workspace uses: the `Rng`/`RngCore`
//! traits with `random`/`random_range`/`random_bool`, `SeedableRng` with
//! `seed_from_u64`, and a deterministic `rngs::StdRng`.
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — deterministic and
//! statistically solid for simulation, but **not** a CSPRNG; the upstream
//! crate's ChaCha-based stream is different, so seeds produce different
//! sequences than real `rand`. Everything in this workspace derives its
//! expectations from this generator, so that is fine.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible from a uniform random bit stream (rand's
/// `StandardUniform` distribution).
pub trait StandardUniform: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty),*) => {
        $(
            impl StandardUniform for $ty {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::random_range`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random `u64` onto `[0, span)` without modulo bias (Lemire's
/// multiply-shift; the tiny residual bias is irrelevant for simulation).
fn index_below(rng_word: u64, span: u64) -> u64 {
    ((u128::from(rng_word) * u128::from(span)) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for core::ops::Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample from an empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let offset = index_below(rng.next_u64(), span);
                    (self.start as i128 + offset as i128) as $ty
                }
            }
            impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from an empty range");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    let offset = index_below(rng.next_u64(), span + 1);
                    (start as i128 + offset as i128) as $ty
                }
            }
        )*
    };
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit = f32::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        // Closed interval: rescale the 53-bit sample onto [0, 1].
        let unit = ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        let unit = ((rng.next_u32() >> 8) as f32) / ((1u32 << 24) - 1) as f32;
        start + unit * (end - start)
    }
}

/// User-facing random value generation (a subset of rand 0.10's `Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard-uniform distribution of `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from `range`.
    fn random_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// rand 0.10 splits convenience methods into an extension trait; here it is
/// simply another name for [`Rng`].
pub use self::Rng as RngExt;

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// The native seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Deterministic RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3u8..9);
            assert!((3..9).contains(&v));
            let w = rng.random_range(0u8..=15);
            assert!(w <= 15);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
