//! Property tests for the cyto-coded credential wire format (vendored
//! proptest), mirroring `tests/fountain_props.rs`:
//!
//! * **round-trip** — any valid password under any alphabet geometry
//!   encodes to a frame that decodes back to the same password;
//! * **the decoder never accepts damage** — every truncation, extension,
//!   and single-bit flip of a genuine frame is rejected with a typed
//!   error (CRC32 catches all single-bit errors, and the header carries
//!   arity + geometry for the rest);
//! * **the decoder never panics** — arbitrary byte soup produces typed
//!   errors, and anything it *does* accept re-encodes to the exact input
//!   (the format has one canonical encoding per credential).

use medsen::core::{CytoPassword, PasswordAlphabet, CREDENTIAL_FORMAT_VERSION};
use medsen::microfluidics::ParticleKind;
use medsen::units::Concentration;
use proptest::prelude::*;

/// An alphabet with one or both of the paper's password bead types and a
/// fuzzed level count; the dose step does not appear on the wire.
fn alphabet(arity_two: bool, max_level: u8) -> PasswordAlphabet {
    let beads = if arity_two {
        vec![ParticleKind::Bead358, ParticleKind::Bead78]
    } else {
        vec![ParticleKind::Bead358]
    };
    PasswordAlphabet::new(beads, Concentration::new(500.0), max_level).expect("valid alphabet")
}

/// Folds arbitrary bytes into a valid password for `alphabet`: one level
/// per bead type, clamped into range, all-zero displaced to the first
/// non-trivial credential.
fn password(alphabet: &PasswordAlphabet, raw: &[u8]) -> CytoPassword {
    let span = u16::from(alphabet.max_level) + 1;
    let mut levels: Vec<u8> = (0..alphabet.bead_types().len())
        .map(|i| (u16::from(raw.get(i).copied().unwrap_or(0)) % span) as u8)
        .collect();
    if levels.iter().all(|&l| l == 0) {
        levels[0] = 1;
    }
    CytoPassword::new(alphabet, levels).expect("valid password")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode/decode is the identity on valid credentials, for every
    /// arity and level geometry.
    #[test]
    fn encode_decode_round_trips(
        arity_two in any::<bool>(),
        max_level in 1u8..=200,
        raw in proptest::collection::vec(any::<u8>(), 2),
    ) {
        let alphabet = alphabet(arity_two, max_level);
        let pw = password(&alphabet, &raw);
        let wire = pw.encode(&alphabet);
        prop_assert_eq!(wire.len(), 3 + pw.levels().len() + 4);
        prop_assert_eq!(wire[0], CREDENTIAL_FORMAT_VERSION);
        let decoded = CytoPassword::decode(&alphabet, &wire).expect("round-trip");
        prop_assert_eq!(decoded, pw);
    }

    /// Every proper prefix and every one-byte extension of a genuine
    /// frame is rejected — length is part of the contract, so a frame
    /// cut by a dropped packet or spliced onto trailing garbage never
    /// yields a credential.
    #[test]
    fn truncations_and_extensions_are_rejected(
        arity_two in any::<bool>(),
        max_level in 1u8..=200,
        raw in proptest::collection::vec(any::<u8>(), 2),
        pad in any::<u8>(),
    ) {
        let alphabet = alphabet(arity_two, max_level);
        let wire = password(&alphabet, &raw).encode(&alphabet);
        for len in 0..wire.len() {
            prop_assert!(
                CytoPassword::decode(&alphabet, &wire[..len]).is_err(),
                "accepted a {len}-byte prefix of a {}-byte frame",
                wire.len()
            );
        }
        let mut extended = wire;
        extended.push(pad);
        prop_assert!(CytoPassword::decode(&alphabet, &extended).is_err());
    }

    /// Any single flipped bit anywhere in the frame — header, levels, or
    /// checksum — is rejected (CRC32 detects all single-bit errors at
    /// these lengths, and the pre-CRC header checks cover the rest).
    #[test]
    fn any_single_bit_flip_is_rejected(
        arity_two in any::<bool>(),
        max_level in 1u8..=200,
        raw in proptest::collection::vec(any::<u8>(), 2),
        flip_at in any::<usize>(),
        flip_bit in 0u32..8,
    ) {
        let alphabet = alphabet(arity_two, max_level);
        let mut wire = password(&alphabet, &raw).encode(&alphabet);
        let at = flip_at % wire.len();
        wire[at] ^= 1 << flip_bit;
        prop_assert!(
            CytoPassword::decode(&alphabet, &wire).is_err(),
            "accepted a frame with bit {flip_bit} of byte {at} flipped"
        );
    }

    /// Arbitrary byte soup never panics the decoder, and the rare inputs
    /// it accepts are exactly canonical encodings: re-encoding the
    /// decoded credential reproduces the input byte-for-byte.
    #[test]
    fn decode_never_panics_and_accepts_only_canonical_frames(
        arity_two in any::<bool>(),
        max_level in 1u8..=200,
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let alphabet = alphabet(arity_two, max_level);
        match CytoPassword::decode(&alphabet, &bytes) {
            Ok(pw) => prop_assert_eq!(pw.encode(&alphabet), bytes),
            Err(error) => prop_assert!(!error.to_string().is_empty()),
        }
    }

    /// A credential enrolled under one level geometry cannot be silently
    /// re-interpreted under another: the frame pins `max_level`, so a
    /// mismatched alphabet is rejected before the levels are read.
    #[test]
    fn a_foreign_geometry_cannot_reinterpret_a_credential(
        arity_two in any::<bool>(),
        max_level in 2u8..=200,
        other_level in 1u8..=200,
        raw in proptest::collection::vec(any::<u8>(), 2),
    ) {
        prop_assume!(max_level != other_level);
        let home = alphabet(arity_two, max_level);
        let wire = password(&home, &raw).encode(&home);
        let foreign = alphabet(arity_two, other_level);
        let geometry_rejected = matches!(
            CytoPassword::decode(&foreign, &wire),
            Err(medsen::core::CredentialDecodeError::AlphabetMismatch { .. })
        );
        prop_assert!(geometry_rejected);
    }
}
