//! Crash-recovery fault injection for the durable cloud tier
//! (`CloudService::with_storage` over the `medsen-store` WAL).
//!
//! The battery, in the style of `shard_storm.rs`:
//!
//! * **Kill points** — a deterministic operation log runs against a
//!   durable service; at pseudo-random write boundaries the data
//!   directory is copied (the on-disk state an abrupt process death
//!   would leave behind, with all in-memory state gone). Each copy must
//!   recover into a service observationally equivalent to a
//!   single-threaded oracle that replayed exactly the acknowledged
//!   prefix.
//! * **Concurrent storm** — 8 threads hammer the durable service, the
//!   process "dies" (the service is dropped, memory discarded), and the
//!   reopened service must contain every acknowledged write. Directory
//!   copies taken *while the storm is running* must also recover
//!   cleanly into a consistent prefix.
//! * **Torn and corrupted tails** — garbage appended after the last
//!   frame, and a bit flipped inside the final frame, must both be
//!   truncated away without panicking, recovering the longest clean
//!   prefix.
//! * **Layout skew** — a log written under an M-shard layout refuses to
//!   open under N ≠ M.
//! * **Compaction and flush policies** — snapshots shrink the logs
//!   without changing the recovered state; group-commit policies batch
//!   fsyncs until `flush_storage` (or the interval flusher) forces them.

use medsen::cloud::auth::BeadSignature;
use medsen::cloud::persist;
use medsen::cloud::service::{CloudService, Request, Response};
use medsen::cloud::storage::StoredRecord;
use medsen::cloud::{FlushPolicy, PeakReport, RecordId, StorageConfig, StorageError};
use medsen::microfluidics::ParticleKind;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::{Barrier, Mutex};

const SHARDS: usize = 4;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("medsen-wal-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read data dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
    }
}

fn sig(n: u64) -> BeadSignature {
    BeadSignature::from_counts(&[(ParticleKind::Bead358, n)])
}

fn record(user: &str, n: u64) -> StoredRecord {
    StoredRecord {
        user_id: user.to_string(),
        report: PeakReport {
            peaks: vec![],
            carriers_hz: vec![5e5],
            sample_rate_hz: 450.0,
            duration_s: n as f64,
            noise_sigma: 3.0e-4,
        },
        signature: sig(n),
    }
}

/// One step of the deterministic operation log. `Tamper(k)` rewrites the
/// k-th record created so far (skipped while fewer exist).
#[derive(Clone, Debug)]
enum Op {
    Enroll(String, u64),
    Store(String, u64),
    Tamper(usize),
}

/// A deterministic mixed workload: enrollments, record filings, and the
/// occasional tamper, spread over many identifiers (hence many shards).
fn op_log(len: usize) -> Vec<Op> {
    (0..len)
        .map(|i| match i % 5 {
            0 => Op::Enroll(format!("user-{}", i / 5), 3 + i as u64),
            1 | 2 => Op::Store(format!("user-{}", i / 5), 10 + i as u64),
            3 => Op::Store(format!("walkin-{i}"), 40 + i as u64),
            _ => Op::Tamper(i / 7),
        })
        .collect()
}

/// Applies one op, recording every record id it creates. Identical code
/// drives the durable service, the oracle, and the storm threads.
fn apply(svc: &CloudService, op: &Op, created: &mut Vec<(String, RecordId)>) {
    match op {
        Op::Enroll(user, n) => {
            let response = svc.handle_shared(Request::Enroll {
                identifier: user.clone(),
                signature: sig(*n),
            });
            assert_eq!(response, Response::Enrolled);
        }
        Op::Store(user, n) => {
            let id = svc.store().store(record(user, *n));
            created.push((user.clone(), id));
        }
        Op::Tamper(k) => {
            if let Some((_, id)) = created.get(*k) {
                assert!(svc.store().tamper(*id, record("mallory", 666)));
            }
        }
    }
}

fn total_enrolled(svc: &CloudService) -> usize {
    svc.shard_stats().iter().map(|s| s.enrolled).sum()
}

/// Observational equivalence over a set of record ids: identical record
/// contents (or identical absence), identical totals, and identical
/// integrity verdicts — tampered records must stay visibly tampered
/// after recovery.
fn assert_equiv(recovered: &CloudService, oracle: &CloudService, ids: &[(String, RecordId)]) {
    assert_eq!(
        recovered.store().len(),
        oracle.store().len(),
        "record count"
    );
    assert_eq!(
        total_enrolled(recovered),
        total_enrolled(oracle),
        "enrollments"
    );
    for (_, id) in ids {
        match (recovered.store().fetch(*id), oracle.store().fetch(*id)) {
            (Some(a), Some(b)) => assert_eq!(a, b, "record {id:?} diverged"),
            (None, None) => {}
            (a, b) => panic!("record {id:?}: recovered {a:?} vs oracle {b:?}"),
        }
        assert_eq!(
            recovered.handle_shared(Request::VerifyIntegrity { record_id: *id }),
            oracle.handle_shared(Request::VerifyIntegrity { record_id: *id }),
            "integrity verdict for {id:?} diverged"
        );
    }
}

fn durable(dir: &Path, policy: FlushPolicy) -> CloudService {
    CloudService::with_storage(dir, SHARDS, policy).expect("storage opens")
}

/// Replays `ops[..=k]` on a fresh memory-only service.
fn oracle_for_prefix(ops: &[Op], k: usize) -> (CloudService, Vec<(String, RecordId)>) {
    let oracle = CloudService::with_shards(SHARDS);
    let mut ids = Vec::new();
    for op in &ops[..=k] {
        apply(&oracle, op, &mut ids);
    }
    (oracle, ids)
}

#[test]
fn clean_reopen_round_trips_the_full_log() {
    let dir = temp_dir("clean-reopen");
    let ops = op_log(35);
    let mut ids = Vec::new();
    {
        let svc = durable(&dir, FlushPolicy::EveryWrite);
        for op in &ops {
            apply(&svc, op, &mut ids);
        }
    }
    let recovered = durable(&dir, FlushPolicy::EveryWrite);
    let stats = recovered.storage_stats().expect("durable");
    // Every op in this log journals exactly one entry (all Tamper
    // indices land on records that already exist).
    assert_eq!(stats.recovered_entries, ops.len() as u64);
    let (oracle, oracle_ids) = oracle_for_prefix(&ops, ops.len() - 1);
    assert_eq!(ids, oracle_ids, "sequential id allocation is deterministic");
    assert_equiv(&recovered, &oracle, &ids);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The headline kill-point harness: copy the data directory at
/// pseudo-random write boundaries (what a crash leaves on disk), recover
/// each copy, and compare against the oracle of exactly that prefix.
#[test]
fn recovery_at_every_sampled_kill_point_matches_the_prefix_oracle() {
    let dir = temp_dir("killpoints");
    let ops = op_log(40);
    let svc = durable(&dir, FlushPolicy::EveryWrite);
    let mut created = Vec::new();
    let mut kill_points = Vec::new();
    // The workspace's shared seeded RNG picks ~1/3 of the write
    // boundaries (deterministically — same sample every run).
    let mut rng = medsen::audit::AuditRng::derive(40, b"recovery-kill-points");
    for (k, op) in ops.iter().enumerate() {
        apply(&svc, op, &mut created);
        if rng.next_u64().is_multiple_of(3) || k + 1 == ops.len() {
            let copy = temp_dir(&format!("killpoint-{k}"));
            copy_dir(&dir, &copy);
            kill_points.push((k, copy));
        }
    }
    drop(svc); // the "crash": all in-memory state gone
    assert!(kill_points.len() >= 8, "sampled too few kill points");
    for (k, copy) in kill_points {
        let recovered = durable(&copy, FlushPolicy::EveryWrite);
        let (oracle, ids) = oracle_for_prefix(&ops, k);
        assert_equiv(&recovered, &oracle, &ids);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&copy);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// 8 threads of concurrent writes, then an abrupt drop: the reopened
/// service must hold every acknowledged write, byte for byte. Mid-storm
/// directory copies must also recover without panicking into a
/// consistent prefix of the final state.
#[test]
fn concurrent_storm_survives_an_unclean_restart() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 24;
    let dir = temp_dir("storm");
    let svc = durable(&dir, FlushPolicy::EveryWrite);
    let barrier = Barrier::new(THREADS + 1);
    let created = Mutex::new(Vec::<(String, RecordId)>::new());
    let mut mid_copies = Vec::new();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let svc = &svc;
            let barrier = &barrier;
            let created = &created;
            scope.spawn(move || {
                barrier.wait();
                let mut mine = Vec::new();
                for i in 0..PER_THREAD {
                    // Stores carry the enrolled signature so the
                    // integrity probe holds for every record.
                    let user = format!("storm-{t}");
                    match i % 3 {
                        0 => apply(svc, &Op::Enroll(user, 3 + t as u64), &mut mine),
                        _ => apply(svc, &Op::Store(user, 3 + t as u64), &mut mine),
                    }
                }
                created.lock().unwrap().extend(mine);
            });
        }
        // The coordinator snapshots the directory while writers run.
        barrier.wait();
        for c in 0..3 {
            let copy = temp_dir(&format!("storm-mid-{c}"));
            copy_dir(&dir, &copy);
            mid_copies.push(copy);
        }
    });
    let created = created.into_inner().unwrap();
    let live_len = svc.store().len();
    let live_enrolled = total_enrolled(&svc);
    drop(svc); // crash

    let recovered = durable(&dir, FlushPolicy::EveryWrite);
    assert_eq!(recovered.store().len(), live_len);
    assert_eq!(recovered.store().len(), created.len());
    assert_eq!(total_enrolled(&recovered), live_enrolled);
    assert_eq!(total_enrolled(&recovered), THREADS);
    let mut distinct = BTreeSet::new();
    for (owner, id) in &created {
        let rec = recovered
            .store()
            .fetch(*id)
            .expect("no acknowledged record lost");
        assert_eq!(&rec.user_id, owner, "record {id:?} leaked across users");
        assert!(distinct.insert(*id), "duplicate id {id:?}");
        assert_eq!(
            recovered.handle_shared(Request::VerifyIntegrity { record_id: *id }),
            Response::Integrity { intact: true }
        );
    }

    // Every mid-storm copy opens cleanly into a prefix: anything it
    // holds must match the final recovered state exactly (records are
    // never rewritten in this storm).
    for copy in mid_copies {
        let partial = durable(&copy, FlushPolicy::EveryWrite);
        assert!(partial.store().len() <= created.len());
        for (owner, id) in &created {
            if let Some(rec) = partial.store().fetch(*id) {
                assert_eq!(&rec.user_id, owner);
                assert_eq!(Some(rec), recovered.store().fetch(*id));
            }
        }
        drop(partial);
        let _ = std::fs::remove_dir_all(&copy);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_after_the_last_frame_is_truncated_not_fatal() {
    let dir = temp_dir("torn-tail");
    let ops = op_log(20);
    let mut ids = Vec::new();
    {
        let svc = durable(&dir, FlushPolicy::EveryWrite);
        for op in &ops {
            apply(&svc, op, &mut ids);
        }
    }
    // A crash mid-append leaves a torn frame; fake one on every shard.
    for shard in 0..SHARDS {
        let path = persist::log_path(&dir, shard as u32);
        let mut garbage = vec![0xDE, 0xAD, 0xBE, 0xEF, 0x01];
        garbage.extend_from_slice(&[0u8; 3]); // half a frame header
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("log exists");
        f.write_all(&garbage).expect("append garbage");
    }
    let recovered = durable(&dir, FlushPolicy::EveryWrite);
    let stats = recovered.storage_stats().expect("durable");
    assert!(
        stats.recovered_truncated_bytes >= (SHARDS * 8) as u64,
        "all four torn tails must be measured: {stats:?}"
    );
    let (oracle, oracle_ids) = oracle_for_prefix(&ops, ops.len() - 1);
    assert_eq!(ids, oracle_ids);
    assert_equiv(&recovered, &oracle, &ids);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bit flip inside the final frame fails its CRC; recovery truncates
/// back to the last clean frame, i.e. the state after N−1 operations.
#[test]
fn bit_flip_in_the_final_frame_recovers_the_previous_operation() {
    let dir = temp_dir("bit-flip");
    // One shard so "the last frame" is well defined.
    let ops: Vec<Op> = (0..10)
        .map(|i| Op::Enroll(format!("user-{i}"), 3 + i as u64))
        .collect();
    let len_before_last;
    {
        let svc = CloudService::with_storage(&dir, 1, FlushPolicy::EveryWrite).expect("opens");
        let mut ids = Vec::new();
        for op in &ops[..ops.len() - 1] {
            apply(&svc, op, &mut ids);
        }
        len_before_last = std::fs::metadata(persist::log_path(&dir, 0))
            .expect("log exists")
            .len();
        apply(&svc, &ops[ops.len() - 1], &mut ids);
    }
    let path = persist::log_path(&dir, 0);
    let mut bytes = std::fs::read(&path).expect("read log");
    let full_len = bytes.len() as u64;
    assert!(full_len > len_before_last, "final op appended nothing");
    // Flip one bit in the last frame's body.
    let target = len_before_last as usize + 8;
    bytes[target] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write corrupted log");

    let recovered = CloudService::with_storage(&dir, 1, FlushPolicy::EveryWrite).expect("reopens");
    let stats = recovered.storage_stats().expect("durable");
    assert_eq!(
        stats.recovered_truncated_bytes,
        full_len - len_before_last,
        "exactly the corrupted frame is dropped"
    );
    assert_eq!(stats.recovered_entries, ops.len() as u64 - 1);
    let oracle = CloudService::with_shards(1);
    let mut ids = Vec::new();
    for op in &ops[..ops.len() - 1] {
        apply(&oracle, op, &mut ids);
    }
    assert_equiv(&recovered, &oracle, &ids);
    // The dropped enrollment is really gone...
    assert_eq!(total_enrolled(&recovered), ops.len() - 1);
    // ...and the truncated log accepts new appends cleanly.
    apply(&recovered, &ops[ops.len() - 1], &mut Vec::new());
    assert_eq!(total_enrolled(&recovered), ops.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_log_written_under_m_shards_refuses_to_open_under_n() {
    let dir = temp_dir("layout");
    {
        let svc = durable(&dir, FlushPolicy::EveryWrite); // 4 shards
        apply(&svc, &Op::Enroll("ana".into(), 3), &mut Vec::new());
    }
    match CloudService::with_storage(&dir, 8, FlushPolicy::EveryWrite) {
        Err(StorageError::Wal(e)) => {
            let text = e.to_string();
            assert!(
                text.contains("4-shard layout") && text.contains("8-shard"),
                "unhelpful refusal: {text}"
            );
        }
        Err(other) => panic!("expected a layout refusal, got {other}"),
        Ok(_) => panic!("an 8-shard service replayed a 4-shard log"),
    }
    // The original layout still opens.
    let recovered = durable(&dir, FlushPolicy::EveryWrite);
    assert_eq!(total_enrolled(&recovered), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_shrinks_logs_and_preserves_the_recovered_state() {
    let dir = temp_dir("compaction");
    let ops = op_log(40);
    let mut ids = Vec::new();
    let config = || {
        StorageConfig::new(&dir)
            .flush(FlushPolicy::EveryN(4))
            .snapshot_every(5)
    };
    {
        let svc = CloudService::with_storage_config(config(), SHARDS).expect("opens");
        for op in &ops {
            apply(&svc, op, &mut ids);
        }
        let stats = svc.storage_stats().expect("durable");
        assert!(
            stats.snapshots_written > 0,
            "40 ops at snapshot_every=5 must compact: {stats:?}"
        );
    }
    let recovered = CloudService::with_storage_config(config(), SHARDS).expect("reopens");
    let stats = recovered.storage_stats().expect("durable");
    assert!(stats.recovered_snapshots > 0, "{stats:?}");
    assert!(
        stats.recovered_entries < ops.len() as u64,
        "snapshots must absorb most of the log: {stats:?}"
    );
    let (oracle, oracle_ids) = oracle_for_prefix(&ops, ops.len() - 1);
    assert_eq!(ids, oracle_ids);
    assert_equiv(&recovered, &oracle, &ids);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_batches_fsyncs_until_flushed() {
    let dir = temp_dir("group-commit");
    let svc = durable(&dir, FlushPolicy::EveryN(1_000));
    let mut ids = Vec::new();
    for op in op_log(10) {
        apply(&svc, &op, &mut ids);
    }
    let stats = svc.storage_stats().expect("durable");
    assert!(stats.appends >= 9, "{stats:?}");
    assert_eq!(
        stats.fsyncs, 0,
        "a 1000-append threshold must not sync 10: {stats:?}"
    );
    svc.flush_storage();
    let stats = svc.storage_stats().expect("durable");
    assert!(stats.fsyncs >= 1, "explicit flush must sync: {stats:?}");
    drop(svc);

    // Contrast: every-write syncs at least once per append.
    let dir2 = temp_dir("group-commit-everywrite");
    let svc = durable(&dir2, FlushPolicy::EveryWrite);
    let mut ids = Vec::new();
    for op in op_log(10) {
        apply(&svc, &op, &mut ids);
    }
    let stats = svc.storage_stats().expect("durable");
    assert_eq!(stats.fsyncs, stats.appends, "{stats:?}");
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn interval_policy_flushes_in_the_background() {
    let dir = temp_dir("interval");
    let svc = durable(
        &dir,
        FlushPolicy::EveryInterval(std::time::Duration::from_millis(5)),
    );
    apply(&svc, &Op::Enroll("ana".into(), 3), &mut Vec::new());
    // The background flusher owns the fsync; poll until it lands.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let stats = svc.storage_stats().expect("durable");
        if stats.fsyncs >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "interval flusher never fired: {stats:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    drop(svc);
    let recovered = durable(&dir, FlushPolicy::EveryWrite);
    assert_eq!(total_enrolled(&recovered), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
