//! Threat-model integration tests: what the untrusted side can and cannot
//! learn, and the TCB boundary.

use medsen::cloud::{AnalysisServer, AnalyzedPeak, PeakReport};
use medsen::core::threat::{best_fixed_divisor_error, estimate_leakage};
use medsen::microfluidics::{ChannelGeometry, ParticleKind, PeristalticPump, TransportSimulator};
use medsen::sensor::{Controller, ControllerConfig, EncryptedAcquisition, TcbAudit, TrustLevel};
use medsen::units::Seconds;

/// Runs `n_runs` acquisitions with `count`-particle streams and fresh keys,
/// returning `(truth, observed peaks)` pairs. Encrypted runs use one key per
/// acquisition (`key_period` = run length): per-pipette rekeying, the
/// maximally concealing deployment. Long runs spanning many key periods
/// average the multiplication factor toward its mean — a leakage channel
/// recorded in EXPERIMENTS.md.
fn leakage_pairs(encrypted: bool, n_runs: usize, seed: u64) -> Vec<(usize, usize)> {
    let server = AnalysisServer::paper_default();
    let duration = Seconds::new(20.0);
    (0..n_runs)
        .map(|r| {
            let run_seed = seed + 101 * r as u64;
            let count = 8 + 3 * r; // varying truth
            let mut sim = TransportSimulator::new(
                ChannelGeometry::paper_default(),
                PeristalticPump::paper_default(),
                run_seed,
            );
            let events = sim.run_exact_count(ParticleKind::Bead78, count, duration);
            let mut acq = EncryptedAcquisition::paper_default(run_seed);
            let mut controller = Controller::new(
                *acq.array(),
                ControllerConfig {
                    key_period: duration,
                    ..ControllerConfig::paper_default()
                },
                run_seed,
            );
            let schedule = if encrypted {
                controller.generate_schedule(duration).clone()
            } else {
                controller.plaintext_schedule().clone()
            };
            let out = acq.run(&events, &schedule, duration);
            let report = server.analyze(&out.trace);
            (count, report.peak_count())
        })
        .collect()
}

#[test]
fn plaintext_peak_counts_leak_the_truth() {
    let pairs = leakage_pairs(false, 6, 7000);
    let leak = estimate_leakage(&pairs);
    assert!(leak.r_squared > 0.95, "plaintext R² {}", leak.r_squared);
    assert!(
        (leak.slope - 1.0).abs() < 0.15,
        "plaintext slope {}",
        leak.slope
    );
    // A fixed divisor of 1 reads the count directly.
    assert!(best_fixed_divisor_error(&pairs, 17) < 0.1);
}

#[test]
fn encrypted_peak_counts_resist_fixed_divisor_recovery() {
    let pairs = leakage_pairs(true, 6, 7100);
    // The best fixed divisor still mis-estimates substantially because the
    // multiplication factor changes every key period.
    let err = best_fixed_divisor_error(&pairs, 17);
    assert!(err > 0.25, "fixed-divisor error {err}");
}

#[test]
fn tcb_is_exactly_sensor_controller_mux() {
    let audit = TcbAudit::medsen();
    assert!(audit.is_minimal(3));
    let untrusted: Vec<&str> = audit
        .components()
        .iter()
        .filter(|c| c.level == TrustLevel::CuriousButHonest)
        .map(|c| c.name)
        .collect();
    assert_eq!(untrusted, vec!["smartphone", "cloud server"]);
}

#[test]
fn wire_types_carry_no_key_material() {
    // Compile-time: the report is (de)serializable — it crosses the network.
    fn wire<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    wire::<PeakReport>();
    wire::<AnalyzedPeak>();
    // The key schedule deliberately has no Serialize impl; this cannot be
    // asserted negatively in stable Rust, but the decryptor type enforces it
    // structurally: it only *borrows* the schedule, so the key cannot even be
    // moved out of the controller, and `Controller::wipe` zeroizes it.
    let mut controller = Controller::new(
        *EncryptedAcquisition::paper_default(1).array(),
        ControllerConfig::paper_default(),
        1,
    );
    controller.generate_schedule(Seconds::new(10.0));
    assert!(controller.key_bits() > 0);
    controller.wipe();
    assert_eq!(controller.key_bits(), 0);
}

#[test]
fn tampered_frames_are_rejected_by_the_relay() {
    use medsen::phone::{Frame, FrameError, MessageType};
    let frame = Frame::new(MessageType::DataChunk, vec![7u8; 128]);
    let mut wire = frame.encode().to_vec();
    wire[40] ^= 0x01;
    assert_eq!(
        Frame::decode(&wire).unwrap_err(),
        FrameError::ChecksumMismatch
    );
}
