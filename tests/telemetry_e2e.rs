//! End-to-end telemetry acceptance test (ISSUE: medsen-telemetry).
//!
//! 64 concurrent dongle sessions enroll through the *async* gateway with
//! durable storage enabled. Every completed request must leave a complete
//! span chain in the recorder ring — phone encode → uplink → admission →
//! queue → service → shard lock → WAL append → WAL fsync → reply decode —
//! with per-stage start timestamps that never run backwards, and the text
//! exposition must surface every legacy counter under its stable dotted
//! name while round-tripping through the grammar parser. A second battery
//! pins the cross-tier propagation contract: one trace id spans phone
//! encode through replica ship for both uplink modes and both wire
//! formats.

use medsen::cloud::auth::BeadSignature;
use medsen::cloud::service::{CloudService, Response};
use medsen::cloud::FlushPolicy;
use medsen::gateway::{
    Gateway, GatewayConfig, RuntimeKind, SessionConfig, ShedPolicy, TelemetryConfig, UplinkMode,
};
use medsen::microfluidics::ParticleKind;
use medsen::telemetry::{parse_text_exposition, SamplerMode, SpanRecord, Stage};
use medsen::wire::WireFormat;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Barrier;

const SESSIONS: usize = 64;
const SHARDS: usize = 4;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("medsen-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sig(n: u64) -> BeadSignature {
    BeadSignature::from_counts(&[(ParticleKind::Bead358, n)])
}

/// Spans grouped per trace, keyed by the raw trace id.
fn by_trace(spans: &[SpanRecord]) -> BTreeMap<u64, Vec<SpanRecord>> {
    let mut groups: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for span in spans {
        groups.entry(span.trace.get()).or_default().push(*span);
    }
    groups
}

#[test]
fn every_completed_request_yields_a_full_span_chain() {
    let dir = temp_dir("e2e");
    let service = CloudService::with_storage(&dir, SHARDS, FlushPolicy::EveryWrite)
        .expect("open durable service");
    let gateway = Gateway::with_telemetry(
        service,
        GatewayConfig {
            queue_capacity: 32,
            workers: 4,
            shed_policy: ShedPolicy::Block,
        },
        RuntimeKind::Async,
        TelemetryConfig {
            spans: true,
            // Oversized relative to SESSIONS * stage-count so the seqlock
            // ring cannot lap a slow reader mid-test.
            ring_capacity: 8192,
            exemplars: 4,
            sampling: SamplerMode::Always,
        },
    );

    // --- Drive the fleet: one unique enrollment per session, all writes
    // so each request crosses the shard lock *and* the WAL. ---
    let barrier = Barrier::new(SESSIONS);
    std::thread::scope(|scope| {
        for i in 0..SESSIONS {
            let gateway = &gateway;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut session = gateway.connect(SessionConfig::reliable());
                barrier.wait(); // maximize shard-lock and queue contention
                let response = session
                    .enroll(&format!("patient-{i:02}"), sig((i % 5) as u64 + 1))
                    .expect("enrollment submits and completes");
                assert_eq!(response, Response::Enrolled);
                session.close().expect("session closes");
            });
        }
    });

    // --- Span chains: every completed request left all six stages. ---
    let recorder = gateway.span_recorder().expect("telemetry is on").clone();
    let spans = recorder.snapshot();
    let groups = by_trace(&spans);
    assert_eq!(
        groups.len(),
        SESSIONS,
        "one trace per completed enrollment (got {} traces over {} spans)",
        groups.len(),
        spans.len()
    );

    const CHAIN: [Stage; 9] = [
        Stage::PhoneEncode,
        Stage::Uplink,
        Stage::Admission,
        Stage::Queue,
        Stage::Service,
        Stage::ShardLock,
        Stage::WalAppend,
        Stage::WalFsync, // FlushPolicy::EveryWrite syncs every append
        Stage::ReplyDecode,
    ];
    for (trace, group) in &groups {
        let mut chain = group.clone();
        chain.sort_by_key(|s| s.stage as usize);
        let stages: Vec<Stage> = chain.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages, CHAIN,
            "trace {trace:#010x} must span every stage exactly once"
        );
        // Stage order implies time order: a later stage never starts
        // before an earlier one, and no span ends before it starts.
        for pair in chain.windows(2) {
            assert!(
                pair[0].start_ns <= pair[1].start_ns,
                "trace {trace:#010x}: {} started at {} ns, after {} at {} ns",
                pair[0].stage.name(),
                pair[0].start_ns,
                pair[1].stage.name(),
                pair[1].start_ns
            );
        }
        for span in &chain {
            assert!(
                span.end_ns >= span.start_ns,
                "trace {trace:#010x}: {} ends before it starts",
                span.stage.name()
            );
        }
    }

    // --- Exemplars: the K-worst list is populated and worst-first. ---
    let slow = gateway.slow_traces();
    assert!(!slow.is_empty(), "64 requests must yield slow exemplars");
    assert!(slow.len() <= 4, "exemplar capacity bounds the list");
    for pair in slow.windows(2) {
        assert!(pair[0].total_ns >= pair[1].total_ns, "worst-first order");
    }
    for exemplar in &slow {
        assert!(
            exemplar.stages.iter().any(|s| s.stage == Stage::WalAppend),
            "slow enrollments break down to the WAL stage"
        );
    }

    // --- Exposition: parses, and every legacy counter name is present. ---
    let text = gateway.telemetry_text();
    let parsed = parse_text_exposition(&text).expect("exposition obeys its own grammar");
    let names: Vec<&str> = parsed.iter().map(|(name, _)| name.as_str()).collect();
    let legacy = [
        "gateway.accepted",
        "gateway.rejected",
        "gateway.retried",
        "gateway.completed",
        "gateway.failed",
        "gateway.queue_high_water",
        "gateway.lane.0.routed",
        "gateway.lane.0.depth_high_water",
        "gateway.queue_wait.count",
        "gateway.service_time.count",
        "gateway.uplink_time.count",
        "gateway.drained",
        "cloud.shard.0.contention",
        "cloud.shard.3.contention",
        "wal.appends",
        "wal.fsyncs",
        "wal.bytes_written",
        "wal.recovered_entries",
        "wal.recovered_truncated_bytes",
        "cache.hits",
        "cache.misses",
        "cache.entries",
        "telemetry.spans_recorded",
    ];
    for name in legacy {
        assert!(
            names.contains(&name),
            "exposition must carry `{name}`; got:\n{text}"
        );
    }
    let scalar = |name: &str| -> f64 {
        parsed
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("`{name}` missing from exposition"))
    };
    assert_eq!(scalar("gateway.accepted"), SESSIONS as f64);
    assert_eq!(scalar("gateway.completed"), SESSIONS as f64);
    assert_eq!(scalar("gateway.failed"), 0.0);
    assert!(scalar("wal.appends") >= SESSIONS as f64);
    assert!(scalar("telemetry.spans_recorded") >= (SESSIONS * CHAIN.len()) as f64);

    // --- The final metrics snapshot agrees with the registry view. ---
    let metrics = gateway.shutdown();
    assert_eq!(metrics.accepted, SESSIONS as u64);
    assert_eq!(metrics.completed, SESSIONS as u64);
    assert_eq!(metrics.lost(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cross-tier propagation contract: the trace id the *phone* mints at
/// encode time is the one every downstream tier records against — across
/// both uplink modes (two-way retry and one-way fountain) and both wire
/// formats (binary and JSON), all the way to the replica ship. Exactly
/// one trace exists per request; the fountain route in particular must
/// *join* the originating stream's trace, not mint a second one for the
/// reassembled upload (the pre-fix behavior split every one-way request
/// into two disconnected traces).
#[test]
fn one_trace_id_spans_phone_encode_through_replica_ship() {
    use medsen::cloud::StorageConfig;
    use medsen::phone::SymbolBudget;
    use std::sync::Arc;

    let combos = [
        (UplinkMode::Retry, WireFormat::Binary, "retry-bin"),
        (UplinkMode::Retry, WireFormat::Json, "retry-json"),
        (
            UplinkMode::Fountain {
                budget: SymbolBudget::paper_default(),
            },
            WireFormat::Binary,
            "fountain-bin",
        ),
        (
            UplinkMode::Fountain {
                budget: SymbolBudget::paper_default(),
            },
            WireFormat::Json,
            "fountain-json",
        ),
    ];
    for (uplink, wire, tag) in combos {
        let dirs = [
            temp_dir(&format!("chain-{tag}-p")),
            temp_dir(&format!("chain-{tag}-s")),
        ];
        let [primary, standby] = dirs.each_ref().map(|dir| {
            CloudService::with_storage_config(
                StorageConfig::new(dir).flush(FlushPolicy::EveryWrite),
                SHARDS,
            )
            .expect("storage opens")
        });
        let pair = primary.with_replication(standby).expect("pair wires up");
        let gateway = Gateway::with_replicas(
            Arc::clone(&pair),
            GatewayConfig {
                queue_capacity: 32,
                workers: 2,
                shed_policy: ShedPolicy::Block,
            },
            RuntimeKind::Async,
            TelemetryConfig::default(),
        );

        let mut session = gateway.connect(SessionConfig {
            uplink,
            ..SessionConfig::reliable().with_wire(wire)
        });
        let response = session
            .enroll(&format!("chain-{tag}"), sig(3))
            .expect("enrollment completes");
        assert_eq!(response, Response::Enrolled, "{tag}");
        session.close().expect("session closes");

        let recorder = gateway.span_recorder().expect("telemetry on").clone();
        let groups = by_trace(&recorder.snapshot());
        assert_eq!(
            groups.len(),
            1,
            "{tag}: one request must leave exactly one trace, got {:?}",
            groups.keys().collect::<Vec<_>>()
        );
        let (trace, spans) = groups.into_iter().next().expect("one trace");
        let mut stages: Vec<Stage> = spans.iter().map(|s| s.stage).collect();
        stages.sort_by_key(|s| *s as usize);
        // The ship is synchronous in the primary's write path, so the
        // standby's own WAL append + fsync run on the worker thread and
        // join the same trace — the WAL stages appear once per node.
        let mut expected = vec![
            Stage::PhoneEncode,
            Stage::Uplink,
            Stage::Admission,
            Stage::Queue,
            Stage::Service,
            Stage::ShardLock,
            Stage::WalAppend,
            Stage::WalAppend,
            Stage::WalFsync,
            Stage::WalFsync,
            Stage::Replication,
            Stage::ReplyDecode,
        ];
        if matches!(uplink, UplinkMode::Fountain { .. }) {
            expected.insert(2, Stage::FountainDecode);
        }
        assert_eq!(
            stages, expected,
            "{tag}: trace {trace:#010x} must cover phone encode → replica ship"
        );

        gateway.shutdown();
        drop(pair);
        for dir in dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
