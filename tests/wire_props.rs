//! Property battery for the shared wire protocol (vendored proptest).
//!
//! Three laws, fuzzed over arbitrary message values and adversarial
//! byte streams:
//!
//! * **round-trip identity** — every [`Request`]/[`Response`] value
//!   survives binary encode→decode unchanged;
//! * **observational equivalence** — for every message, decoding the
//!   binary encoding and decoding the JSON encoding yield the *same*
//!   value, so a binary-speaking dongle and a JSON debug client can
//!   never disagree about what was said;
//! * **the decoder never panics** — truncations, bit flips, and forged
//!   headers produce typed errors, never a crash.
//!
//! A fourth, non-fuzzed section pins the fountain crate's frozen CRC-32
//! copy bit-equal to the shared `medsen-wire` implementation (the same
//! pin discipline the security audit applies to the keystream PRNG):
//! the fountain symbol frame is a wire contract with deployed one-way
//! dongles, so its checksum must never drift even though the crate
//! deliberately keeps its own copy.

use medsen::cloud::service::{Request, Response};
use medsen::cloud::wire::{decode_request, decode_response, encode_request, encode_response};
use medsen::cloud::{
    AnalyzedPeak, AuthDecision, BeadSignature, PeakReport, RecordId, StoredRecord,
};
use medsen::impedance::{Channel, SignalComponent, SignalTrace};
use medsen::microfluidics::ParticleKind;
use medsen::units::Hertz;
use medsen::wire::WireFormat;
use proptest::prelude::*;

/// Finite, NaN-free doubles (wire equality is `PartialEq` on the decoded
/// values, so NaN payloads would vacuously fail the laws they ride in).
fn arb_f64() -> impl Strategy<Value = f64> {
    (any::<i32>(), 1u32..1000).prop_map(|(n, d)| n as f64 / d as f64)
}

/// Arbitrary rectangular traces: 1–3 channels, all the same length (the
/// [`SignalTrace`] constructor enforces this, so the generator must too).
fn arb_trace() -> impl Strategy<Value = SignalTrace> {
    (1usize..4, 0usize..24).prop_flat_map(|(channels, samples)| {
        (
            arb_f64(),
            proptest::collection::vec(
                (
                    arb_f64(),
                    proptest::collection::vec(arb_f64(), samples),
                    0usize..2,
                ),
                channels,
            ),
        )
            .prop_map(|(rate, specs)| {
                let channels = specs
                    .into_iter()
                    .map(|(carrier, samples, component)| {
                        let mut ch = Channel::new(Hertz::new(carrier));
                        ch.samples = samples;
                        if component == 1 {
                            ch.component = SignalComponent::Quadrature;
                        }
                        ch
                    })
                    .collect();
                SignalTrace::new(Hertz::new(rate), channels)
            })
    })
}

/// Arbitrary bead signatures over the two password-bead species.
fn arb_signature() -> impl Strategy<Value = BeadSignature> {
    (any::<u64>(), any::<u64>(), 0usize..3).prop_map(|(a, b, keep)| {
        let mut counts: Vec<(ParticleKind, u64)> = vec![];
        if keep != 0 {
            counts.push((ParticleKind::Bead358, a));
        }
        if keep != 1 {
            counts.push((ParticleKind::Bead78, b));
        }
        BeadSignature::from_counts(&counts)
    })
}

/// Unicode-bearing identifiers, empty string included.
fn arb_ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..5, 0..8).prop_map(|picks| {
        picks
            .into_iter()
            .map(|p| ["a", "Z", "7", "α", "試"][p])
            .collect()
    })
}

fn arb_report() -> impl Strategy<Value = PeakReport> {
    (
        proptest::collection::vec(
            (
                arb_f64(),
                arb_f64(),
                arb_f64(),
                proptest::collection::vec(arb_f64(), 0..4),
            ),
            0..4,
        ),
        proptest::collection::vec(arb_f64(), 0..3),
        arb_f64(),
        arb_f64(),
        arb_f64(),
    )
        .prop_map(
            |(peaks, carriers_hz, sample_rate_hz, duration_s, noise_sigma)| PeakReport {
                peaks: peaks
                    .into_iter()
                    .map(|(time_s, amplitude, width_s, features)| AnalyzedPeak {
                        time_s,
                        amplitude,
                        width_s,
                        features,
                    })
                    .collect(),
                carriers_hz,
                sample_rate_hz,
                duration_s,
                noise_sigma,
            },
        )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (0usize..5).prop_flat_map(|variant| {
        let b: Box<dyn Strategy<Value = Request>> = match variant {
            0 => Box::new(
                (arb_trace(), any::<bool>()).prop_map(|(trace, authenticate)| Request::Analyze {
                    trace,
                    authenticate,
                }),
            ),
            1 => Box::new(
                (arb_ident(), arb_signature()).prop_map(|(identifier, signature)| {
                    Request::Enroll {
                        identifier,
                        signature,
                    }
                }),
            ),
            2 => Box::new(any::<u64>().prop_map(|id| Request::Fetch {
                record_id: RecordId(id),
            })),
            3 => Box::new(any::<u64>().prop_map(|id| Request::VerifyIntegrity {
                record_id: RecordId(id),
            })),
            _ => Box::new(Just(Request::Ping)),
        };
        b
    })
}

fn arb_auth() -> impl Strategy<Value = Option<AuthDecision>> {
    (
        0usize..4,
        arb_ident(),
        proptest::collection::vec(arb_ident(), 0..3),
    )
        .prop_map(|(variant, user_id, candidates)| match variant {
            0 => None,
            1 => Some(AuthDecision::Accepted { user_id }),
            2 => Some(AuthDecision::Rejected),
            _ => Some(AuthDecision::Ambiguous { candidates }),
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (0usize..6).prop_flat_map(|variant| {
        let b: Box<dyn Strategy<Value = Response>> = match variant {
            0 => Box::new(
                (arb_report(), arb_auth(), any::<bool>(), any::<u64>()).prop_map(
                    |(report, auth, stored, id)| Response::Analyzed {
                        report,
                        auth,
                        stored_as: stored.then_some(RecordId(id)),
                    },
                ),
            ),
            1 => Box::new(Just(Response::Enrolled)),
            2 => Box::new((arb_ident(), arb_report(), arb_signature()).prop_map(
                |(user_id, report, signature)| {
                    Response::Record(StoredRecord {
                        user_id,
                        report,
                        signature,
                    })
                },
            )),
            3 => Box::new(any::<bool>().prop_map(|intact| Response::Integrity { intact })),
            4 => Box::new(Just(Response::Pong)),
            _ => Box::new(arb_ident().prop_map(|reason| Response::Error { reason })),
        };
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Binary round-trip identity for every request variant.
    #[test]
    fn requests_round_trip_in_binary(request in arb_request()) {
        let bytes = encode_request(WireFormat::Binary, &request).expect("encodes");
        let back = decode_request(WireFormat::Binary, &bytes).expect("decodes");
        prop_assert_eq!(back, request);
    }

    /// Binary round-trip identity for every response variant.
    #[test]
    fn responses_round_trip_in_binary(response in arb_response()) {
        let bytes = encode_response(WireFormat::Binary, &response).expect("encodes");
        let back = decode_response(WireFormat::Binary, &bytes).expect("decodes");
        prop_assert_eq!(back, response);
    }

    /// Observational equivalence: the binary and JSON encodings of one
    /// request decode to the same value.
    #[test]
    fn request_formats_are_observationally_equivalent(request in arb_request()) {
        let binary = encode_request(WireFormat::Binary, &request).expect("binary encodes");
        let json = encode_request(WireFormat::Json, &request).expect("json encodes");
        let from_binary = decode_request(WireFormat::Binary, &binary).expect("binary decodes");
        let from_json = decode_request(WireFormat::Json, &json).expect("json decodes");
        prop_assert_eq!(&from_binary, &from_json);
        prop_assert_eq!(from_binary, request);
    }

    /// Observational equivalence for responses.
    #[test]
    fn response_formats_are_observationally_equivalent(response in arb_response()) {
        let binary = encode_response(WireFormat::Binary, &response).expect("binary encodes");
        let json = encode_response(WireFormat::Json, &response).expect("json encodes");
        let from_binary = decode_response(WireFormat::Binary, &binary).expect("binary decodes");
        let from_json = decode_response(WireFormat::Json, &json).expect("json decodes");
        prop_assert_eq!(&from_binary, &from_json);
        prop_assert_eq!(from_binary, response);
    }

    /// Truncating a valid frame anywhere yields a typed error, never a
    /// panic and never a silent partial decode.
    #[test]
    fn truncated_frames_error_typed(request in arb_request(), cut_seed in any::<u64>()) {
        let bytes = encode_request(WireFormat::Binary, &request).expect("encodes");
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(decode_request(WireFormat::Binary, &bytes[..cut]).is_err());
    }

    /// A single flipped bit anywhere is rejected (the frame CRC catches
    /// payload damage; header damage fails structurally) — decoding is
    /// total either way.
    #[test]
    fn bit_flips_never_panic(response in arb_response(), flip_seed in any::<u64>()) {
        let mut bytes = encode_response(WireFormat::Binary, &response).expect("encodes");
        let bit = (flip_seed % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        // Decoding must not panic; corruption is *detected* except in
        // the header's own length/crc fields where a structural error
        // fires instead — either way, never a wrong value silently.
        prop_assert!(decode_response(WireFormat::Binary, &bytes).is_err());
    }

    /// Forged headers — arbitrary kind bytes, version bytes, and length
    /// prefixes over random bodies — always produce typed errors.
    #[test]
    fn forged_frames_never_panic(
        kind in any::<u8>(),
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let framed = medsen::wire::frame_to_vec(kind, &body);
        // Whatever the forger built, both decoders stay total.
        let _ = decode_request(WireFormat::Binary, &framed);
        let _ = decode_response(WireFormat::Binary, &framed);
        let _ = decode_request(WireFormat::Json, &framed);
        let _ = decode_response(WireFormat::Json, &framed);
        // Raw garbage (no valid frame at all) too.
        let _ = decode_request(WireFormat::Binary, &body);
        let _ = decode_response(WireFormat::Binary, &body);
    }
}

/// The fountain crate's deliberately-frozen CRC-32 copy must stay
/// bit-equal to the shared `medsen-wire` implementation, forever: the
/// symbol frame checksum is a wire contract with deployed one-way
/// dongles. Mirrors the keystream-PRNG pin in the security audit.
#[test]
fn fountain_crc_copy_is_pinned_to_the_shared_crc() {
    // Known IEEE vectors through both implementations.
    for (input, want) in [
        (&b""[..], 0u32),
        (b"123456789", 0xCBF4_3926),
        (b"The quick brown fox jumps over the lazy dog", 0x414F_A339),
    ] {
        assert_eq!(medsen::wire::crc32(input), want);
        assert_eq!(medsen::fountain::crc32(input), want);
    }
    // And bit-equality over a structured sweep: varied lengths, varied
    // alignments, every byte value represented.
    let mut payload = Vec::new();
    for i in 0..4096u32 {
        payload.push((i.wrapping_mul(0x9E37_79B9) >> 24) as u8);
    }
    for window in [1usize, 3, 7, 64, 255, 1024, 4096] {
        for start in (0..payload.len() - window).step_by(277) {
            let slice = &payload[start..start + window];
            assert_eq!(
                medsen::wire::crc32(slice),
                medsen::fountain::crc32(slice),
                "CRC drift at start {start} window {window}"
            );
        }
    }
}
