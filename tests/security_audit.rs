//! The CI gate for the adversarial self-audit battery (tier-1).
//!
//! `medsen audit` prints the scorecard for humans; this suite asserts the
//! same pass bounds in CI, section by section, plus the two cross-crate
//! pins the audit architecture depends on:
//!
//! * **RNG anti-drift** — `medsen-audit` and `medsen-fountain` each carry
//!   a private copy of seeded xorshift64* (both crates must stay
//!   dependency-free for the vendor-hygiene check, and the fountain copy
//!   is a frozen codec contract). The copies must never diverge, so their
//!   streams are pinned bit-equal here.
//! * **Shard-route equivalence** — the collision sweep's `hash % shards`
//!   routing must agree with the cloud tier's `shard_index`, or the
//!   sweep's balance verdict would describe a router nobody runs.

use medsen::audit::{ct_eq, expected_birthday_collisions, mix64, AuditRng};
use medsen::cloud::{identity_hash, shard_index};
use medsen::selfaudit::{run, AuditConfig};
use medsen::sensor::ideal_key_length_bits;

fn quick_card() -> medsen::audit::Scorecard {
    run(&AuditConfig::quick(0xC1A0))
}

// --- the four measured sections -----------------------------------------

#[test]
fn entropy_section_keeps_observable_leakage_below_eq2() {
    let card = quick_card();
    assert!(!card.entropy.rows.is_empty());
    for row in &card.entropy.rows {
        // The Eq. 2 column really is Eq. 2, not a copy of the estimate.
        assert_eq!(
            row.eq2_bits,
            ideal_key_length_bits(
                u64::from(row.n_cells),
                u64::from(row.n_electrodes),
                u64::from(row.r_gain_bits),
                u64::from(row.r_flow_bits),
            ) as f64
        );
        assert!(
            row.observable_bits > 0.0 && row.observable_bits < row.eq2_bits,
            "config {}x{}: observable {} vs Eq.2 {}",
            row.n_cells,
            row.n_electrodes,
            row.observable_bits,
            row.eq2_bits
        );
        // The stream must carry real entropy, not a degenerate trickle:
        // at least the 4 flow bits' worth.
        assert!(row.observable_bits >= 4.0, "row: {row:?}");
    }
    assert!(card.entropy.pass());
}

#[test]
fn distinguisher_controls_stay_silent_and_distinct_pairs_separate() {
    let card = quick_card();
    let control = card
        .distinguisher
        .trials
        .iter()
        .find(|t| t.distance == 0)
        .expect("battery includes a control trial");
    assert_eq!(
        control.sessions_to_distinguish, None,
        "identical credentials must stay at chance for the whole budget"
    );
    for trial in card.distinguisher.trials.iter().filter(|t| t.distance > 0) {
        let sessions = trial
            .sessions_to_distinguish
            .unwrap_or_else(|| panic!("{} never separated", trial.label));
        assert!(sessions >= 2 && sessions <= trial.max_sessions);
    }
    // Closer credentials take at least as many sessions as distant ones.
    let by_distance: Vec<(u32, u64)> = card
        .distinguisher
        .trials
        .iter()
        .filter(|t| t.distance > 0)
        .map(|t| (t.distance, t.sessions_to_distinguish.unwrap()))
        .collect();
    for pair in by_distance.windows(2) {
        if pair[0].0 < pair[1].0 {
            assert!(pair[0].1 >= pair[1].1, "{by_distance:?}");
        }
    }
    assert!(card.distinguisher.pass());
}

#[test]
fn timing_section_pins_an_input_independent_compare() {
    let card = quick_card();
    assert!(card.timing.ops_first_mismatch > 0);
    assert_eq!(
        card.timing.ops_first_mismatch, card.timing.ops_last_mismatch,
        "mismatch position changed the auth compare's op count"
    );
    assert!(card.timing.pass());
}

#[test]
fn collision_section_sits_at_the_birthday_bound_with_balanced_routing() {
    let card = quick_card();
    let report = &card.collision.report;
    assert_eq!(report.n, AuditConfig::quick(0xC1A0).keyspace_size);
    assert!(
        (report.colliding_pairs as f64) <= report.expected_pairs + 1.0,
        "{} colliding pairs vs expectation {}",
        report.colliding_pairs,
        report.expected_pairs
    );
    assert_eq!(
        report.expected_pairs,
        expected_birthday_collisions(report.n, 64)
    );
    assert!(
        report.imbalance < card.collision.imbalance_limit,
        "imbalance {} over limit {}",
        report.imbalance,
        card.collision.imbalance_limit
    );
    assert!(card.collision.enrolled_verified);
    assert!(card.collision.pass());
}

#[test]
fn full_scorecard_passes() {
    assert!(quick_card().pass());
}

// --- determinism ---------------------------------------------------------

/// Everything except `wall-clock:` lines is bit-reproducible for a fixed
/// seed — the property that makes a scorecard a measurement instead of an
/// anecdote.
#[test]
fn scorecard_is_deterministic_for_a_fixed_seed() {
    let first = run(&AuditConfig::quick(42));
    let second = run(&AuditConfig::quick(42));
    let stable = |card: &medsen::audit::Scorecard| {
        card.to_string()
            .lines()
            .filter(|line| !line.trim_start().starts_with("wall-clock:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(stable(&first), stable(&second));
    // And a different seed actually changes the measurements. (Not the
    // collision report specifically: FNV-1a routes the sequential
    // identifier suffixes near-uniformly for *every* namespace tag, so
    // that section's numbers are legitimately seed-stable.)
    let other = run(&AuditConfig::quick(43));
    assert_ne!(stable(&first), stable(&other));
}

// --- cross-crate pins ----------------------------------------------------

#[test]
fn audit_rng_is_bit_equal_to_the_fountain_prng() {
    for seed in [0u64, 1, 42, 0x9E37_79B9_7F4A_7C15, u64::MAX] {
        let mut audit = AuditRng::new(seed);
        let mut fountain = medsen::fountain::XorShift64::new(seed);
        for step in 0..512 {
            assert_eq!(
                audit.next_u64(),
                fountain.next_u64(),
                "streams diverged at seed {seed}, step {step}"
            );
        }
    }
    for x in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
        assert_eq!(mix64(x), medsen::fountain::prng::mix64(x));
    }
}

#[test]
fn collision_sweep_routing_matches_the_cloud_shard_router() {
    let mut rng = AuditRng::new(99);
    for shards in [1usize, 2, 8, 64, 256] {
        for i in 0..256u64 {
            let id = format!("route-equiv-{}-{i}", rng.next_u64());
            assert_eq!(
                (identity_hash(&id) % shards as u64) as usize,
                shard_index(&id, shards),
                "audit routing disagrees with the cloud tier for {shards} shards"
            );
        }
    }
}

#[test]
fn ct_eq_is_extensionally_equal_to_slice_eq() {
    let mut rng = AuditRng::new(123);
    for _ in 0..256 {
        let len = rng.below(64) as usize;
        let a: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let mut b = a.clone();
        if len > 0 && rng.chance(0.5) {
            let at = rng.below(len as u64) as usize;
            b[at] = b[at].wrapping_add(1 + rng.below(255) as u8);
        }
        assert_eq!(ct_eq(&a, &b), a == b);
    }
}
