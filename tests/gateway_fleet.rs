//! Fleet-level acceptance test for the gateway (ISSUE: concurrent
//! multi-session ingestion).
//!
//! 64 dongle sessions run concurrently through a deliberately undersized
//! gateway queue and must produce *exactly* the per-session peak reports
//! and authentication decisions that 64 sequential direct calls against an
//! identically configured cloud service produce — while the metrics show
//! zero accepted-but-lost requests and at least one backpressure
//! rejection.

use medsen::cloud::auth::{AuthDecision, BeadSignature};
use medsen::cloud::service::{CloudService, Request, Response};
use medsen::dsp::classify::Classifier;
use medsen::dsp::FeatureVector;
use medsen::gateway::{Gateway, GatewayConfig, SessionConfig, ShedPolicy};
use medsen::impedance::{PulseSpec, SignalTrace, TraceSynthesizer};
use medsen::microfluidics::ParticleKind;
use medsen::units::Seconds;
use std::sync::{Barrier, Mutex};

const SESSIONS: usize = 64;

/// Four clinic users with bead counts whose ±30% acceptance bands are
/// pairwise disjoint, so every session authenticates unambiguously.
const USERS: [(&str, u64); 4] = [("ana", 3), ("bo", 6), ("cleo", 12), ("dee", 24)];

fn user_for_session(i: usize) -> (&'static str, u64) {
    USERS[i % USERS.len()]
}

/// A clean (noise-free) trace with `pulses` bead transits. Each session
/// gets a unique sub-millisecond timing jitter so every trace — and hence
/// every peak report — is distinct, proving per-session (not per-class)
/// matching.
fn session_trace(session: usize, pulses: u64) -> SignalTrace {
    let mut synth = TraceSynthesizer::clean(1);
    let jitter = session as f64 * 1e-3;
    let specs: Vec<PulseSpec> = (0..pulses)
        .map(|j| {
            PulseSpec::unipolar(
                Seconds::new(0.5 + jitter + j as f64 * 0.25),
                Seconds::new(0.02),
                0.01,
            )
        })
        .collect();
    synth.render(
        &specs,
        Seconds::new(0.5 + jitter + pulses as f64 * 0.25 + 0.5),
    )
}

/// Trains a one-class bead classifier from the features the analysis
/// pipeline itself extracts, so every detected peak counts as a 3.58 µm
/// password bead and the measured signature equals the planted count.
fn fleet_classifier() -> Classifier {
    let svc = CloudService::new();
    let response = svc.handle_shared(Request::Analyze {
        trace: session_trace(999, 8),
        authenticate: false,
    });
    let Response::Analyzed { report, .. } = response else {
        panic!("reference analysis failed: {response:?}");
    };
    assert_eq!(
        report.peak_count(),
        8,
        "reference trace must detect cleanly"
    );
    let vectors: Vec<FeatureVector> = report
        .peaks
        .iter()
        .map(|p| FeatureVector {
            index: 0,
            amplitudes: p.features.clone(),
        })
        .collect();
    Classifier::train(&[(ParticleKind::Bead358.label(), vectors)]).expect("classifier trains")
}

fn service_with_classifier() -> CloudService {
    let mut svc = CloudService::new();
    svc.install_classifier(fleet_classifier());
    svc
}

fn enroll_request(user: &str, count: u64) -> Request {
    Request::Enroll {
        identifier: user.to_string(),
        signature: BeadSignature::from_counts(&[(ParticleKind::Bead358, count)]),
    }
}

/// `(report, auth)` with the record id stripped: record ids depend on
/// worker interleaving and are the one legitimately order-dependent field.
fn essence(response: Response) -> (medsen::cloud::api::PeakReport, AuthDecision) {
    match response {
        Response::Analyzed {
            report,
            auth: Some(decision),
            ..
        } => (report, decision),
        other => panic!("expected authenticated analysis, got {other:?}"),
    }
}

#[test]
fn concurrent_fleet_matches_sequential_baseline() {
    // --- Sequential baseline: direct calls, no gateway, no JSON hop. ---
    let baseline_svc = service_with_classifier();
    for (user, count) in USERS {
        assert_eq!(
            baseline_svc.handle_shared(enroll_request(user, count)),
            Response::Enrolled
        );
    }
    let baseline: Vec<(medsen::cloud::api::PeakReport, AuthDecision)> = (0..SESSIONS)
        .map(|i| {
            let (_, count) = user_for_session(i);
            essence(baseline_svc.handle_shared(Request::Analyze {
                trace: session_trace(i, count),
                authenticate: true,
            }))
        })
        .collect();

    // Every session must authenticate as exactly its own user.
    for (i, (_, decision)) in baseline.iter().enumerate() {
        let (user, _) = user_for_session(i);
        assert_eq!(
            *decision,
            AuthDecision::Accepted {
                user_id: user.to_string()
            },
            "session {i} must accept as {user}"
        );
    }

    // --- Concurrent fleet through an undersized gateway queue. ---
    let gateway = Gateway::new(
        service_with_classifier(),
        GatewayConfig {
            queue_capacity: 2, // deliberately undersized: forces shedding
            workers: 2,
            shed_policy: ShedPolicy::Reject {
                retry_after: Seconds::from_millis(50.0),
            },
        },
    );
    // Enrollment happens before the burst (through the gateway, so the
    // enroll path is exercised end-to-end too).
    {
        let mut admin = gateway.connect(SessionConfig::reliable());
        for (user, count) in USERS {
            let response = admin.enroll(
                user,
                BeadSignature::from_counts(&[(ParticleKind::Bead358, count)]),
            );
            assert_eq!(response.expect("enrolls"), Response::Enrolled);
        }
        admin.close().expect("admin session closes");
    }

    let results: Mutex<Vec<(usize, Response)>> = Mutex::new(Vec::with_capacity(SESSIONS));
    let barrier = Barrier::new(SESSIONS);
    std::thread::scope(|scope| {
        for i in 0..SESSIONS {
            let gateway = &gateway;
            let results = &results;
            let barrier = &barrier;
            scope.spawn(move || {
                let (_, count) = user_for_session(i);
                let trace = session_trace(i, count);
                let mut session = gateway.connect(SessionConfig::reliable());
                barrier.wait(); // maximize submission contention
                session
                    .submit_analyze(trace, true)
                    .expect("session submits within its deadline");
                let report = session.close().expect("session drains and closes");
                assert_eq!(report.responses.len(), 1);
                results
                    .lock()
                    .unwrap()
                    .push((i, report.responses.into_iter().next().unwrap()));
            });
        }
    });

    let mut concurrent = results.into_inner().unwrap();
    concurrent.sort_by_key(|(i, _)| *i);
    assert_eq!(concurrent.len(), SESSIONS);

    // --- Equivalence: byte-identical reports and decisions per session. ---
    for (i, response) in concurrent {
        let (report, decision) = essence(response);
        let (expected_report, expected_decision) = &baseline[i];
        assert_eq!(
            report, *expected_report,
            "session {i}: concurrent peak report diverged from sequential"
        );
        assert_eq!(
            decision, *expected_decision,
            "session {i}: concurrent auth decision diverged from sequential"
        );
    }

    // --- Metrics: nothing lost, backpressure actually exercised. ---
    let metrics = gateway.shutdown();
    assert_eq!(
        metrics.accepted,
        (SESSIONS + USERS.len()) as u64,
        "each session's analyze plus the four enrollments were accepted"
    );
    assert_eq!(metrics.lost(), 0, "no accepted request may be dropped");
    assert_eq!(metrics.completed, metrics.accepted);
    assert!(
        metrics.rejected >= 1,
        "a 2-deep queue under a 64-session burst must shed at least once \
         (rejected = {})",
        metrics.rejected
    );
    assert_eq!(metrics.retried, metrics.rejected, "every shed was retried");
    assert!(
        metrics.queue_high_water <= 2,
        "bounded queue stayed bounded"
    );
    assert!(metrics.failed == 0, "no session gave up");
}

#[test]
fn flaky_fleet_still_matches_baseline() {
    // A smaller fleet over a lossy uplink: retries change *when* uploads
    // arrive, never *what* they contain.
    const FLAKY_SESSIONS: usize = 8;

    let baseline_svc = service_with_classifier();
    let baseline: Vec<(medsen::cloud::api::PeakReport, AuthDecision)> = (0..FLAKY_SESSIONS)
        .map(|i| {
            let (_, count) = user_for_session(i);
            essence(baseline_svc.handle_shared(Request::Analyze {
                trace: session_trace(i, count),
                authenticate: true,
            }))
        })
        .collect();
    // No enrollments here: every decision is Rejected, which must survive
    // the wire unchanged just like acceptance does.
    for (_, decision) in &baseline {
        assert_eq!(*decision, AuthDecision::Rejected);
    }

    let gateway = Gateway::new(service_with_classifier(), GatewayConfig::clinic_default());
    // Connect on the main thread so session ids — and therefore each
    // session's failure-RNG seed — are deterministic run to run.
    let sessions: Vec<_> = (0..FLAKY_SESSIONS)
        .map(|i| gateway.connect(SessionConfig::flaky(0.25, i as u64)))
        .collect();
    let results: Mutex<Vec<(usize, Response)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (i, mut session) in sessions.into_iter().enumerate() {
            let results = &results;
            scope.spawn(move || {
                let (_, count) = user_for_session(i);
                // 25% per-attempt loss, deterministic per session.
                let response = session
                    .analyze(session_trace(i, count), true)
                    .expect("retries ride out a 25% flaky link");
                results.lock().unwrap().push((i, response));
            });
        }
    });

    let mut concurrent = results.into_inner().unwrap();
    concurrent.sort_by_key(|(i, _)| *i);
    for (i, response) in concurrent {
        assert_eq!(essence(response), baseline[i], "session {i} diverged");
    }
    let metrics = gateway.shutdown();
    assert_eq!(metrics.lost(), 0);
    assert_eq!(metrics.completed, FLAKY_SESSIONS as u64);
}
