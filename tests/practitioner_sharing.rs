//! Integration: the practitioner key-sharing extension end to end.

use medsen::cloud::AnalysisServer;
use medsen::core::sharing::{DecryptionCapability, SealedCapability};
use medsen::microfluidics::{ChannelGeometry, ParticleKind, PeristalticPump, TransportSimulator};
use medsen::sensor::{Controller, ControllerConfig, EncryptedAcquisition};
use medsen::units::Seconds;

struct SessionArtifacts {
    truth: usize,
    report: medsen::cloud::PeakReport,
    controller: Controller,
    delay: Seconds,
}

fn run_encrypted_session(seed: u64) -> SessionArtifacts {
    let duration = Seconds::new(30.0);
    let mut sim = TransportSimulator::new(
        ChannelGeometry::paper_default(),
        PeristalticPump::paper_default(),
        seed,
    );
    let events = sim.run_exact_count(ParticleKind::Bead78, 18, duration);
    let mut acq = EncryptedAcquisition::paper_default(seed);
    let mut controller = Controller::new(*acq.array(), ControllerConfig::paper_default(), seed);
    let schedule = controller.generate_schedule(duration).clone();
    let out = acq.run(&events, &schedule, duration);
    let report = AnalysisServer::paper_default().analyze(&out.trace);
    let geometry = ChannelGeometry::paper_default();
    let v = PeristalticPump::paper_default().velocity_at(
        Seconds::ZERO,
        geometry.pore_width,
        geometry.pore_height,
    );
    let delay = Seconds::new(acq.array().span(&geometry).value() / (2.0 * v));
    SessionArtifacts {
        truth: out.true_total(),
        report,
        controller,
        delay,
    }
}

#[test]
fn shared_capability_decrypts_as_well_as_the_controller() {
    let session = run_encrypted_session(8080);
    let own = session
        .controller
        .decryptor_with_delay(session.delay)
        .decrypt(&session.report.reported_peaks());

    let capability = DecryptionCapability::derive(&session.controller, session.delay);
    let sealed = SealedCapability::seal(&capability, 0xFEED, 1);
    let practitioner_cap = sealed.unseal(0xFEED).expect("correct secret");
    let remote = practitioner_cap.decrypt(&session.report.reported_peaks());

    assert_eq!(own.rounded(), remote.rounded());
    let err = (remote.rounded() as f64 - session.truth as f64).abs() / session.truth as f64;
    assert!(err < 0.25, "remote decode error {err}");
}

#[test]
fn capability_survives_serialization_but_not_wrong_secrets() {
    let session = run_encrypted_session(8081);
    let capability = DecryptionCapability::derive(&session.controller, session.delay);
    let sealed = SealedCapability::seal(&capability, 42, 9);

    // The envelope is plain serde data — it can travel any channel.
    fn assert_wire<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_wire::<SealedCapability>();
    assert_wire::<DecryptionCapability>();

    assert!(sealed.unseal(43).is_err());
    assert_eq!(sealed.unseal(42).expect("right secret"), capability);
}

#[test]
fn capability_is_strictly_less_powerful_than_the_key() {
    // The capability reveals only multiplicities: distinct same-multiplicity
    // schedules are indistinguishable through it, and it cannot reproduce
    // per-electrode gains (there is no gain data in its serialized form).
    let session = run_encrypted_session(8082);
    let capability = DecryptionCapability::derive(&session.controller, session.delay);
    // The number of distinct values in the capability is bounded by the
    // multiplicity range 1..=17 — far below the key space.
    for &m in &capability.multiplicities {
        assert!((1..=17).contains(&m));
    }
    assert!(capability.multiplicities.len() < 20);
}
