//! Integration: the full phone relay path — CSV serialization, LZW
//! compression, accessory-frame chunking, reassembly, decompression, parsing
//! — must be bit-faithful end to end, because the cloud analyzes exactly
//! what the sensor produced.

use medsen::cloud::AnalysisServer;
use medsen::impedance::{PulseSpec, TraceSynthesizer};
use medsen::phone::{compress, decompress, trace_from_csv, trace_to_csv, Frame, MessageType};
use medsen::units::Seconds;

fn sample_trace() -> medsen::impedance::SignalTrace {
    let mut synth = TraceSynthesizer::paper_default(77);
    let pulses: Vec<PulseSpec> = (0..8)
        .map(|i| PulseSpec::unipolar(Seconds::new(0.5 + i as f64), Seconds::new(0.02), 0.01))
        .collect();
    synth.render(&pulses, Seconds::new(10.0))
}

#[test]
fn relay_path_is_bit_faithful_and_analysis_invariant() {
    let trace = sample_trace();

    // Phone side: CSV → LZW → USB-sized chunks → frames.
    let csv = trace_to_csv(&trace);
    let compressed = compress(csv.as_bytes());
    assert!(compressed.len() * 2 < csv.len(), "compression must bite");
    let frames = medsen::phone::frame::chunk_data(&compressed, 16 * 1024);
    assert!(
        frames.len() > 1,
        "payload should span several USB transfers"
    );

    // Wire: encode + decode every frame in sequence.
    let mut wire = Vec::new();
    for f in &frames {
        wire.extend_from_slice(&f.encode());
    }
    let mut offset = 0;
    let mut reassembled = Vec::new();
    while offset < wire.len() {
        let (frame, used) = Frame::decode(&wire[offset..]).expect("valid frame");
        assert_eq!(frame.msg_type, MessageType::DataChunk);
        reassembled.extend_from_slice(&frame.payload);
        offset += used;
    }
    assert_eq!(reassembled, compressed, "chunking must be lossless");

    // Cloud side: decompress → parse → analyze.
    let restored = decompress(&reassembled).expect("valid LZW stream");
    assert_eq!(restored, csv.as_bytes());
    let received =
        trace_from_csv(std::str::from_utf8(&restored).expect("utf8 csv")).expect("well-formed CSV");

    let server = AnalysisServer::paper_default();
    let direct = server.analyze(&trace);
    let relayed = server.analyze(&received);
    assert_eq!(
        direct.peak_count(),
        relayed.peak_count(),
        "analysis must not change through the relay"
    );
    // Peak characteristics survive to CSV printing precision.
    for (a, b) in direct.peaks.iter().zip(&relayed.peaks) {
        assert!((a.time_s - b.time_s).abs() < 1e-6);
        assert!((a.amplitude - b.amplitude).abs() < 1e-6);
    }
}

#[test]
fn app_state_machine_survives_a_full_session() {
    use medsen::phone::{AppEvent, AppState, PhoneApp};
    let mut app = PhoneApp::new();
    assert_eq!(app.state(), AppState::Disconnected);
    app.handle(AppEvent::AccessoryAttached);
    app.handle(AppEvent::StartPressed);
    for p in [10u8, 40, 80, 100] {
        app.handle(AppEvent::Progress(p));
    }
    app.handle(AppEvent::AcquisitionDone);
    app.handle(AppEvent::UploadDone);
    app.handle(AppEvent::ResultReceived);
    assert_eq!(app.state(), AppState::Complete);
}

#[test]
fn corrupted_relay_data_cannot_reach_analysis_silently() {
    let trace = sample_trace();
    let csv = trace_to_csv(&trace);
    let mut compressed = compress(csv.as_bytes());
    // Flip a byte mid-stream: either decompression errors out, or the CSV
    // parse fails — silence is not an option.
    let mid = compressed.len() / 2;
    compressed[mid] ^= 0xFF;
    match decompress(&compressed) {
        Err(_) => {} // detected at the codec
        Ok(bytes) => {
            let text = String::from_utf8_lossy(&bytes);
            assert!(
                trace_from_csv(&text).is_err() || bytes != csv.as_bytes(),
                "corruption must not round-trip cleanly"
            );
        }
    }
}
