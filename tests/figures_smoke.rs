//! Smoke tests: every figure/table harness runs (at reduced scale) and
//! reproduces the paper's qualitative shape.

use medsen::units::Seconds;
use medsen_bench::experiments::*;

#[test]
fn fig07_single_dip() {
    let r = fig07::run(7);
    assert!(r.peak.amplitude > 0.003);
}

#[test]
fn fig08_five_peaks() {
    let r = fig08::run(11);
    assert_eq!((r.scheduled, r.detected), (5, 5));
}

#[test]
fn fig11_signatures() {
    let rs = fig11::run(3);
    let detected: Vec<usize> = rs.iter().map(|r| r.detected).collect();
    assert_eq!(detected, vec![1, 3, 5, 17]);
}

#[test]
fn fig12_13_linear_with_losses() {
    let sweep78 = bead_counts::run(
        medsen::microfluidics::ParticleKind::Bead78,
        &[50.0, 150.0, 300.0],
        2,
        Seconds::new(60.0),
        12,
    );
    assert!(sweep78.fit.r_squared > 0.95);
    assert!(sweep78.fit.slope < 1.0);
}

#[test]
fn fig14_scaling() {
    let rows = fig14::run();
    assert!(rows[2].model_phone_s > rows[2].model_computer_s * 3.0);
}

#[test]
fn fig15_dispersion() {
    let rs = fig15::run(5);
    let cell = rs
        .iter()
        .find(|r| r.kind == medsen::microfluidics::ParticleKind::RedBloodCell)
        .expect("cell present");
    assert!(cell.dip_at(3.0e6) < cell.dip_at(5.0e5));
}

#[test]
fn fig16_classification() {
    let r = fig16::run(30, 9);
    assert!(r.confusion.accuracy() > 0.85, "{}", r.confusion);
}

#[test]
fn key_table_headline() {
    assert_eq!(key_length::run()[0].bits, 1_040_000);
}

#[test]
fn end_to_end_sessions() {
    let stats = end_to_end::run(2, Seconds::new(15.0), 21);
    assert!(stats.mean_compression_ratio > 2.0);
}

#[test]
fn adversary_sweep_shape() {
    let outcomes = adversary::run(3, Seconds::new(15.0), 41);
    let plaintext = &outcomes[0];
    let full = &outcomes[3];
    assert!(full.amplitude_attack_err > plaintext.amplitude_attack_err);
}
