//! Property tests for warm-standby replication (vendored proptest).
//!
//! The invariant the failover battery spot-checks, stated as a law and
//! fuzzed over arbitrary operation sequences and arbitrary cut points:
//! **replaying any acked prefix of the shipped frame stream yields a
//! node observationally equivalent to the primary at that offset.**
//!
//! * `standby_always_equals_the_acked_prefix_oracle` — partition the
//!   link after a random prefix of a random op sequence. The standby
//!   applied exactly the acked prefix, so it must match a memory-only
//!   oracle that replayed only those ops; after healing and snapshot
//!   catch-up it must match the full-sequence oracle, byte-for-byte of
//!   observable behavior.
//! * `promoted_standby_equals_the_oracle_at_any_kill_point` — kill the
//!   primary after a random prefix instead; the promoted standby must
//!   serve the prefix oracle's history and keep taking writes.

use medsen::cloud::auth::BeadSignature;
use medsen::cloud::service::{CloudService, Request, Response};
use medsen::cloud::storage::StoredRecord;
use medsen::cloud::{FlushPolicy, PeakReport, RecordId, ReplicatedCloud, StorageConfig};
use medsen::microfluidics::ParticleKind;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const SHARDS: usize = 4;

fn sig(n: u64) -> BeadSignature {
    BeadSignature::from_counts(&[(ParticleKind::Bead358, n)])
}

fn record(user: &str, n: u64) -> StoredRecord {
    StoredRecord {
        user_id: user.to_string(),
        report: PeakReport {
            peaks: vec![],
            carriers_hz: vec![5e5],
            sample_rate_hz: 450.0,
            duration_s: n as f64,
            noise_sigma: 3.0e-4,
        },
        signature: sig(n),
    }
}

/// The op vocabulary: enrolls and stores spread over a small user pool
/// (so re-enrollment and multi-record users occur), plus tampers aimed
/// at whatever records exist by then.
#[derive(Clone, Debug)]
enum Op {
    Enroll(u8, u64),
    Store(u8, u64),
    Tamper(u8),
}

fn apply(svc: &CloudService, op: &Op, created: &mut Vec<RecordId>) {
    match op {
        Op::Enroll(user, n) => {
            let response = svc.handle_shared(Request::Enroll {
                identifier: format!("user-{user}"),
                signature: sig(*n),
            });
            assert_eq!(response, Response::Enrolled);
        }
        Op::Store(user, n) => {
            created.push(svc.store().store(record(&format!("user-{user}"), *n)));
        }
        Op::Tamper(k) => {
            if let Some(id) = created.get(*k as usize) {
                assert!(svc.store().tamper(*id, record("mallory", 666)));
            }
        }
    }
}

fn total_enrolled(svc: &CloudService) -> usize {
    svc.shard_stats().iter().map(|s| s.enrolled).sum()
}

/// Replays `ops` on a fresh memory-only service — the oracle.
fn oracle_for(ops: &[Op]) -> (CloudService, Vec<RecordId>) {
    let oracle = CloudService::with_shards(SHARDS);
    let mut ids = Vec::new();
    for op in ops {
        apply(&oracle, op, &mut ids);
    }
    (oracle, ids)
}

/// Observational equivalence over every id either side allocated.
fn check_equiv(
    served: &CloudService,
    oracle: &CloudService,
    ids: &[RecordId],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(served.store().len(), oracle.store().len(), "record count");
    prop_assert_eq!(
        total_enrolled(served),
        total_enrolled(oracle),
        "enrollments"
    );
    for id in ids {
        let (a, b) = (served.store().fetch(*id), oracle.store().fetch(*id));
        prop_assert_eq!(a, b, "record {:?} diverged", id);
        prop_assert_eq!(
            served.handle_shared(Request::VerifyIntegrity { record_id: *id }),
            oracle.handle_shared(Request::VerifyIntegrity { record_id: *id }),
            "integrity verdict for {:?} diverged",
            id
        );
    }
    Ok(())
}

/// Fresh on-disk pair per proptest case; the counter keeps concurrent
/// cases (and shrink replays) from colliding on the same directories.
fn replicated_pair() -> (Arc<ReplicatedCloud>, [PathBuf; 2]) {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dirs = ["p", "s"].map(|side| {
        let dir = std::env::temp_dir().join(format!(
            "medsen-replica-props-{side}-{case}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    let [primary, standby] = dirs.each_ref().map(|dir| {
        CloudService::with_storage_config(
            StorageConfig::new(dir).flush(FlushPolicy::EveryWrite),
            SHARDS,
        )
        .expect("storage opens")
    });
    let pair = primary.with_replication(standby).expect("pair wires up");
    (pair, dirs)
}

fn cleanup(dirs: [PathBuf; 2]) {
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Arbitrary op sequences plus a cut point somewhere in them.
fn ops_and_cut() -> impl Strategy<Value = (Vec<Op>, usize)> {
    // The vendored proptest has no `prop_oneof`; a discriminant field
    // picks the variant instead.
    let op = (0u8..3, 0u8..8, 3u64..60).prop_map(|(d, u, n)| match d {
        0 => Op::Enroll(u % 4, n),
        1 => Op::Store(u % 4, n),
        _ => Op::Tamper(u),
    });
    proptest::collection::vec(op, 0..14)
        .prop_flat_map(|ops| (0..=ops.len()).prop_map(move |cut| (ops.clone(), cut)))
}

proptest! {
    // Each case opens four WALs on disk; 24 cases keeps the suite quick
    // while still shrinking failures to a minimal op sequence.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn standby_always_equals_the_acked_prefix_oracle((ops, cut) in ops_and_cut()) {
        let (pair, dirs) = replicated_pair();
        let mut created = Vec::new();
        for op in &ops[..cut] {
            apply(&pair.serving(), op, &mut created);
        }
        // Partition: everything after the cut is acked by the primary
        // but never shipped — the acked prefix of the stream is ops[..cut].
        pair.partition_link();
        for op in &ops[cut..] {
            apply(&pair.serving(), op, &mut created);
        }
        prop_assert!(!pair.is_promoted(), "a partition alone must not fail over");
        let (prefix_oracle, prefix_ids) = oracle_for(&ops[..cut]);
        prop_assert_eq!(&created[..prefix_ids.len()], &prefix_ids[..], "id allocation");
        check_equiv(pair.standby(), &prefix_oracle, &created)?;
        // Heal and catch up: the standby must now equal the full oracle.
        pair.heal_link();
        pair.catch_up().expect("snapshot transfer");
        prop_assert_eq!(pair.status().shipper.lag_bytes, 0, "catch-up drains all lag");
        let (full_oracle, full_ids) = oracle_for(&ops);
        prop_assert_eq!(&created, &full_ids, "id allocation");
        check_equiv(pair.standby(), &full_oracle, &created)?;
        cleanup(dirs);
    }

    #[test]
    fn promoted_standby_equals_the_oracle_at_any_kill_point((ops, cut) in ops_and_cut()) {
        let (pair, dirs) = replicated_pair();
        let mut created = Vec::new();
        for op in &ops[..cut] {
            apply(&pair.serving(), op, &mut created);
        }
        pair.kill_primary();
        let serving = pair.serving();
        prop_assert!(pair.is_promoted(), "routing must promote after a kill");
        prop_assert!(Arc::ptr_eq(&serving, pair.standby()), "the standby serves");
        let (oracle, oracle_ids) = oracle_for(&ops[..cut]);
        prop_assert_eq!(&created, &oracle_ids, "id allocation");
        check_equiv(&serving, &oracle, &created)?;
        // The promoted node is a live primary: the rest of the sequence
        // runs against it and stays oracle-equivalent, ids included
        // (replication advanced the standby's allocators to exactly the
        // primary's high-water marks).
        let mut oracle_created = created.clone();
        for op in &ops[cut..] {
            apply(&serving, op, &mut created);
            apply(&oracle, op, &mut oracle_created);
        }
        prop_assert_eq!(&created, &oracle_created, "post-failover id allocation");
        check_equiv(&serving, &oracle, &created)?;
        cleanup(dirs);
    }
}
