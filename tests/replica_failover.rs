//! Kill-point fault battery for warm-standby replication
//! (`CloudService::with_replication` over `medsen-replica`).
//!
//! The battery, in the style of `wal_recovery.rs`:
//!
//! * **Kill points** — a deterministic operation log runs against a
//!   replicated pair; at pseudo-random write boundaries the primary is
//!   killed (routing stops returning it and the replication link drops,
//!   the in-process analogue of a machine death). The standby promoted
//!   at each kill point must serve history observationally equivalent
//!   to a single-node oracle that replayed exactly the acknowledged
//!   prefix — zero acknowledged writes lost.
//! * **Concurrent storm** — 8 threads of enrolls, record filings, and
//!   analyze reads hammer the pair while a coordinator kills the
//!   primary at a sampled progress point. Every write acknowledged
//!   strictly before the kill must be served by the promoted standby;
//!   writes acked after failover land on the standby directly and must
//!   survive too.
//! * **Stale-epoch fencing** — a resurrected old primary's first
//!   journaled write ships under the deposed epoch, is rejected by the
//!   standby, and fails stop; thereafter the node refuses every request
//!   and gateway routing never returns it.

use medsen::cloud::auth::BeadSignature;
use medsen::cloud::service::{CloudService, Request, Response};
use medsen::cloud::storage::StoredRecord;
use medsen::cloud::{FlushPolicy, PeakReport, RecordId, ReplicatedCloud, StorageConfig};
use medsen::microfluidics::ParticleKind;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};

const SHARDS: usize = 4;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "medsen-replica-failover-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sig(n: u64) -> BeadSignature {
    BeadSignature::from_counts(&[(ParticleKind::Bead358, n)])
}

fn record(user: &str, n: u64) -> StoredRecord {
    StoredRecord {
        user_id: user.to_string(),
        report: PeakReport {
            peaks: vec![],
            carriers_hz: vec![5e5],
            sample_rate_hz: 450.0,
            duration_s: n as f64,
            noise_sigma: 3.0e-4,
        },
        signature: sig(n),
    }
}

/// One step of the deterministic operation log (same shape as the
/// crash-recovery battery's, so the two oracles agree on semantics).
#[derive(Clone, Debug)]
enum Op {
    Enroll(String, u64),
    Store(String, u64),
    Tamper(usize),
}

fn op_log(len: usize) -> Vec<Op> {
    (0..len)
        .map(|i| match i % 5 {
            0 => Op::Enroll(format!("user-{}", i / 5), 3 + i as u64),
            1 | 2 => Op::Store(format!("user-{}", i / 5), 10 + i as u64),
            3 => Op::Store(format!("walkin-{i}"), 40 + i as u64),
            _ => Op::Tamper(i / 7),
        })
        .collect()
}

fn apply(svc: &CloudService, op: &Op, created: &mut Vec<(String, RecordId)>) {
    match op {
        Op::Enroll(user, n) => {
            let response = svc.handle_shared(Request::Enroll {
                identifier: user.clone(),
                signature: sig(*n),
            });
            assert_eq!(response, Response::Enrolled);
        }
        Op::Store(user, n) => {
            let id = svc.store().store(record(user, *n));
            created.push((user.clone(), id));
        }
        Op::Tamper(k) => {
            if let Some((_, id)) = created.get(*k) {
                assert!(svc.store().tamper(*id, record("mallory", 666)));
            }
        }
    }
}

fn total_enrolled(svc: &CloudService) -> usize {
    svc.shard_stats().iter().map(|s| s.enrolled).sum()
}

/// Observational equivalence: identical totals, identical record
/// contents (or identical absence), identical integrity verdicts.
fn assert_equiv(served: &CloudService, oracle: &CloudService, ids: &[(String, RecordId)]) {
    assert_eq!(served.store().len(), oracle.store().len(), "record count");
    assert_eq!(
        total_enrolled(served),
        total_enrolled(oracle),
        "enrollments"
    );
    for (_, id) in ids {
        match (served.store().fetch(*id), oracle.store().fetch(*id)) {
            (Some(a), Some(b)) => assert_eq!(a, b, "record {id:?} diverged"),
            (None, None) => {}
            (a, b) => panic!("record {id:?}: served {a:?} vs oracle {b:?}"),
        }
        assert_eq!(
            served.handle_shared(Request::VerifyIntegrity { record_id: *id }),
            oracle.handle_shared(Request::VerifyIntegrity { record_id: *id }),
            "integrity verdict for {id:?} diverged"
        );
    }
}

/// Replays `ops[..=k]` on a fresh memory-only service.
fn oracle_for_prefix(ops: &[Op], k: usize) -> (CloudService, Vec<(String, RecordId)>) {
    let oracle = CloudService::with_shards(SHARDS);
    let mut ids = Vec::new();
    for op in &ops[..=k] {
        apply(&oracle, op, &mut ids);
    }
    (oracle, ids)
}

fn replicated_pair(tag: &str) -> (Arc<ReplicatedCloud>, [PathBuf; 2]) {
    let dirs = [temp_dir(&format!("{tag}-p")), temp_dir(&format!("{tag}-s"))];
    let [primary, standby] = dirs.each_ref().map(|dir| {
        CloudService::with_storage_config(
            StorageConfig::new(dir).flush(FlushPolicy::EveryWrite),
            SHARDS,
        )
        .expect("storage opens")
    });
    let pair = primary.with_replication(standby).expect("pair wires up");
    (pair, dirs)
}

/// The headline battery: for every sampled kill point k, a fresh pair
/// runs `ops[..=k]`, the primary dies, and the promoted standby must
/// serve exactly the prefix oracle's history. Every write acked before
/// the kill was shipped before it was acked, so nothing may be missing.
#[test]
fn promoted_standby_at_every_sampled_kill_point_serves_the_prefix_oracle() {
    let ops = op_log(40);
    // The workspace's shared seeded RNG picks ~1/3 of the write
    // boundaries (deterministically — same sample every run).
    let mut kill_points = Vec::new();
    let mut rng = medsen::audit::AuditRng::derive(40, b"failover-kill-points");
    for k in 0..ops.len() {
        if rng.next_u64().is_multiple_of(3) || k + 1 == ops.len() {
            kill_points.push(k);
        }
    }
    assert!(kill_points.len() >= 8, "sampled too few kill points");
    for k in kill_points {
        let (pair, dirs) = replicated_pair(&format!("killpoint-{k}"));
        let mut created = Vec::new();
        for op in &ops[..=k] {
            apply(&pair.serving(), op, &mut created);
        }
        pair.kill_primary();
        let serving = pair.serving();
        assert!(pair.is_promoted(), "kill point {k}: routing must promote");
        assert!(
            Arc::ptr_eq(&serving, pair.standby()),
            "kill point {k}: the standby serves"
        );
        assert_eq!(pair.epoch(), 2, "kill point {k}");
        let (oracle, oracle_ids) = oracle_for_prefix(&ops, k);
        assert_eq!(created, oracle_ids, "kill point {k}: id allocation");
        assert_equiv(&serving, &oracle, &created);
        // The promoted node is a full primary: it keeps taking writes.
        apply(
            &serving,
            &Op::Enroll("post-failover".into(), 99),
            &mut created,
        );
        assert_eq!(total_enrolled(&serving), total_enrolled(&oracle) + 1);
        drop(pair);
        for dir in dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// 8 threads hammer the pair — enrolls, record filings, and analyze-ish
/// reads — while the coordinator kills the primary at a sampled
/// progress point. The protocol threads use to classify an op as
/// *must-survive* is sound because shipping happens before the ack:
/// if the kill flag was still clear after the ack, the link was up when
/// the frame shipped, so the standby already applied it.
#[test]
fn concurrent_storm_with_a_mid_storm_kill_loses_no_acknowledged_write() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 24;
    // Sampled kill points spread across the storm's progress by the
    // workspace's shared seeded RNG.
    let mut kill_at = Vec::new();
    let mut rng = medsen::audit::AuditRng::derive(0, b"storm-kill-points");
    for _ in 0..3 {
        kill_at.push(8 + rng.below((THREADS * PER_THREAD - 40) as u64) as usize);
    }
    for (round, kill_threshold) in kill_at.into_iter().enumerate() {
        let (pair, dirs) = replicated_pair(&format!("storm-{round}"));
        let barrier = Barrier::new(THREADS + 1);
        // Raised *before* the link drops: any op that observes the flag
        // clear after its ack is guaranteed to have shipped.
        let killed = AtomicBool::new(false);
        let completed = AtomicUsize::new(0);
        let must_survive = Mutex::new(Vec::<(String, Option<RecordId>, u64)>::new());

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let pair = &pair;
                let barrier = &barrier;
                let killed = &killed;
                let completed = &completed;
                let must_survive = &must_survive;
                scope.spawn(move || {
                    barrier.wait();
                    let mut mine = Vec::new();
                    for i in 0..PER_THREAD {
                        let serving = pair.serving();
                        let user = format!("storm-{t}-{i}");
                        let n = 3 + (t * PER_THREAD + i) as u64;
                        let stored = match i % 3 {
                            0 => {
                                let response = serving.handle_shared(Request::Enroll {
                                    identifier: user.clone(),
                                    signature: sig(n),
                                });
                                assert_eq!(response, Response::Enrolled);
                                None
                            }
                            1 => Some(serving.store().store(record(&user, n))),
                            _ => {
                                // A read keeps the analyze path in the mix
                                // without journaling anything.
                                let response = serving.handle_shared(Request::Ping);
                                assert_eq!(response, Response::Pong);
                                completed.fetch_add(1, Ordering::SeqCst);
                                continue;
                            }
                        };
                        completed.fetch_add(1, Ordering::SeqCst);
                        // Acked, and the kill had not happened yet: the
                        // frame shipped over a live link. Must survive.
                        if !killed.load(Ordering::SeqCst) {
                            mine.push((user, stored, n));
                        }
                    }
                    must_survive.lock().unwrap().extend(mine);
                });
            }
            barrier.wait();
            while completed.load(Ordering::SeqCst) < kill_threshold {
                std::hint::spin_loop();
            }
            killed.store(true, Ordering::SeqCst);
            pair.kill_primary();
        });

        let serving = pair.serving();
        assert!(
            pair.is_promoted(),
            "round {round}: the storm must fail over"
        );
        assert!(
            Arc::ptr_eq(&serving, pair.standby()),
            "round {round}: the standby serves"
        );
        let survivors = must_survive.into_inner().unwrap();
        assert!(
            !survivors.is_empty(),
            "round {round}: the kill fired before any write was acked"
        );
        for (user, stored, n) in &survivors {
            match stored {
                None => {
                    // Enrollment: a fresh record filed on the promoted
                    // standby carrying the enrolled signature must verify
                    // intact — it can't if the enrollment was lost.
                    let probe = serving.store().store(record(user, *n));
                    assert_eq!(
                        serving.handle_shared(Request::VerifyIntegrity { record_id: probe }),
                        Response::Integrity { intact: true },
                        "round {round}: acknowledged enrollment of {user} lost"
                    );
                }
                Some(id) => {
                    let rec = serving.store().fetch(*id).unwrap_or_else(|| {
                        panic!("round {round}: acknowledged record {id:?} of {user} lost")
                    });
                    assert_eq!(&rec.user_id, user, "round {round}: record {id:?} leaked");
                }
            }
        }
        drop(pair);
        for dir in dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A resurrected deposed primary fails closed at every level: its first
/// journaled write panics (fail-stop, nothing acked), the standby counts
/// the stale rejection, the node refuses all requests afterwards, and
/// gateway routing never sends traffic back to it.
#[test]
fn resurrected_stale_primary_fails_closed_everywhere() {
    use medsen::gateway::{
        encode_upload, Gateway, GatewayConfig, RuntimeKind, ShedPolicy, TelemetryConfig,
    };

    let (pair, dirs) = replicated_pair("fence");
    let old_primary = Arc::clone(pair.primary());
    apply(
        &pair.serving(),
        &Op::Enroll("alice".into(), 40),
        &mut Vec::new(),
    );
    pair.kill_primary();
    let gateway = Gateway::with_replicas(
        Arc::clone(&pair),
        GatewayConfig {
            queue_capacity: 8,
            workers: 2,
            shed_policy: ShedPolicy::Block,
        },
        RuntimeKind::Threads,
        TelemetryConfig::disabled(),
    );
    // Gateway traffic triggers the promotion.
    let json = medsen::phone::to_json(&Request::Ping).expect("encodes");
    let reply = gateway.submit(encode_upload(1, &json)).expect("accepted");
    assert_eq!(reply.wait().expect("served"), Response::Pong);
    assert!(pair.is_promoted());

    pair.resurrect_primary();
    // The zombie's first write discovers the deposition and fails stop —
    // the enrollment is NOT acknowledged.
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        old_primary.handle_shared(Request::Enroll {
            identifier: "zombie".into(),
            signature: sig(70),
        })
    }));
    assert!(attempt.is_err(), "a deposed write must not return");
    assert!(old_primary.is_fenced());
    assert!(matches!(
        old_primary.handle_shared(Request::Ping),
        Response::Error { .. }
    ));
    assert!(pair.status().standby.stale_rejected >= 1);
    // Routing still serves from the standby, which never saw the zombie
    // write.
    assert!(Arc::ptr_eq(&pair.serving(), pair.standby()));
    assert_eq!(total_enrolled(&pair.serving()), 1);
    let reply = gateway
        .submit(medsen_gateway::encode_upload(2, &json))
        .expect("accepted");
    assert_eq!(reply.wait().expect("served"), Response::Pong);
    gateway.shutdown();
    drop(pair);
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Lag accrued during a partition drains through snapshot catch-up, and
/// the stream then resumes frame-by-frame — the pair ends byte-equal to
/// the no-partition oracle.
#[test]
fn partition_then_catch_up_converges_to_the_oracle() {
    let ops = op_log(30);
    let (pair, dirs) = replicated_pair("catchup");
    let mut created = Vec::new();
    for op in &ops[..10] {
        apply(&pair.serving(), op, &mut created);
    }
    // Partition only the link: the primary keeps serving and acking
    // (no failover), the shipper detaches the lagging shards, and lag
    // grows for the duration.
    pair.partition_link();
    for op in &ops[10..20] {
        apply(&pair.serving(), op, &mut created);
    }
    assert!(!pair.is_promoted(), "a link blip must not fail over");
    assert!(
        pair.status().shipper.lag_bytes > 0,
        "ten partitioned writes must show up as lag"
    );
    pair.heal_link();
    for op in &ops[20..] {
        apply(&pair.serving(), op, &mut created);
    }
    pair.catch_up().expect("snapshot transfer");
    let status = pair.status();
    assert_eq!(status.shipper.lag_bytes, 0, "catch-up drains all lag");
    assert!(status.shards.iter().all(|s| s.attached));
    let (oracle, oracle_ids) = oracle_for_prefix(&ops, ops.len() - 1);
    assert_eq!(created, oracle_ids);
    assert_equiv(pair.standby(), &oracle, &created);
    drop(pair);
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
