//! Property tests for the fountain codec (vendored proptest).
//!
//! Two laws, fuzzed over arbitrary payloads, symbol sizes, and loss
//! patterns:
//!
//! * **any sufficient subset decodes** — for any block and any
//!   pseudo-random subset of the coded stream that the peeling decoder
//!   manages to complete on, the reassembled block is byte-identical to
//!   the source, in any arrival order;
//! * **the decoder never panics** — adversarial symbol streams (bit
//!   flips, truncations, forged headers, cross-wired streams) produce
//!   typed errors or rejected symbols, never a crash or a wrong block.

use medsen::fountain::{
    decode_symbol_frame, encode_symbol_frame, source_symbol_count, Decoder, Encoder, SymbolFrame,
};
use proptest::prelude::*;

/// A deterministic index-shuffle so arrival order is arbitrary without
/// proptest having to generate a permutation.
fn shuffled(count: u64, salt: u64) -> Vec<u64> {
    let mut ids: Vec<u64> = (0..count).collect();
    let mut rng = medsen::audit::AuditRng::derive(salt, b"arrival-order");
    rng.shuffle(&mut ids);
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stream 6x the source symbol count, drop a pseudo-random subset at
    /// `loss`%, deliver the survivors in shuffled order: whenever the
    /// decoder completes, the block equals the source bytes.
    #[test]
    fn any_sufficient_subset_reassembles_the_block(
        body in proptest::collection::vec(any::<u8>(), 0..2048),
        symbol_size in (0usize..3).prop_map(|i| [16usize, 64, 256][i]),
        loss_pct in 0u32..60,
        seed in any::<u64>(),
    ) {
        let k = source_symbol_count(body.len(), symbol_size);
        let budget = (k as u64) * 6 + 32;
        let mut encoder = Encoder::new(11, seed, &body, symbol_size).expect("encoder");
        let mut decoder = Decoder::new(body.len(), symbol_size, seed).expect("decoder");
        let mut completed = false;
        for id in shuffled(budget, seed ^ 0xA5A5) {
            // Pseudo-random per-symbol drop at `loss_pct`.
            let drop_draw = id
                .wrapping_add(seed)
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                >> 32;
            if (drop_draw % 100) < loss_pct as u64 {
                continue;
            }
            let frame = encoder.symbol(id);
            if decoder.push_frame(&frame).expect("same stream") {
                completed = true;
                break;
            }
        }
        if completed {
            prop_assert_eq!(decoder.block().expect("complete"), body);
            let stats = decoder.stats();
            prop_assert!(stats.overhead_ratio() >= 1.0 || k == 0);
        }
        // At ≤60% loss with a 6x budget the decode should essentially
        // always finish; tolerate the (astronomically rare) miss only by
        // not asserting completion when symbols ran out *and* loss was
        // extreme.
        if loss_pct < 40 {
            prop_assert!(completed, "6x budget at {}% loss failed to decode", loss_pct);
        }
    }

    /// Feed the decoder a mix of genuine, bit-flipped, truncated, and
    /// forged frames: every input either errors typed or is accepted,
    /// and a completed block is still byte-identical to the source.
    #[test]
    fn adversarial_streams_never_panic_or_corrupt(
        body in proptest::collection::vec(any::<u8>(), 1..1024),
        seed in any::<u64>(),
        flip_byte in any::<usize>(),
        flip_mask in 1u8..=255,
        truncate_to in any::<usize>(),
        forged_block_len in any::<u32>(),
    ) {
        let symbol_size = 32;
        let mut encoder = Encoder::new(3, seed, &body, symbol_size).expect("encoder");
        let mut decoder = Decoder::new(body.len(), symbol_size, seed).expect("decoder");
        let budget = (decoder.source_symbols() as u64) * 4 + 16;
        for id in 0..budget {
            let mut wire = encoder.symbol_bytes(id);
            match id % 4 {
                // Bit-flip anywhere in the frame: CRC or stream checks
                // must reject it (or, for the length prefix, a typed
                // parse error).
                1 => {
                    let at = flip_byte % wire.len();
                    wire[at] ^= flip_mask;
                }
                // Truncation mid-frame.
                2 => {
                    wire.truncate(truncate_to % (wire.len() + 1));
                }
                // Forged header: wrong stream seed, arbitrary geometry.
                // (The seed must differ — a same-seed forge with matching
                // geometry is an undetectably poisoned symbol by design.)
                3 => {
                    let frame = SymbolFrame {
                        session_id: 3,
                        symbol_id: id,
                        seed: seed ^ 1,
                        block_len: forged_block_len % (1 << 20),
                        symbol_size: symbol_size as u32,
                        data: vec![0xEE; symbol_size],
                    };
                    wire.clear();
                    encode_symbol_frame(&frame, &mut wire);
                }
                // Genuine symbol.
                _ => {}
            }
            let Ok((frame, _)) = decode_symbol_frame(&wire) else {
                continue; // typed parse/CRC rejection
            };
            if !decoder.matches_stream(&frame) {
                continue; // typed stream rejection path
            }
            let _ = decoder.push_frame(&frame);
            if decoder.is_complete() {
                break;
            }
        }
        if decoder.is_complete() {
            prop_assert_eq!(decoder.block().expect("complete"), body);
        }
    }
}
