//! Overload soak acceptance (ISSUE 10): a scaled-clock storm of more
//! than 10⁶ submission attempts drives queue shed, per-session rate
//! limiting, fountain session eviction, and one primary failover through
//! an adaptively-sampled gateway — and every overload counter in the
//! exposition must reconcile *exactly* against the driver's own ledger.
//!
//! The two load-bearing identities:
//!
//! * `completed + shed + rate_limited + evicted == submitted` — no
//!   attempt is lost or double-counted anywhere in the stack;
//! * `telemetry.spans_recorded + telemetry.spans_sampled_out ==
//!   telemetry.spans_admitted` — the adaptive sampler sheds *telemetry*,
//!   never *accounting*, even while the AIMD controller is actively
//!   clamping the keep probability under storm pressure.

use medsen::gateway::soak::{run, SoakConfig};

#[test]
fn million_request_soak_reconciles_exactly() {
    let config = SoakConfig::standard();
    let report = run(&config);
    println!("{report}");

    if let Err(errors) = report.reconcile() {
        panic!("soak failed to reconcile:\n{}", errors.join("\n"));
    }

    // Scale: the acceptance floor is a million-attempt storm.
    assert!(
        report.submitted >= 1_000_000,
        "soak must drive ≥10⁶ attempts, drove {}",
        report.submitted
    );

    // Every overload path actually fired.
    assert!(report.rate_limited >= 999_000, "rate-limit storm refused");
    assert!(
        report.shed >= config.shed_storm - config.workers as u64,
        "queue shed fired, got {}",
        report.shed
    );
    assert_eq!(
        report.evicted, config.fountain_capacity as u64,
        "every stranded fountain stream was capacity-evicted"
    );
    assert_eq!(report.promotions, 1, "exactly one failover");
    assert!(report.completed > 0, "traffic survived the storm");

    // The controller visibly reacted: a million refusals must drag the
    // keep probability off its 100% ceiling, and spans must actually
    // have been dropped (not just counted).
    assert!(
        report.sampler_permille < 1000,
        "overload must clamp the sampler, keep is still {}‰",
        report.sampler_permille
    );
    assert!(
        report.spans_sampled_out > 0,
        "adaptive sampling must shed some spans under storm pressure"
    );
    assert!(
        report.spans_recorded > 0,
        "slow-exemplar keep means the ring never goes fully dark"
    );
}
