//! Lossy-link storm for the fountain one-way uplink (ISSUE: rateless
//! phone→cloud transfer for RF-restricted clinics).
//!
//! N dongle sessions run concurrently in one-way fountain mode across
//! simulated links dropping 1%–50% of their symbols. Every enrollment
//! and every authenticated analysis must complete with responses
//! observationally equivalent to a lossless sequential oracle — zero
//! lost enrollments, zero sessions giving up — at drop rates where the
//! two-way retry path demonstrably collapses (shown in the same test:
//! the retry path's bounded attempt budget fails sessions at 50% drop).

use medsen::cloud::auth::{AuthDecision, BeadSignature};
use medsen::cloud::service::{CloudService, Request, Response};
use medsen::dsp::classify::Classifier;
use medsen::dsp::FeatureVector;
use medsen::gateway::{
    Gateway, GatewayConfig, RetryPolicy, SessionConfig, SessionError, ShedPolicy,
};
use medsen::impedance::{PulseSpec, SignalTrace, TraceSynthesizer};
use medsen::microfluidics::ParticleKind;
use medsen::phone::SymbolBudget;
use medsen::units::Seconds;
use std::sync::{Barrier, Mutex};

const SESSIONS: usize = 12;

/// Clinic users with pairwise-disjoint ±30% bead-count bands.
const USERS: [(&str, u64); 4] = [("ana", 3), ("bo", 6), ("cleo", 12), ("dee", 24)];

fn user_for_session(i: usize) -> (&'static str, u64) {
    USERS[i % USERS.len()]
}

/// Per-session symbol drop rate, spread over 1%..=50%.
fn drop_rate(i: usize) -> f64 {
    0.01 + 0.49 * (i as f64 / (SESSIONS - 1) as f64)
}

/// The session's redundancy budget, sized to its own worst-case drop
/// rate with extra LT margin (the storm asserts *zero* failures, so the
/// budget must cover unlucky seeds, not just the expectation).
fn budget_for(i: usize) -> SymbolBudget {
    let base = SymbolBudget::for_drop_rate(drop_rate(i));
    SymbolBudget {
        factor: base.factor * 1.5,
        floor: base.floor * 2,
    }
}

fn session_trace(session: usize, pulses: u64) -> SignalTrace {
    let mut synth = TraceSynthesizer::clean(1);
    let jitter = session as f64 * 1e-3;
    let specs: Vec<PulseSpec> = (0..pulses)
        .map(|j| {
            PulseSpec::unipolar(
                Seconds::new(0.5 + jitter + j as f64 * 0.25),
                Seconds::new(0.02),
                0.01,
            )
        })
        .collect();
    synth.render(
        &specs,
        Seconds::new(0.5 + jitter + pulses as f64 * 0.25 + 0.5),
    )
}

fn storm_classifier() -> Classifier {
    let svc = CloudService::new();
    let Response::Analyzed { report, .. } = svc.handle_shared(Request::Analyze {
        trace: session_trace(999, 8),
        authenticate: false,
    }) else {
        panic!("reference analysis failed");
    };
    let vectors: Vec<FeatureVector> = report
        .peaks
        .iter()
        .map(|p| FeatureVector {
            index: 0,
            amplitudes: p.features.clone(),
        })
        .collect();
    Classifier::train(&[(ParticleKind::Bead358.label(), vectors)]).expect("classifier trains")
}

fn service_with_classifier() -> CloudService {
    let mut svc = CloudService::new();
    svc.install_classifier(storm_classifier());
    svc
}

fn signature(count: u64) -> BeadSignature {
    BeadSignature::from_counts(&[(ParticleKind::Bead358, count)])
}

fn essence(response: Response) -> (medsen::cloud::api::PeakReport, AuthDecision) {
    match response {
        Response::Analyzed {
            report,
            auth: Some(decision),
            ..
        } => (report, decision),
        other => panic!("expected authenticated analysis, got {other:?}"),
    }
}

#[test]
fn fountain_storm_matches_lossless_oracle_where_retry_collapses() {
    // --- Lossless sequential oracle: direct calls, no gateway. ---
    let oracle_svc = service_with_classifier();
    for (user, count) in USERS {
        assert_eq!(
            oracle_svc.handle_shared(Request::Enroll {
                identifier: user.to_string(),
                signature: signature(count),
            }),
            Response::Enrolled
        );
    }
    let oracle: Vec<(medsen::cloud::api::PeakReport, AuthDecision)> = (0..SESSIONS)
        .map(|i| {
            let (_, count) = user_for_session(i);
            essence(oracle_svc.handle_shared(Request::Analyze {
                trace: session_trace(i, count),
                authenticate: true,
            }))
        })
        .collect();

    // --- The storm: concurrent one-way sessions at 1%..50% drop. ---
    let gateway = Gateway::new(
        service_with_classifier(),
        GatewayConfig {
            queue_capacity: 8,
            workers: 4,
            shed_policy: ShedPolicy::Reject {
                retry_after: Seconds::from_millis(50.0),
            },
        },
    );
    let results: Mutex<Vec<(usize, Response, Response)>> = Mutex::new(Vec::with_capacity(SESSIONS));
    let barrier = Barrier::new(SESSIONS);
    std::thread::scope(|scope| {
        for i in 0..SESSIONS {
            let gateway = &gateway;
            let results = &results;
            let barrier = &barrier;
            scope.spawn(move || {
                let (user, count) = user_for_session(i);
                let trace = session_trace(i, count);
                let mut session = gateway.connect(SessionConfig::fountain(
                    drop_rate(i),
                    0xF0_0D + i as u64,
                    budget_for(i),
                ));
                barrier.wait(); // maximize symbol interleaving
                                // Every session enrolls over the lossy one-way link —
                                // re-enrolling an identical signature is idempotent, so
                                // concurrent sessions sharing a user don't conflict.
                let enrolled = session.enroll(user, signature(count)).unwrap_or_else(|e| {
                    panic!(
                        "session {i}: enroll lost at {:.0}% drop: {e}",
                        drop_rate(i) * 100.0
                    )
                });
                let analyzed = session.analyze(trace, true).unwrap_or_else(|e| {
                    panic!(
                        "session {i}: analysis lost at {:.0}% drop: {e}",
                        drop_rate(i) * 100.0
                    )
                });
                let stats = session.stats();
                assert!(stats.symbols_emitted > 0, "session {i} streamed symbols");
                if i == SESSIONS - 1 {
                    // The worst link must actually be lossy for the claim
                    // "decodes despite drops" to mean anything.
                    assert!(stats.symbols_dropped > 0, "50% link dropped nothing");
                }
                results.lock().unwrap().push((i, enrolled, analyzed));
            });
        }
    });

    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|(i, ..)| *i);
    assert_eq!(results.len(), SESSIONS, "zero sessions gave up");

    // --- Equivalence with the lossless oracle, per session. ---
    for (i, enrolled, analyzed) in results {
        assert_eq!(enrolled, Response::Enrolled, "session {i}: enrollment lost");
        let (report, decision) = essence(analyzed);
        let (oracle_report, oracle_decision) = &oracle[i];
        assert_eq!(report, *oracle_report, "session {i}: report diverged");
        assert_eq!(decision, *oracle_decision, "session {i}: decision diverged");
    }

    // Every fountain stream that started also completed: nothing was
    // evicted half-decoded, and redundancy/overhead are accounted.
    let text = gateway.telemetry_text();
    let counter = |name: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
            .trim()
            .parse()
            .expect("counter parses")
    };
    assert_eq!(
        counter("fountain.sessions_started"),
        counter("fountain.sessions_completed"),
        "half-decoded streams were abandoned"
    );
    assert_eq!(counter("fountain.sessions_evicted"), 0);
    assert!(counter("fountain.overhead_permille") >= 1000);

    let metrics = gateway.shutdown();
    assert_eq!(metrics.lost(), 0, "accepted requests were lost");
    assert_eq!(
        metrics.completed,
        2 * SESSIONS as u64,
        "one enroll + one analysis per session"
    );

    // --- The same drop rate collapses the two-way retry path. ---
    // 256 requests at 50% drop with the paper's 5-attempt budget: each
    // request fails when all 5 tries drop (rate 0.5^5 ≈ 3.1%), so at
    // least one failure is effectively certain (P[all 256 survive] ≈
    // 3e-4), while the fountain fleet above completed everything at the
    // same loss rate.
    let retry_gateway = Gateway::new(
        service_with_classifier(),
        GatewayConfig {
            queue_capacity: 8,
            workers: 4,
            shed_policy: ShedPolicy::Reject {
                retry_after: Seconds::from_millis(50.0),
            },
        },
    );
    let mut retry_failures = 0u64;
    for r in 0..256u64 {
        // Multiply-mix the per-request seed: the session XORs it with its
        // (incrementing) id, and additive seeds would cancel against that
        // and correlate every session's failure draws.
        let seed = (0xBAD_5EED ^ r).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut config = SessionConfig::flaky(0.5, seed);
        config.retry = RetryPolicy {
            max_attempts: 5,
            base_backoff: Seconds::from_millis(100.0),
            multiplier: 2.0,
        };
        let mut session = retry_gateway.connect(config);
        match session.enroll("retry-probe", signature(40)) {
            Ok(_) => {}
            Err(SessionError::RetriesExhausted { attempts }) => {
                assert_eq!(attempts, 5);
                retry_failures += 1;
            }
            Err(other) => panic!("unexpected retry-path error: {other}"),
        }
    }
    retry_gateway.shutdown();
    assert!(
        retry_failures > 0,
        "retry path should demonstrably shed requests at 50% drop"
    );
}
