//! Shard storm: 8 threads hammer one sharded [`CloudService`] with
//! overlapping identifier sets — re-enrolling the same users, running
//! authenticated analyses, and filing records directly — then the final
//! state is compared against a single-threaded oracle that replays the
//! identical operation log on a fresh service.
//!
//! Invariants proven:
//! * no lost records — every id a thread obtained fetches back;
//! * no cross-user leakage — every record fetched through a user's index
//!   belongs to that user, and ids are globally unique;
//! * per-user record counts (and total/enrollment counts) equal the
//!   single-threaded oracle's.

use medsen::cloud::auth::{AuthDecision, BeadSignature};
use medsen::cloud::service::{CloudService, Request, Response};
use medsen::cloud::storage::StoredRecord;
use medsen::cloud::{RecordId, DEFAULT_SHARD_COUNT};
use medsen::dsp::classify::Classifier;
use medsen::dsp::FeatureVector;
use medsen::impedance::{PulseSpec, SignalTrace, TraceSynthesizer};
use medsen::microfluidics::ParticleKind;
use medsen::units::Seconds;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Barrier, Mutex};

const THREADS: usize = 8;
const ROUNDS: usize = 4;
/// Direct record filings per round, for the shared user and again for the
/// thread's solo user.
const DIRECT_STORES: usize = 2;

/// Users every thread touches: bead counts with pairwise-disjoint ±30%
/// acceptance bands so authentication is unambiguous.
const SHARED: [(&str, u64); 4] = [("ana", 3), ("bo", 6), ("cleo", 12), ("dee", 24)];

fn shared_for_thread(t: usize) -> (&'static str, u64) {
    SHARED[t % SHARED.len()]
}

fn solo_user(t: usize) -> String {
    format!("solo-{t}")
}

/// Solo signatures live far above the measured 3–24 bead range, so they
/// can never collide with an authentication scan.
fn solo_signature(t: usize) -> BeadSignature {
    BeadSignature::from_counts(&[(ParticleKind::Bead358, 50 + 10 * t as u64)])
}

fn shared_signature(count: u64) -> BeadSignature {
    BeadSignature::from_counts(&[(ParticleKind::Bead358, count)])
}

/// A clean trace with `pulses` bead transits, jittered per (thread, round)
/// so every analysis sees a distinct trace.
fn storm_trace(thread: usize, round: usize, pulses: u64) -> SignalTrace {
    let mut synth = TraceSynthesizer::clean(1);
    let jitter = (thread * ROUNDS + round) as f64 * 1e-3;
    let specs: Vec<PulseSpec> = (0..pulses)
        .map(|j| {
            PulseSpec::unipolar(
                Seconds::new(0.5 + jitter + j as f64 * 0.25),
                Seconds::new(0.02),
                0.01,
            )
        })
        .collect();
    synth.render(
        &specs,
        Seconds::new(0.5 + jitter + pulses as f64 * 0.25 + 0.5),
    )
}

/// One-class bead classifier trained on the pipeline's own features, so
/// every detected peak counts as a 3.58 µm password bead.
fn storm_classifier() -> Classifier {
    let svc = CloudService::new();
    let response = svc.handle_shared(Request::Analyze {
        trace: storm_trace(999, 0, 8),
        authenticate: false,
    });
    let Response::Analyzed { report, .. } = response else {
        panic!("reference analysis failed: {response:?}");
    };
    let vectors: Vec<FeatureVector> = report
        .peaks
        .iter()
        .map(|p| FeatureVector {
            index: 0,
            amplitudes: p.features.clone(),
        })
        .collect();
    Classifier::train(&[(ParticleKind::Bead358.label(), vectors)]).expect("classifier trains")
}

fn storm_service(shards: usize) -> CloudService {
    let mut svc = CloudService::with_shards(shards);
    svc.install_classifier(storm_classifier());
    svc
}

/// Runs one thread's operation log for one round against `svc`, returning
/// `(user, id)` pairs for every record created. Identical code drives both
/// the concurrent storm and the sequential oracle.
fn run_round(svc: &CloudService, thread: usize, round: usize) -> Vec<(String, RecordId)> {
    let mut created = Vec::new();
    // Overlapping enrollment writes: every thread re-enrolls every shared
    // user every round (idempotent — same signature each time).
    for (user, count) in SHARED {
        assert_eq!(
            svc.handle_shared(Request::Enroll {
                identifier: user.to_string(),
                signature: shared_signature(count),
            }),
            Response::Enrolled,
            "t{thread} r{round}: enroll {user}"
        );
    }
    assert_eq!(
        svc.handle_shared(Request::Enroll {
            identifier: solo_user(thread),
            signature: solo_signature(thread),
        }),
        Response::Enrolled
    );

    // Authenticated analysis: accepted → stored under the recovered user.
    let (user, count) = shared_for_thread(thread);
    let response = svc.handle_shared(Request::Analyze {
        trace: storm_trace(thread, round, count),
        authenticate: true,
    });
    let report = match response {
        Response::Analyzed {
            report,
            auth: Some(AuthDecision::Accepted { ref user_id }),
            stored_as: Some(id),
        } if user_id == user => {
            created.push((user.to_string(), id));
            report
        }
        other => panic!("t{thread} r{round}: expected accepted analysis for {user}, got {other:?}"),
    };

    // Direct filings through the shared store handle.
    for _ in 0..DIRECT_STORES {
        let id = svc.store().store(StoredRecord {
            user_id: user.to_string(),
            report: report.clone(),
            signature: shared_signature(count),
        });
        created.push((user.to_string(), id));
        let id = svc.store().store(StoredRecord {
            user_id: solo_user(thread),
            report: report.clone(),
            signature: solo_signature(thread),
        });
        created.push((solo_user(thread), id));
    }

    // Everything this round created must fetch back immediately, filed
    // under the right user.
    for (owner, id) in &created {
        let record = svc.store().fetch(*id).expect("created record fetches");
        assert_eq!(&record.user_id, owner, "t{thread} r{round}: wrong owner");
    }
    created
}

fn per_user_counts(svc: &CloudService) -> BTreeMap<String, usize> {
    let users: Vec<String> = SHARED
        .iter()
        .map(|(u, _)| u.to_string())
        .chain((0..THREADS).map(solo_user))
        .collect();
    users
        .into_iter()
        .map(|u| {
            let n = svc.store().records_of(&u).len();
            (u, n)
        })
        .collect()
}

#[test]
fn storm_matches_single_threaded_oracle() {
    let svc = storm_service(DEFAULT_SHARD_COUNT);
    let barrier = Barrier::new(THREADS);
    let created = Mutex::new(Vec::<(String, RecordId)>::new());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let svc = &svc;
            let barrier = &barrier;
            let created = &created;
            scope.spawn(move || {
                barrier.wait();
                let mut mine = Vec::new();
                for r in 0..ROUNDS {
                    mine.extend(run_round(svc, t, r));
                }
                created.lock().unwrap().extend(mine);
            });
        }
    });
    let created = created.into_inner().unwrap();

    // --- The oracle: the same op log, replayed sequentially. ---
    let oracle = storm_service(DEFAULT_SHARD_COUNT);
    for t in 0..THREADS {
        for r in 0..ROUNDS {
            run_round(&oracle, t, r);
        }
    }

    // No lost records: every id a thread obtained still fetches, owned by
    // the user it was created for.
    assert_eq!(created.len(), THREADS * ROUNDS * (1 + 2 * DIRECT_STORES));
    for (owner, id) in &created {
        let record = svc.store().fetch(*id).expect("no record lost");
        assert_eq!(&record.user_id, owner, "record {id:?} leaked across users");
    }

    // Ids are globally unique across threads and shards.
    let distinct: BTreeSet<RecordId> = created.iter().map(|(_, id)| *id).collect();
    assert_eq!(distinct.len(), created.len(), "duplicate record ids");

    // No cross-user leakage through the per-user index either.
    for (user, _) in SHARED {
        for id in svc.store().records_of(user) {
            assert_eq!(svc.store().fetch(id).expect("indexed").user_id, user);
        }
    }

    // Per-user counts, total count, and enrollments match the oracle.
    assert_eq!(per_user_counts(&svc), per_user_counts(&oracle));
    assert_eq!(svc.store().len(), oracle.store().len());
    assert_eq!(svc.store().len(), created.len());
    let enrolled = |s: &CloudService| -> usize { s.shard_stats().iter().map(|x| x.enrolled).sum() };
    assert_eq!(enrolled(&svc), enrolled(&oracle));
    assert_eq!(enrolled(&svc), SHARED.len() + THREADS);

    // The integrity check holds for every stored record.
    for (_, id) in created.iter().take(16) {
        assert_eq!(
            svc.handle_shared(Request::VerifyIntegrity { record_id: *id }),
            Response::Integrity { intact: true }
        );
    }

    // The storm really did spread across shards: with 12 users hashed
    // over 8 shards, more than one shard must hold enrollments.
    let populated = svc.shard_stats().iter().filter(|s| s.enrolled > 0).count();
    assert!(populated > 1, "storm never left one shard");
}
