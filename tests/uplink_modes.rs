//! Compress-codec edge cases driven through both uplink modes.
//!
//! The LZW compressor sits in front of both transports — the framed
//! retry path and the fountain one-way path — so its edge cases must
//! survive each end to end: an *empty* trace (no channels at all), a
//! *single-sample* trace (the smallest non-trivial acquisition), and a
//! *maximum-length* trace (minutes of samples, the largest body the
//! clinic scenario produces). Each case is checked three ways: the raw
//! compress/decompress round-trip of the request body, the two-way
//! retry upload, and the one-way fountain upload over a lossy link.

use medsen::cloud::service::{CloudService, Request, Response};
use medsen::gateway::{Gateway, GatewayConfig, SessionConfig, ShedPolicy};
use medsen::impedance::{Channel, SignalTrace};
use medsen::phone::{compress, decompress, to_json, SymbolBudget};
use medsen::units::{Hertz, Seconds};

/// Paper sampling rate (450 Hz).
const SAMPLE_RATE: f64 = 450.0;

/// Two simulated minutes at 450 Hz — the longest acquisition the
/// clinic workflow produces in one upload.
const MAX_TRACE_SAMPLES: usize = 2 * 60 * 450;

fn channel(samples: Vec<f64>) -> Channel {
    let mut ch = Channel::new(Hertz::from_khz(500.0));
    ch.samples = samples;
    ch
}

/// The three codec edge cases, most degenerate first.
fn edge_traces() -> Vec<(&'static str, SignalTrace)> {
    let long: Vec<f64> = (0..MAX_TRACE_SAMPLES)
        .map(|i| 1.0 - 0.01 * ((i % 97) as f64 / 97.0))
        .collect();
    vec![
        ("empty", SignalTrace::new(Hertz::new(SAMPLE_RATE), vec![])),
        (
            "single-sample",
            SignalTrace::new(Hertz::new(SAMPLE_RATE), vec![channel(vec![0.98])]),
        ),
        (
            "maximum-length",
            SignalTrace::new(Hertz::new(SAMPLE_RATE), vec![channel(long)]),
        ),
    ]
}

fn gateway() -> Gateway {
    Gateway::new(
        CloudService::new(),
        GatewayConfig {
            queue_capacity: 4,
            workers: 2,
            shed_policy: ShedPolicy::Reject {
                retry_after: Seconds::from_millis(50.0),
            },
        },
    )
}

/// The empty trace draws a typed service error (`"trace has no
/// channels"`), the other cases an unauthenticated report; either way
/// the uplink must deliver exactly what the lossless oracle produces.
fn check_shape(name: &str, response: &Response) {
    match (name, response) {
        ("empty", Response::Error { reason }) => {
            assert!(reason.contains("no channels"), "{name}: odd error {reason}")
        }
        (
            _,
            Response::Analyzed {
                auth: None,
                stored_as: None,
                ..
            },
        ) => {}
        (_, other) => panic!("{name}: unexpected response shape {other:?}"),
    }
}

#[test]
fn codec_edge_traces_survive_both_uplink_modes() {
    let oracle = CloudService::new();
    for (name, trace) in edge_traces() {
        let request = Request::Analyze {
            trace: trace.clone(),
            authenticate: false,
        };

        // 1. The raw codec round-trip of the exact wire body.
        let body = to_json(&request).expect("encodable");
        let compressed = compress(body.as_bytes());
        assert_eq!(
            decompress(&compressed).expect("decompressible"),
            body.as_bytes(),
            "{name}: LZW round-trip corrupted the body"
        );

        let expected = oracle.handle_shared(request.clone());
        check_shape(name, &expected);

        // 2. Two-way retry mode over a flaky link.
        let retry_gateway = gateway();
        let mut session = retry_gateway.connect(SessionConfig::flaky(0.3, 0x11));
        let got = session
            .analyze(trace.clone(), false)
            .unwrap_or_else(|e| panic!("{name}: retry uplink failed: {e}"));
        assert_eq!(got, expected, "{name}: retry-mode response diverged");
        retry_gateway.shutdown();

        // 3. One-way fountain mode over a lossy link.
        let fountain_gateway = gateway();
        let mut session = fountain_gateway.connect(SessionConfig::fountain(
            0.3,
            0x22,
            SymbolBudget::for_drop_rate(0.3),
        ));
        let got = session
            .analyze(trace.clone(), false)
            .unwrap_or_else(|e| panic!("{name}: fountain uplink failed: {e}"));
        assert_eq!(got, expected, "{name}: fountain-mode response diverged");
        let stats = session.stats();
        assert!(stats.symbols_emitted > 0, "{name}: no symbols streamed");
        fountain_gateway.shutdown();
    }
}

#[test]
fn maximum_length_trace_actually_compresses() {
    // The long trace is the case where compression pays: the repetitive
    // JSON must shrink, and the fountain budget must therefore be sized
    // from the *compressed* block, not the raw body.
    let (_, trace) = edge_traces().pop().expect("traces");
    let body = to_json(&Request::Analyze {
        trace,
        authenticate: false,
    })
    .expect("encodable");
    let compressed = compress(body.as_bytes());
    assert!(
        compressed.len() < body.len() / 2,
        "2-minute trace should compress >2x: {} -> {}",
        body.len(),
        compressed.len()
    );
}

#[test]
fn pipelined_submissions_work_in_fountain_mode() {
    // Back-to-back uploads from one session are distinct fountain
    // streams; pipelining must not let the first upload's completed
    // stream swallow the second.
    let gw = gateway();
    let mut session = gw.connect(SessionConfig::fountain(
        0.2,
        0x33,
        SymbolBudget::paper_default(),
    ));
    for (_, trace) in edge_traces() {
        session
            .submit_analyze(trace, false)
            .expect("pipelined submit");
    }
    let responses = session.drain().expect("drain");
    assert_eq!(responses.len(), 3, "one response per pipelined upload");
    for ((name, _), response) in edge_traces().iter().zip(&responses) {
        check_shape(name, response);
    }
    gw.shutdown();
}
