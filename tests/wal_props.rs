//! Property tests for the WAL frame codec (vendored proptest).
//!
//! The codec invariants crash recovery rests on:
//! * **Round-trip** — any sequence of (kind, payload) entries encodes to
//!   a log that decodes back bit-for-bit, with no torn tail.
//! * **Prefix closure** — any byte prefix of a valid log decodes to a
//!   frame prefix; the reported `clean_len` is itself a valid log that
//!   re-decodes to exactly those frames. This is the truncation recovery
//!   leans on: whatever a crash leaves behind, cutting at `clean_len`
//!   yields a well-formed log.
//! * **Corruption containment** — flipping any single byte inside frame
//!   `j` drops frame `j` and everything after it, and never disturbs
//!   frames 0..j.

use medsen::store::{decode_log, encode_frame, FRAME_OVERHEAD};
use proptest::prelude::*;

/// Arbitrary frames: any kind byte, payloads up to 64 bytes.
fn entries_strategy() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    proptest::collection::vec(
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64)),
        0..12,
    )
}

/// Encodes all entries, returning the log bytes and each frame's end
/// offset within it.
fn encode_all(entries: &[(u8, Vec<u8>)]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut ends = Vec::new();
    for (kind, payload) in entries {
        encode_frame(*kind, payload, &mut bytes);
        ends.push(bytes.len());
    }
    (bytes, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_round_trips(entries in entries_strategy()) {
        let (bytes, ends) = encode_all(&entries);
        prop_assert_eq!(
            bytes.len(),
            entries.iter().map(|(_, p)| p.len() + FRAME_OVERHEAD).sum::<usize>()
        );
        prop_assert_eq!(ends.last().copied().unwrap_or(0), bytes.len());
        let decoded = decode_log(&bytes);
        prop_assert!(decoded.torn.is_none(), "clean log reported torn: {:?}", decoded.torn);
        prop_assert_eq!(decoded.clean_len, bytes.len());
        prop_assert_eq!(decoded.frames.len(), entries.len());
        for (frame, (kind, payload)) in decoded.frames.iter().zip(&entries) {
            prop_assert_eq!(frame.kind, *kind);
            prop_assert_eq!(&frame.payload, payload);
        }
    }

    /// Any byte prefix decodes to a frame prefix, and `clean_len` marks a
    /// log that re-decodes to exactly those frames with nothing torn.
    #[test]
    fn any_prefix_decodes_to_a_clean_frame_prefix(
        (entries, cut) in entries_strategy().prop_flat_map(|entries| {
            let len = entries.iter().map(|(_, p)| p.len() + FRAME_OVERHEAD).sum::<usize>();
            (Just(entries), 0..=len)
        }),
    ) {
        let (bytes, ends) = encode_all(&entries);
        let whole = ends.iter().take_while(|&&end| end <= cut).count();
        let decoded = decode_log(&bytes[..cut]);
        // Exactly the frames that fit entirely inside the prefix survive.
        prop_assert_eq!(decoded.frames.len(), whole);
        for (frame, (kind, payload)) in decoded.frames.iter().zip(&entries) {
            prop_assert_eq!(frame.kind, *kind);
            prop_assert_eq!(&frame.payload, payload);
        }
        // A cut on a frame boundary is clean; anywhere else is torn, and
        // truncating to clean_len yields a log with no torn tail.
        let on_boundary = cut == 0 || ends.contains(&cut);
        prop_assert_eq!(decoded.torn.is_none(), on_boundary);
        prop_assert_eq!(decoded.clean_len, ends.get(whole.wrapping_sub(1)).copied().unwrap_or(0));
        let retried = decode_log(&bytes[..decoded.clean_len]);
        prop_assert!(retried.torn.is_none());
        prop_assert_eq!(retried.frames.len(), whole);
        prop_assert_eq!(retried.clean_len, decoded.clean_len);
    }

    /// A single flipped byte in frame `j` truncates the decode to frames
    /// 0..j — corruption never propagates backwards.
    #[test]
    fn a_bit_flip_truncates_at_the_corrupted_frame(
        (entries, target, bit) in entries_strategy()
            .prop_filter("need at least one frame", |e| !e.is_empty())
            .prop_flat_map(|entries| {
                let len = entries.iter().map(|(_, p)| p.len() + FRAME_OVERHEAD).sum::<usize>();
                (Just(entries), 0..len, 0u8..8)
            }),
    ) {
        let (mut bytes, ends) = encode_all(&entries);
        bytes[target] ^= 1 << bit;
        // The frame the flipped byte lives in.
        let hit = ends.iter().take_while(|&&end| end <= target).count();
        let decoded = decode_log(&bytes);
        prop_assert_eq!(
            decoded.frames.len(), hit,
            "flip at {} (frame {}) should keep exactly {} frames", target, hit, hit
        );
        prop_assert!(decoded.torn.is_some(), "corruption must be reported");
        for (frame, (kind, payload)) in decoded.frames.iter().zip(&entries) {
            prop_assert_eq!(frame.kind, *kind);
            prop_assert_eq!(&frame.payload, payload);
        }
        prop_assert_eq!(decoded.clean_len, ends.get(hit.wrapping_sub(1)).copied().unwrap_or(0));
    }
}
