//! Cross-crate integration: full diagnostic sessions through every subsystem.

use medsen::core::{
    CytoPassword, DiagnosticRule, PasswordAlphabet, Pipeline, PipelineConfig, SessionMode,
};
use medsen::microfluidics::ParticleKind;
use medsen::units::{Concentration, Seconds};

fn low_dose_alphabet() -> PasswordAlphabet {
    PasswordAlphabet::new(
        vec![ParticleKind::Bead358, ParticleKind::Bead78],
        Concentration::new(100.0),
        8,
    )
    .expect("valid alphabet")
}

#[test]
fn encrypted_session_decodes_within_tolerance() {
    let config = PipelineConfig {
        duration: Seconds::new(30.0),
        ..PipelineConfig::paper_default(1001)
    };
    let mut pipeline = Pipeline::new(config, low_dose_alphabet(), DiagnosticRule::cd4_staging());
    let password = CytoPassword::new(pipeline.alphabet(), vec![1, 1]).expect("valid");
    let report = pipeline.run_session("it-patient", &password);

    let truth = (report.true_cells + report.true_beads) as f64;
    let decoded = report.decoded_total.expect("encrypted mode") as f64;
    assert!(truth > 5.0, "session must see particles");
    assert!(
        (decoded - truth).abs() / truth < 0.3,
        "decoded {decoded} vs truth {truth}"
    );
    assert!(report.verdict.is_some());
    assert!(
        report.auth.is_none(),
        "encrypted mode does not authenticate"
    );
}

#[test]
fn cloud_count_is_inflated_and_uncorrelated_with_decoding_key() {
    // Two sessions with identical truth-generating seed but different cipher
    // keys must yield different cloud-side peak counts — the count the cloud
    // sees is key material, not biology.
    let run_with_seed = |controller_entropy: u64| {
        let config = PipelineConfig {
            duration: Seconds::new(20.0),
            ..PipelineConfig::paper_default(controller_entropy)
        };
        let mut pipeline =
            Pipeline::new(config, low_dose_alphabet(), DiagnosticRule::cd4_staging());
        let password = CytoPassword::new(pipeline.alphabet(), vec![1, 1]).expect("valid");
        pipeline.run_session("p", &password)
    };
    let a = run_with_seed(5001);
    let b = run_with_seed(5002);
    assert!(a.peak_count as f64 > 1.5 * (a.true_cells + a.true_beads) as f64);
    assert!(b.peak_count as f64 > 1.5 * (b.true_cells + b.true_beads) as f64);
    assert_ne!(
        a.peak_count, b.peak_count,
        "different keys, different ciphertexts"
    );
}

#[test]
fn auth_mode_round_trip_accepts_owner_and_rejects_stranger() {
    let config = PipelineConfig {
        duration: Seconds::new(25.0),
        ..PipelineConfig::auth_default(1003)
    };
    let alphabet = PasswordAlphabet::paper_default();
    let mut pipeline = Pipeline::new(config, alphabet.clone(), DiagnosticRule::cd4_staging());
    pipeline.calibrate_classifier();
    let volume = pipeline.processed_volume();

    let owner = CytoPassword::new(&alphabet, vec![2, 6]).expect("valid");
    pipeline
        .auth_mut()
        .enroll("owner", owner.expected_signature(&alphabet, volume));

    let own = pipeline.run_session("owner", &owner);
    assert_eq!(
        own.auth,
        Some(medsen::cloud::AuthDecision::Accepted {
            user_id: "owner".into()
        })
    );

    let stranger = CytoPassword::new(&alphabet, vec![7, 1]).expect("valid");
    let other = pipeline.run_session("stranger", &stranger);
    assert_ne!(
        other.auth,
        Some(medsen::cloud::AuthDecision::Accepted {
            user_id: "owner".into()
        })
    );
}

#[test]
fn session_mode_controls_outputs() {
    let config = PipelineConfig {
        duration: Seconds::new(15.0),
        ..PipelineConfig::paper_default(1004)
    };
    assert_eq!(config.mode, SessionMode::EncryptedDiagnosis);
    let mut pipeline = Pipeline::new(config, low_dose_alphabet(), DiagnosticRule::cd4_staging());
    let password = CytoPassword::new(pipeline.alphabet(), vec![1, 0]).expect("valid");
    let report = pipeline.run_session("p", &password);
    assert!(report.decoded_total.is_some());
    assert!(report.measured_signature.is_none());
    assert!(report.compression.ratio() > 1.5);
    assert!(report.timing.post_acquisition_s() > 0.0);
}
