//! Property tests for the sharded cloud tier (vendored proptest).
//!
//! Three families of invariants:
//! * **Routing stability** — `identity_hash` is the documented FNV-1a fold
//!   (bit-for-bit, against an inline reference implementation) and
//!   `shard_index` is a pure function of (identifier, shard count) landing
//!   inside the shard range. Routing is a persistence contract: a restart
//!   with the same shard count must send every identifier to the shard
//!   that already holds its data.
//! * **RecordId layout** — compose/decompose round-trips every field, and
//!   single-shard ids stay bit-identical to the pre-sharding sequential
//!   format.
//! * **Observational equivalence** — a sharded deployment with N ∈ {1,2,8}
//!   shards answers every authentication, integrity, storage, and index
//!   query exactly as the single-shard (pre-sharding) configuration does,
//!   while cross-layout record ids always fail closed.

use medsen::cloud::api::PeakReport;
use medsen::cloud::auth::BeadSignature;
use medsen::cloud::storage::{RecordStore, StoredRecord};
use medsen::cloud::{identity_hash, shard_index, RecordId, ShardedAuth};
use medsen::microfluidics::ParticleKind;
use proptest::prelude::*;

/// The equivalence classes under test: the pre-sharding baseline and two
/// sharded layouts.
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

const USERS: [&str; 6] = ["ana", "bo", "cleo", "dee", "eve", "mallory"];

fn sig(count: u64) -> BeadSignature {
    BeadSignature::from_counts(&[(ParticleKind::Bead358, count)])
}

/// A minimal record payload carrying `marker` so records stay
/// distinguishable across layouts without running the analysis pipeline.
fn record(user: &str, marker: u64) -> StoredRecord {
    StoredRecord {
        user_id: user.to_string(),
        report: PeakReport {
            peaks: Vec::new(),
            carriers_hz: Vec::new(),
            sample_rate_hz: 0.0,
            duration_s: 0.0,
            noise_sigma: 0.0,
        },
        signature: sig(marker),
    }
}

/// Reference FNV-1a 64-bit fold, written independently of the production
/// code so a silent constant change breaks the property.
fn fnv1a_reference(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic layout-boundary checks complementing the randomized
/// round-trip property below: the extreme corners the WAL's replay-time
/// layout validation leans on must hold exactly.
mod record_id_boundaries {
    use super::*;
    use medsen::cloud::MAX_SHARDS;

    #[test]
    fn single_shard_corner() {
        let id = RecordId::compose(0, 1, 0);
        assert_eq!((id.shard(), id.shard_count(), id.sequence()), (0, 1, 0));
        assert_eq!(id, RecordId(0), "the zero id is shard 0/1, sequence 0");
    }

    #[test]
    fn mid_layout_corner_64_shards() {
        let id = RecordId::compose(63, 64, RecordId::MAX_SEQUENCE);
        assert_eq!(id.shard(), 63);
        assert_eq!(id.shard_count(), 64);
        assert_eq!(id.sequence(), RecordId::MAX_SEQUENCE);
    }

    #[test]
    fn max_layout_corner_256_shards() {
        let id = RecordId::compose(MAX_SHARDS - 1, MAX_SHARDS, RecordId::MAX_SEQUENCE);
        assert_eq!(id.shard(), MAX_SHARDS - 1);
        assert_eq!(id.shard_count(), MAX_SHARDS);
        assert_eq!(id.sequence(), RecordId::MAX_SEQUENCE);
        assert_eq!(id, RecordId(u64::MAX), "the all-ones id is the last corner");
    }

    #[test]
    fn max_sequence_is_48_bits() {
        assert_eq!(RecordId::MAX_SEQUENCE, (1u64 << 48) - 1);
        // Adjacent shards never collide even at the sequence ceiling.
        let a = RecordId::compose(0, 2, RecordId::MAX_SEQUENCE);
        let b = RecordId::compose(1, 2, 0);
        assert_ne!(a, b);
        assert!(a.0 < b.0, "shard is the most significant field");
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn sequence_overflow_panics() {
        let _ = RecordId::compose(0, 1, RecordId::MAX_SEQUENCE + 1);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn shard_count_above_max_panics() {
        let _ = RecordId::compose(0, MAX_SHARDS + 1, 0);
    }

    #[test]
    #[should_panic(expected = "shard count 0")]
    fn zero_shard_count_panics() {
        let _ = RecordId::compose(0, 0, 0);
    }

    #[test]
    #[should_panic(expected = ">= count")]
    fn shard_at_count_panics() {
        let _ = RecordId::compose(64, 64, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Routing is the documented stable hash: pure, in-range, and
    /// bit-for-bit FNV-1a over the identifier's UTF-8 bytes.
    #[test]
    fn shard_routing_is_stable_and_in_range(
        identifier in "[a-z0-9_]{0,24}",
        shards in 1usize..=8,
    ) {
        prop_assert_eq!(identity_hash(&identifier), fnv1a_reference(identifier.as_bytes()));
        let home = shard_index(&identifier, shards);
        prop_assert!(home < shards);
        // Stability: the same inputs route identically, call after call.
        prop_assert_eq!(shard_index(&identifier, shards), home);
        // One shard means everything routes to it.
        prop_assert_eq!(shard_index(&identifier, 1), 0);
    }

    /// RecordId's bit layout round-trips every field, and the single-shard
    /// encoding is the pre-sharding sequential integer.
    #[test]
    fn record_id_compose_decompose_round_trips(
        parts in (1usize..=256).prop_flat_map(|count| {
            (Just(count), 0..count, any::<u64>())
        }),
    ) {
        let (count, shard, raw) = parts;
        let sequence = raw & RecordId::MAX_SEQUENCE;
        let id = RecordId::compose(shard, count, sequence);
        prop_assert_eq!(id.shard(), shard);
        prop_assert_eq!(id.shard_count(), count);
        prop_assert_eq!(id.sequence(), sequence);
        // Backward compatibility: shard 0 of a 1-shard store is the plain
        // sequence number.
        prop_assert_eq!(RecordId::compose(0, 1, sequence), RecordId(sequence));
    }

    /// Authentication, enrollment counting, and the integrity check are
    /// observationally identical across shard counts for any enrollment
    /// history (including re-enrollments) and any probe sequence.
    #[test]
    fn sharded_auth_matches_the_unsharded_baseline(
        enrollments in proptest::collection::vec((0usize..USERS.len(), 1u64..200), 1..20),
        probes in proptest::collection::vec(0u64..250, 1..12),
    ) {
        let auths: Vec<ShardedAuth> = SHARD_COUNTS.iter().map(|&n| ShardedAuth::new(n)).collect();
        for &(user, count) in &enrollments {
            for auth in &auths {
                auth.enroll(USERS[user], sig(count));
            }
        }
        let baseline = &auths[0];
        for other in &auths[1..] {
            prop_assert_eq!(other.enrolled_count(), baseline.enrolled_count());
            for &probe in &probes {
                prop_assert_eq!(
                    other.authenticate(&sig(probe)),
                    baseline.authenticate(&sig(probe)),
                    "probe {} diverged", probe
                );
            }
            for &(user, count) in &enrollments {
                prop_assert_eq!(
                    other.verify_integrity(USERS[user], &sig(count)),
                    baseline.verify_integrity(USERS[user], &sig(count))
                );
            }
        }
    }

    /// The record store files, indexes, and fetches identically across
    /// shard counts — and ids minted under one layout fail closed (no
    /// panic, no foreign record) under every other.
    #[test]
    fn sharded_store_matches_the_unsharded_baseline(
        ops in proptest::collection::vec((0usize..USERS.len(), 0u64..1_000_000), 1..24),
    ) {
        let stores: Vec<RecordStore> =
            SHARD_COUNTS.iter().map(|&n| RecordStore::with_shards(n)).collect();
        let mut ids_per_store: Vec<Vec<RecordId>> = vec![Vec::new(); stores.len()];
        for &(user, marker) in &ops {
            for (store, ids) in stores.iter().zip(&mut ids_per_store) {
                ids.push(store.store(record(USERS[user], marker)));
            }
        }

        let baseline = &stores[0];
        for (store, ids) in stores.iter().zip(&ids_per_store) {
            prop_assert_eq!(store.len(), baseline.len());
            // Per-user record streams (markers in index order) match the
            // baseline exactly.
            for user in USERS {
                let markers = |s: &RecordStore| -> Vec<u64> {
                    s.records_of(user)
                        .into_iter()
                        .map(|id| {
                            s.fetch(id).expect("indexed record fetches")
                                .signature
                                .count(ParticleKind::Bead358)
                        })
                        .collect()
                };
                prop_assert_eq!(markers(store), markers(baseline));
            }
            // Own ids round-trip; foreign-layout ids fail closed.
            for (own, &(user, _)) in ids.iter().zip(&ops) {
                prop_assert_eq!(store.fetch(*own).expect("own id fetches").user_id, USERS[user]);
            }
            for (foreign_store, foreign_ids) in stores.iter().zip(&ids_per_store) {
                if foreign_store.shard_count() == store.shard_count() {
                    continue;
                }
                for id in foreign_ids {
                    prop_assert!(store.fetch(*id).is_none(), "foreign id {:?} resolved", id);
                    prop_assert!(!store.tamper(*id, record("mallory", 0)), "foreign tamper");
                }
            }
        }
    }
}
