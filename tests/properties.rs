//! Cross-crate property tests on the system's core invariants.

use medsen::cloud::AnalysisServer;
use medsen::dsp::detrend::{detrend_segmented, DetrendConfig};
use medsen::dsp::peaks::ThresholdDetector;
use medsen::microfluidics::{Particle, ParticleKind, TransitEvent};
use medsen::sensor::{
    CipherKey, Controller, ControllerConfig, ElectrodeArray, ElectrodeId, ElectrodeSelection,
    EncryptedAcquisition, FlowLevel, GainLevel, KeySchedule,
};
use medsen::units::{Hertz, Seconds};
use proptest::prelude::*;

/// Strategy: a set of well-separated transit events.
fn sparse_events(max_n: usize) -> impl Strategy<Value = Vec<TransitEvent>> {
    (1..=max_n).prop_flat_map(|n| {
        // Events at least 4 s apart so every dip train is isolated.
        proptest::collection::vec(0.0f64..1.0, n).prop_map(|jitters| {
            jitters
                .iter()
                .enumerate()
                .map(|(i, &j)| TransitEvent {
                    time: Seconds::new(2.0 + i as f64 * 4.0 + j),
                    particle: Particle::nominal(ParticleKind::Bead78),
                    velocity: 2250.0,
                })
                .collect()
        })
    })
}

/// Strategy: a random valid static cipher key for the 9-output prototype.
fn random_key() -> impl Strategy<Value = CipherKey> {
    (
        proptest::collection::btree_set(1u8..=9, 1..=9),
        proptest::collection::vec(0u8..16, 9),
        0u8..16,
    )
        .prop_map(|(ids, gain_levels, flow_level)| {
            let array = ElectrodeArray::paper_prototype();
            let ids: Vec<ElectrodeId> = ids.into_iter().map(ElectrodeId).collect();
            CipherKey {
                selection: ElectrodeSelection::new(&array, &ids).expect("ids valid"),
                gains: gain_levels
                    .into_iter()
                    .map(|l| GainLevel::new(l).expect("level < 16"))
                    .collect(),
                flow: FlowLevel::new(flow_level).expect("level < 16"),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// THE core invariant: for any key and any sparse particle stream,
    /// encrypt → cloud-count → decrypt recovers the exact particle count.
    #[test]
    fn encrypt_decrypt_roundtrip_is_exact_on_sparse_streams(
        events in sparse_events(6),
        key in random_key(),
    ) {
        let n = events.len();
        let duration = Seconds::new(2.0 + n as f64 * 4.0 + 3.0);
        let schedule = KeySchedule::Static(key);
        let mut acq = EncryptedAcquisition::clean(1);
        let out = acq.run(&events, &schedule, duration);
        let server = AnalysisServer::paper_default();
        let report = server.analyze(&out.trace);
        let decryptor = medsen::sensor::Decryptor::new(
            ElectrodeArray::paper_prototype(),
            &schedule,
        );
        let decoded = decryptor.decrypt(&report.reported_peaks()).rounded();
        prop_assert_eq!(decoded, n as u64, "peaks {}", report.peak_count());
    }

    /// The multiplicity law: the cloud always sees exactly
    /// `multiplicity × n` peaks for isolated particles.
    #[test]
    fn peak_multiplication_matches_the_key(
        events in sparse_events(4),
        key in random_key(),
    ) {
        let n = events.len();
        let array = ElectrodeArray::paper_prototype();
        let expected = key.multiplicity(&array) * n;
        let duration = Seconds::new(2.0 + n as f64 * 4.0 + 3.0);
        let schedule = KeySchedule::Static(key);
        let mut acq = EncryptedAcquisition::clean(2);
        let out = acq.run(&events, &schedule, duration);
        prop_assert_eq!(out.scheduled_dips, expected);
        let ch = out.trace.channel_at(Hertz::from_khz(500.0)).expect("channel");
        let depth = detrend_segmented(&ch.samples, &DetrendConfig::paper_default());
        let detected = ThresholdDetector::paper_default().count(&depth, 450.0);
        prop_assert_eq!(detected, expected);
    }

    /// Controller-generated schedules always produce valid keys.
    #[test]
    fn generated_schedules_are_always_valid(seed in 0u64..5_000) {
        let mut controller = Controller::new(
            ElectrodeArray::paper_prototype(),
            ControllerConfig::paper_default(),
            seed,
        );
        let schedule = controller.generate_schedule(Seconds::new(30.0));
        if let KeySchedule::Periodic { keys, .. } = schedule {
            for key in keys {
                prop_assert!(key.validate().is_ok());
                prop_assert!(!key.selection.ids().is_empty());
                prop_assert!(key.multiplicity(&ElectrodeArray::paper_prototype()) >= 1);
            }
        } else {
            prop_assert!(false, "expected periodic schedule");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Phone-relay losslessness for arbitrary binary payloads.
    #[test]
    fn relay_compression_is_lossless(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let compressed = medsen::phone::compress(&data);
        let restored = medsen::phone::decompress(&compressed).expect("valid stream");
        prop_assert_eq!(restored, data);
    }

    /// Frames round-trip any payload.
    #[test]
    fn frames_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        use medsen::phone::{Frame, MessageType};
        let frame = Frame::new(MessageType::DataChunk, data);
        let (decoded, used) = Frame::decode(&frame.encode()).expect("valid frame");
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(used, frame.encode().len());
    }
}
