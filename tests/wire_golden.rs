//! Golden-frame pin for the binary wire protocol.
//!
//! `tests/golden/` holds one committed binary frame and one JSON sidecar
//! per message variant, generated from the deterministic fixture corpus
//! (`medsen-cli wire-golden tests/golden --write`). This test re-derives
//! each fixture from the corpus and requires:
//!
//! * the committed binary bytes decode to exactly the corpus value,
//! * re-encoding the corpus value reproduces the committed bytes
//!   byte-for-byte (any codec change that shifts a byte fails here
//!   before it can strand deployed dongles), and
//! * the JSON sidecar decodes to the same value, pinning the two
//!   formats observationally equivalent on real persisted artifacts,
//!   not just in-memory round-trips.

use medsen::cloud::wire::{
    decode_request, decode_request_traced, decode_response, decode_response_traced, encode_request,
    encode_request_traced, encode_response, encode_response_traced, golden,
};
use medsen::wire::WireFormat;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn read(name: &str, ext: &str) -> Vec<u8> {
    let path = golden_dir().join(format!("{name}.{ext}"));
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with `medsen-cli wire-golden tests/golden --write`",
            path.display()
        )
    })
}

#[test]
fn request_golden_frames_are_byte_exact_and_equivalent() {
    for (name, expected) in golden::requests() {
        let committed = read(name, "bin");
        let decoded = decode_request(WireFormat::Binary, &committed)
            .unwrap_or_else(|e| panic!("{name}.bin no longer decodes: {e}"));
        assert_eq!(decoded, expected, "{name}.bin decoded to a drifted value");
        let rebuilt = encode_request(WireFormat::Binary, &expected).expect("encodes");
        assert_eq!(rebuilt, committed, "{name}.bin: binary wire format drifted");

        let sidecar = read(name, "json");
        let from_json = decode_request(WireFormat::Json, &sidecar)
            .unwrap_or_else(|e| panic!("{name}.json no longer decodes: {e}"));
        assert_eq!(from_json, expected, "{name}: JSON/binary equivalence broke");
    }
}

#[test]
fn response_golden_frames_are_byte_exact_and_equivalent() {
    for (name, expected) in golden::responses() {
        let committed = read(name, "bin");
        let decoded = decode_response(WireFormat::Binary, &committed)
            .unwrap_or_else(|e| panic!("{name}.bin no longer decodes: {e}"));
        assert_eq!(decoded, expected, "{name}.bin decoded to a drifted value");
        let rebuilt = encode_response(WireFormat::Binary, &expected).expect("encodes");
        assert_eq!(rebuilt, committed, "{name}.bin: binary wire format drifted");

        let sidecar = read(name, "json");
        let from_json = decode_response(WireFormat::Json, &sidecar)
            .unwrap_or_else(|e| panic!("{name}.json no longer decodes: {e}"));
        assert_eq!(from_json, expected, "{name}: JSON/binary equivalence broke");
    }
}

/// Trace-context fixtures pin the traced twin frame layout: the 0x80
/// twin kinds (binary) and the `{"trace":…,"body":…}` wrapper (JSON)
/// must stay byte-exact, and the pinned trace id must survive the round
/// trip through the *built* decoder.
#[test]
fn traced_golden_frames_pin_the_trace_context_layout() {
    for (name, expected) in golden::traced_requests() {
        let committed = read(name, "bin");
        let (decoded, trace) = decode_request_traced(WireFormat::Binary, &committed)
            .unwrap_or_else(|e| panic!("{name}.bin no longer decodes: {e}"));
        assert_eq!(decoded, expected, "{name}.bin decoded to a drifted value");
        assert_eq!(
            trace,
            Some(golden::TRACE_ID),
            "{name}.bin: trace id drifted"
        );
        let rebuilt = encode_request_traced(WireFormat::Binary, &expected, golden::TRACE_ID)
            .expect("encodes");
        assert_eq!(rebuilt, committed, "{name}.bin: traced wire format drifted");

        let sidecar = read(name, "json");
        let (from_json, json_trace) = decode_request_traced(WireFormat::Json, &sidecar)
            .unwrap_or_else(|e| panic!("{name}.json no longer decodes: {e}"));
        assert_eq!(from_json, expected, "{name}: JSON/binary equivalence broke");
        assert_eq!(
            json_trace,
            Some(golden::TRACE_ID),
            "{name}.json trace drifted"
        );
    }
    for (name, expected) in golden::traced_responses() {
        let committed = read(name, "bin");
        let (decoded, trace) = decode_response_traced(WireFormat::Binary, &committed)
            .unwrap_or_else(|e| panic!("{name}.bin no longer decodes: {e}"));
        assert_eq!(decoded, expected, "{name}.bin decoded to a drifted value");
        assert_eq!(
            trace,
            Some(golden::TRACE_ID),
            "{name}.bin: trace id drifted"
        );
        let rebuilt = encode_response_traced(WireFormat::Binary, &expected, golden::TRACE_ID)
            .expect("encodes");
        assert_eq!(rebuilt, committed, "{name}.bin: traced wire format drifted");

        let sidecar = read(name, "json");
        let (from_json, json_trace) = decode_response_traced(WireFormat::Json, &sidecar)
            .unwrap_or_else(|e| panic!("{name}.json no longer decodes: {e}"));
        assert_eq!(from_json, expected, "{name}: JSON/binary equivalence broke");
        assert_eq!(
            json_trace,
            Some(golden::TRACE_ID),
            "{name}.json trace drifted"
        );
    }
}

/// A pre-trace-context frame — plain kind byte, no trace field — must
/// keep decoding through the *traced* entry points, reporting "no trace"
/// rather than an error: deployed dongles that never learned the traced
/// twins stay first-class citizens.
#[test]
fn pre_trace_context_frames_decode_through_the_traced_entry_points() {
    for (name, expected) in golden::requests() {
        for format in [WireFormat::Binary, WireFormat::Json] {
            let ext = if format == WireFormat::Binary {
                "bin"
            } else {
                "json"
            };
            let committed = read(name, ext);
            let (decoded, trace) = decode_request_traced(format, &committed)
                .unwrap_or_else(|e| panic!("{name}.{ext}: traced decoder rejects legacy: {e}"));
            assert_eq!(decoded, expected, "{name}.{ext} drifted via traced decode");
            assert_eq!(trace, None, "{name}.{ext}: legacy frame grew a trace id");
        }
    }
    for (name, expected) in golden::responses() {
        for format in [WireFormat::Binary, WireFormat::Json] {
            let ext = if format == WireFormat::Binary {
                "bin"
            } else {
                "json"
            };
            let committed = read(name, ext);
            let (decoded, trace) = decode_response_traced(format, &committed)
                .unwrap_or_else(|e| panic!("{name}.{ext}: traced decoder rejects legacy: {e}"));
            assert_eq!(decoded, expected, "{name}.{ext} drifted via traced decode");
            assert_eq!(trace, None, "{name}.{ext}: legacy frame grew a trace id");
        }
    }
}

/// The corpus covers every variant of both enums — a new variant must
/// grow the corpus (and the committed fixtures) or fail here.
#[test]
fn golden_corpus_covers_every_variant() {
    let request_variants: std::collections::BTreeSet<&str> = golden::requests()
        .iter()
        .map(|(_, r)| match r {
            medsen::cloud::Request::Analyze { .. } => "Analyze",
            medsen::cloud::Request::Enroll { .. } => "Enroll",
            medsen::cloud::Request::Fetch { .. } => "Fetch",
            medsen::cloud::Request::VerifyIntegrity { .. } => "VerifyIntegrity",
            medsen::cloud::Request::Ping => "Ping",
        })
        .collect();
    assert_eq!(request_variants.len(), 5, "corpus misses a request variant");

    let response_variants: std::collections::BTreeSet<&str> = golden::responses()
        .iter()
        .map(|(_, r)| match r {
            medsen::cloud::Response::Analyzed { .. } => "Analyzed",
            medsen::cloud::Response::Enrolled => "Enrolled",
            medsen::cloud::Response::Record(_) => "Record",
            medsen::cloud::Response::Integrity { .. } => "Integrity",
            medsen::cloud::Response::Pong => "Pong",
            medsen::cloud::Response::Error { .. } => "Error",
        })
        .collect();
    assert_eq!(
        response_variants.len(),
        6,
        "corpus misses a response variant"
    );
}
