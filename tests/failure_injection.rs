//! Failure injection: the system's behaviour at and beyond its design
//! envelope — extreme drift, extreme noise, coincidence-heavy streams,
//! relay faults, and tampered storage.

use medsen::cloud::{AnalysisServer, RecordStore, StoredRecord};
use medsen::impedance::{BaselineDrift, NoiseModel, PulseSpec, TraceSynthesizer};
use medsen::microfluidics::{
    ChannelGeometry, ParticleKind, PeristalticPump, SampleSpec, TransportSimulator,
};
use medsen::sensor::{Controller, ControllerConfig, EncryptedAcquisition};
use medsen::units::Seconds;
use medsen::units::{Concentration, Microliters};

fn pulses_every(n: usize, spacing_s: f64, depth: f64) -> Vec<PulseSpec> {
    (0..n)
        .map(|i| {
            PulseSpec::unipolar(
                Seconds::new(1.0 + i as f64 * spacing_s),
                Seconds::new(0.02),
                depth,
            )
        })
        .collect()
}

#[test]
fn counting_survives_5x_paper_drift() {
    let mut synth = TraceSynthesizer::paper_default(1);
    let mut drift = BaselineDrift::paper_default();
    drift.linear *= 5.0;
    drift.quadratic *= 5.0;
    drift.wave_amplitude *= 5.0;
    synth.drift = drift;
    let trace = synth.render(&pulses_every(15, 2.0, 0.01), Seconds::new(32.0));
    let report = AnalysisServer::paper_default().analyze(&trace);
    assert_eq!(
        report.peak_count(),
        15,
        "5x drift must not break detrending"
    );
}

#[test]
fn counting_degrades_gracefully_with_3x_noise() {
    let mut synth = TraceSynthesizer::paper_default(2);
    synth.noise = NoiseModel { sigma: 9.0e-4 }; // 3x the paper floor
    let trace = synth.render(&pulses_every(15, 2.0, 0.01), Seconds::new(32.0));
    let report = AnalysisServer::paper_default().analyze(&trace);
    // Peaks are 11x the noise σ; counting must still be near-exact, and
    // crucially there must be no flood of false positives.
    assert!(
        (13..=17).contains(&report.peak_count()),
        "count {}",
        report.peak_count()
    );
}

#[test]
fn extreme_noise_is_a_detected_failure_not_a_silent_one() {
    // Noise at the peak scale. The adaptive threshold suppresses the false
    // positives, and the report carries the explicit failure signature: a
    // noise-floor estimate an order of magnitude above the sensor's band.
    let mut synth = TraceSynthesizer::paper_default(3);
    synth.noise = NoiseModel { sigma: 8.0e-3 };
    let trace = synth.render(&pulses_every(5, 4.0, 0.01), Seconds::new(22.0));
    let report = AnalysisServer::paper_default().analyze(&trace);
    assert!(
        report.noise_sigma > 3.0e-3,
        "degraded sensor must be visible in the reported noise floor, got {}",
        report.noise_sigma
    );
    // And no false-positive flood despite the noise.
    let rate = report.peak_count() as f64 / report.duration_s;
    assert!(
        rate < 2.0,
        "adaptive threshold must bound false positives, got {rate}/s"
    );
}

#[test]
fn coincidence_heavy_streams_undercount_predictably() {
    // 20x the normal concentration: dips overlap and merge. The decoded
    // count must undercount (never overcount) and the coincidence statistic
    // must flag the regime.
    let duration = Seconds::new(20.0);
    let sample = SampleSpec::bead_calibration(
        Microliters::new(1.0),
        ParticleKind::Bead78,
        Concentration::new(15_000.0),
    );
    let mut sim = TransportSimulator::new(
        ChannelGeometry::paper_default(),
        PeristalticPump::paper_default(),
        4,
    );
    let events = sim.run(&sample, duration);
    let coincidences = sim.coincidences(&events, 9);
    assert!(
        coincidences.rate() > 0.5,
        "this regime should be coincidence-dominated, rate {}",
        coincidences.rate()
    );
    let mut acq = EncryptedAcquisition::paper_default(4);
    let mut controller = Controller::new(*acq.array(), ControllerConfig::paper_default(), 4);
    let schedule = controller.generate_schedule(duration).clone();
    let out = acq.run(&events, &schedule, duration);
    let report = AnalysisServer::paper_default().analyze(&out.trace);
    let decoded = controller
        .decryptor()
        .decrypt(&report.reported_peaks())
        .rounded();
    assert!(
        (decoded as usize) < events.len(),
        "merging can only lose peaks: decoded {decoded} vs truth {}",
        events.len()
    );
}

#[test]
fn dropped_relay_frame_is_detected_at_decompression() {
    use medsen::phone::frame::chunk_data;
    use medsen::phone::{compress, decompress};
    // Drop one middle chunk from the framed stream; the LZW stream no longer
    // decodes to the declared length.
    let payload: Vec<u8> = (0..40_000u32).flat_map(|i| i.to_be_bytes()).collect();
    let compressed = compress(&payload);
    let frames = chunk_data(&compressed, 4096);
    let mut reassembled = Vec::new();
    for (i, f) in frames.iter().enumerate() {
        if i == frames.len() / 2 {
            continue; // the dropped USB transfer
        }
        reassembled.extend_from_slice(&f.payload);
    }
    assert!(
        decompress(&reassembled).is_err(),
        "a dropped frame must not decode silently"
    );
}

#[test]
fn stale_record_swap_is_caught_by_signature_binding() {
    use medsen::cloud::{AuthService, BeadSignature, PeakReport};
    let mut auth = AuthService::new();
    auth.enroll(
        "alice",
        BeadSignature::from_counts(&[(ParticleKind::Bead358, 60), (ParticleKind::Bead78, 20)]),
    );
    let store = RecordStore::new();
    let honest = StoredRecord {
        user_id: "alice".into(),
        report: PeakReport {
            peaks: vec![],
            carriers_hz: vec![5e5],
            sample_rate_hz: 450.0,
            duration_s: 1.0,
            noise_sigma: 3.0e-4,
        },
        signature: BeadSignature::from_counts(&[
            (ParticleKind::Bead358, 58),
            (ParticleKind::Bead78, 21),
        ]),
    };
    let id = store.store(honest);
    assert!(auth.verify_integrity("alice", &store.fetch(id).expect("stored").signature));

    // A malicious insider replaces alice's record with someone else's data.
    let mut forged = store.fetch(id).expect("stored");
    forged.signature =
        BeadSignature::from_counts(&[(ParticleKind::Bead358, 10), (ParticleKind::Bead78, 90)]);
    store.tamper(id, forged);
    assert!(
        !auth.verify_integrity("alice", &store.fetch(id).expect("stored").signature),
        "swapped record must fail the identifier binding"
    );
}
