//! The adversarial self-audit battery: drives the `medsen-audit`
//! instruments against the real subsystems and assembles the scorecard.
//!
//! `medsen-audit` deliberately links nothing it measures — its estimators
//! and harnesses must not share code with the system under test. The
//! facade crate is the one place that depends on everything, so the glue
//! lives here: each section below feeds a real subsystem (the sensor's
//! key generator, the cloud's auth compare and shard router, the core's
//! credential model) into the audit crate's instruments.
//!
//! Every section draws from its own [`AuditRng::derive`] sub-stream of
//! the battery seed, so the scorecard is bit-reproducible for a fixed
//! `--seed` (wall-clock nanoseconds excepted — see the determinism
//! contract on [`Scorecard`]).

use medsen_audit::{
    collision_sweep, AuditRng, CollisionSection, DistinguisherSection, DistinguisherTrial,
    EntropyRow, EntropySection, Scorecard, SymbolHistogram, TimingSection,
};
use medsen_cloud::{identity_hash, BeadSignature, ShardedAuth, SignatureDistinguisher};
use medsen_core::{CytoPassword, PasswordAlphabet};
use medsen_sensor::{
    ideal_key_length_bits, Controller, ControllerConfig, ElectrodeArray, KeySchedule,
};
use medsen_units::{Microliters, Seconds};
use std::hint::black_box;

/// Battery sizing. The measurements are identical between presets; only
/// sample counts change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Master seed; every section derives its own sub-stream from it.
    pub seed: u64,
    /// Keys sampled per entropy-sweep configuration.
    pub entropy_keys: u64,
    /// Session budget per distinguishing trial.
    pub distinguisher_budget: u64,
    /// Wall-clock samples per timing class.
    pub timing_samples: usize,
    /// Identifiers swept through the identity hash.
    pub keyspace_size: u64,
    /// Subset of the keyspace enrolled into a live sharded tier.
    pub enroll_subset: u64,
    /// Shards in the sweep and the live tier.
    pub shard_count: usize,
}

impl AuditConfig {
    /// The full battery: the million-credential sweep the issue calls
    /// for, fleet-scale sharding, tight statistics. Seconds of runtime.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            entropy_keys: 20_000,
            distinguisher_budget: 2_048,
            timing_samples: 301,
            keyspace_size: 1_000_000,
            enroll_subset: 4_096,
            shard_count: 64,
        }
    }

    /// A reduced battery for quick local iteration: same sections, same
    /// pass logic, ~10× smaller samples.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            entropy_keys: 2_000,
            distinguisher_budget: 512,
            timing_samples: 101,
            keyspace_size: 100_000,
            enroll_subset: 512,
            shard_count: 16,
        }
    }
}

/// Runs the four-section battery and returns the scorecard.
pub fn run(config: &AuditConfig) -> Scorecard {
    Scorecard {
        seed: config.seed,
        entropy: entropy_section(config),
        distinguisher: distinguisher_section(config),
        timing: timing_section(config),
        collision: collision_section(config),
    }
}

// --- section 1: keying entropy vs Eq. 2 ---------------------------------

/// The swept Eq. 2 parameter points: the paper prototype (9 electrodes),
/// the deployed design (16), the coarse-gain ablation, and a multi-cell
/// point exercising the linear scaling.
const ENTROPY_SWEEP: [(u64, u8, u8); 4] = [
    // (n_cells, n_electrodes, r_gain_bits); r_flow is the 4-bit hardware.
    (1, 9, 4),
    (1, 16, 4),
    (1, 9, 1),
    (4, 9, 4),
];

fn entropy_section(config: &AuditConfig) -> EntropySection {
    let rows = ENTROPY_SWEEP
        .iter()
        .map(|&(n_cells, n_elec, gain_bits)| {
            let mut seeds = AuditRng::derive(
                config.seed,
                &[b"entropy-" as &[u8], &[n_cells as u8, n_elec, gain_bits]].concat(),
            );
            entropy_row(
                seeds.next_u64(),
                n_cells,
                n_elec,
                gain_bits,
                config.entropy_keys,
            )
        })
        .collect();
    EntropySection { rows }
}

/// Measures the observable entropy of `keys` generated keys at one
/// configuration. The estimate is the component-wise sum — multiplicity
/// entropy + E[#selected] × per-peak gain entropy + flow entropy — an
/// upper bound on the joint observable entropy (components are treated
/// as independent), which is the conservative direction: even the upper
/// bound must sit below the Eq. 2 key budget.
fn entropy_row(
    controller_seed: u64,
    n_cells: u64,
    n_elec: u8,
    gain_bits: u8,
    keys: u64,
) -> EntropyRow {
    let array = ElectrodeArray::new(n_elec).expect("swept sizes are within the mux limit");
    let controller_config = ControllerConfig {
        gain_bits,
        ..ControllerConfig::paper_default()
    };
    let mut controller = Controller::new(array, controller_config, controller_seed);
    let duration = Seconds::new(keys as f64 * controller_config.key_period.value());
    let schedule = controller.generate_schedule(duration);
    let KeySchedule::Periodic {
        keys: cipher_keys, ..
    } = schedule
    else {
        unreachable!("generate_schedule always installs a periodic schedule");
    };
    let mut multiplicity = SymbolHistogram::new();
    let mut gain = SymbolHistogram::new();
    let mut flow = SymbolHistogram::new();
    let mut selected_total = 0u64;
    for key in cipher_keys {
        let view = key.observable_projection(&array);
        multiplicity.record(u64::from(view[0]));
        for &level in &view[1..view.len() - 1] {
            gain.record(u64::from(level));
        }
        flow.record(u64::from(view[view.len() - 1]));
        selected_total += (view.len() - 2) as u64;
    }
    let samples = cipher_keys.len() as u64;
    let mean_selected = selected_total as f64 / samples as f64;
    let per_cell = multiplicity.estimate().shannon_bits
        + mean_selected * gain.estimate().shannon_bits
        + flow.estimate().shannon_bits;
    EntropyRow {
        n_cells: n_cells as u32,
        n_electrodes: u32::from(n_elec),
        r_gain_bits: u32::from(gain_bits),
        r_flow_bits: 4,
        eq2_bits: ideal_key_length_bits(n_cells, u64::from(n_elec), u64::from(gain_bits), 4) as f64,
        observable_bits: per_cell * n_cells as f64,
        samples,
    }
}

// --- section 2: distinguishing attack ------------------------------------

fn distinguisher_section(config: &AuditConfig) -> DistinguisherSection {
    let alphabet = PasswordAlphabet::paper_default();
    // One minute of acquisition processes ≈ 0.08 µL — about 40 beads per
    // concentration level, the paper's operating point.
    let volume = Microliters::new(0.08);
    let z_threshold = 5.0;
    let pairs: [(&str, [u8; 2], [u8; 2]); 3] = [
        ("same credential (control)", [2, 6], [2, 6]),
        ("adjacent credentials", [2, 6], [3, 6]),
        ("distant credentials", [1, 1], [8, 8]),
    ];
    let trials = pairs
        .iter()
        .map(|&(label, levels_a, levels_b)| {
            let a = CytoPassword::new(&alphabet, levels_a.to_vec()).expect("valid levels");
            let b = CytoPassword::new(&alphabet, levels_b.to_vec()).expect("valid levels");
            let expected_a = a.expected_signature(&alphabet, volume);
            let expected_b = b.expected_signature(&alphabet, volume);
            let mut rng = AuditRng::derive(config.seed, label.as_bytes());
            let mut adversary = SignatureDistinguisher::new();
            let mut separated = None;
            for session in 1..=config.distinguisher_budget {
                adversary.observe_a(&noisy_session(&mut rng, &expected_a));
                adversary.observe_b(&noisy_session(&mut rng, &expected_b));
                if session >= 2 && adversary.distinguished(z_threshold) {
                    separated = Some(session);
                    break;
                }
            }
            DistinguisherTrial {
                label: label.to_owned(),
                distance: u32::from(a.distance(&b)),
                sessions_to_distinguish: separated,
                max_sessions: config.distinguisher_budget,
            }
        })
        .collect();
    DistinguisherSection {
        z_threshold,
        trials,
    }
}

/// One observed auth session: Poisson arrival noise on each expected bead
/// count — what the cloud's classifier hands it after a real acquisition.
fn noisy_session(rng: &mut AuditRng, expected: &BeadSignature) -> BeadSignature {
    let mut measured = BeadSignature::new();
    for (kind, count) in expected.entries() {
        measured.set(kind, rng.poisson(count as f64));
    }
    measured
}

// --- section 3: auth compare timing --------------------------------------

fn timing_section(config: &AuditConfig) -> TimingSection {
    use medsen_microfluidics::ParticleKind;
    let enrolled =
        BeadSignature::from_counts(&[(ParticleKind::Bead358, 100), (ParticleKind::Bead78, 100)]);
    // The two classes a password oracle would distinguish: a guess wrong
    // in the first bead kind vs wrong only in the last.
    let first_mismatch =
        BeadSignature::from_counts(&[(ParticleKind::Bead358, 500), (ParticleKind::Bead78, 100)]);
    let last_mismatch =
        BeadSignature::from_counts(&[(ParticleKind::Bead358, 100), (ParticleKind::Bead78, 500)]);
    let tolerance = 0.30;
    let (ok_first, ops_first) = enrolled.matches_counted(&first_mismatch, tolerance);
    let (ok_last, ops_last) = enrolled.matches_counted(&last_mismatch, tolerance);
    debug_assert!(!ok_first && !ok_last, "both probes must mismatch");
    let mut rng = AuditRng::derive(config.seed, b"timing");
    let wall_clock =
        medsen_audit::timing::measure_paired(&mut rng, config.timing_samples, |is_first| {
            let probe = if is_first {
                &first_mismatch
            } else {
                &last_mismatch
            };
            black_box(enrolled.matches(black_box(probe), tolerance));
        });
    TimingSection {
        ops_first_mismatch: u64::from(ops_first),
        ops_last_mismatch: u64::from(ops_last),
        wall_clock,
    }
}

// --- section 4: keyspace collisions --------------------------------------

fn collision_section(config: &AuditConfig) -> CollisionSection {
    use medsen_microfluidics::ParticleKind;
    let mut rng = AuditRng::derive(config.seed, b"collision");
    // A per-seed namespace tag: different seeds sweep disjoint identifier
    // populations, so the sweep itself is seed-sensitive.
    let tag = rng.next_u64();
    let identifier = |i: u64| format!("cred-{tag:016x}-{i:08}");

    let report = collision_sweep(
        (0..config.keyspace_size).map(|i| identity_hash(&identifier(i))),
        config.shard_count,
    );

    // Enroll a subset into a live sharded tier and round-trip every
    // credential through the integrity check, cross-checking the tier's
    // per-shard occupancy against this module's own modulo routing (the
    // shard-route equivalence the record-id contract depends on).
    let tier = ShardedAuth::new(config.shard_count);
    let signature_of = |i: u64| {
        BeadSignature::from_counts(&[
            (ParticleKind::Bead358, 40 + (i * 7) % 400),
            (ParticleKind::Bead78, 40 + (i * 13) % 400),
        ])
    };
    let mut predicted_loads = vec![0usize; config.shard_count];
    for i in 0..config.enroll_subset {
        let id = identifier(i);
        predicted_loads[(identity_hash(&id) % config.shard_count as u64) as usize] += 1;
        tier.enroll(id, signature_of(i));
    }
    let mut verified = tier.enrolled_count() as u64 == config.enroll_subset;
    for i in 0..config.enroll_subset {
        verified &= tier.verify_integrity(&identifier(i), &signature_of(i));
    }
    let actual_loads: Vec<usize> = tier.stats().iter().map(|s| s.enrolled).collect();
    verified &= actual_loads == predicted_loads;

    // 6σ of the binomial occupancy spread: ideal load n/s with relative
    // deviation ≈ sqrt(s/n) per shard.
    let imbalance_limit =
        1.0 + 6.0 * (config.shard_count as f64 / config.keyspace_size as f64).sqrt();
    CollisionSection {
        report,
        enrolled: config.enroll_subset,
        enrolled_verified: verified,
        imbalance_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_battery_passes_and_reproduces() {
        let config = AuditConfig::quick(7);
        let first = run(&config);
        assert!(first.pass(), "quick battery failed:\n{first}");
        let second = run(&config);
        // Everything except the wall-clock timing stats is bit-equal.
        assert_eq!(first.entropy, second.entropy);
        assert_eq!(first.distinguisher, second.distinguisher);
        assert_eq!(first.collision, second.collision);
        assert_eq!(
            first.timing.ops_first_mismatch,
            second.timing.ops_first_mismatch
        );
    }

    #[test]
    fn different_seeds_sweep_different_populations() {
        let a = run(&AuditConfig::quick(1));
        let b = run(&AuditConfig::quick(2));
        assert_ne!(a.collision.report, b.collision.report);
    }

    #[test]
    fn entropy_rows_cover_the_sweep_and_scale_linearly() {
        let card = run(&AuditConfig::quick(3));
        assert_eq!(card.entropy.rows.len(), ENTROPY_SWEEP.len());
        let one_cell = &card.entropy.rows[0];
        let four_cells = &card.entropy.rows[3];
        assert_eq!(four_cells.eq2_bits, 4.0 * one_cell.eq2_bits);
        // Coarser gains shrink both the key budget and the observable.
        let coarse = &card.entropy.rows[2];
        assert!(coarse.eq2_bits < one_cell.eq2_bits);
        assert!(coarse.observable_bits < one_cell.observable_bits);
    }
}
