//! # MedSen — secure point-of-care diagnostics (DSN 2016 reproduction)
//!
//! Facade crate re-exporting every subsystem of the MedSen reproduction:
//!
//! * [`units`] — physical quantity newtypes;
//! * [`microfluidics`] — channel, particles, transport, losses;
//! * [`impedance`] — electrode circuit, lock-in amplifier, trace synthesis;
//! * [`sensor`] — electrode arrays, multiplexer, controller, the analog cipher;
//! * [`dsp`] — detrending, peak detection, features, classification;
//! * [`cloud`] — analysis server, authentication, adversary models;
//! * [`phone`] — accessory protocol, compression, link model;
//! * [`core`] — cyto-coded passwords, diagnostics, the end-to-end pipeline;
//! * [`gateway`] — concurrent multi-session ingestion in front of the cloud;
//! * [`runtime`] — hand-rolled async executor, timer wheel, and channels
//!   multiplexing fleet-scale session counts over a fixed thread pool;
//! * [`store`] — durable per-shard write-ahead log with group commit,
//!   snapshots, and crash recovery backing the cloud tier;
//! * [`replica`] — epoch-fenced WAL stream replication pairing each
//!   shard with a warm standby and a fenced promotion path;
//! * [`fountain`] — rateless LT erasure codec for one-way phone→cloud
//!   uploads in RF-restricted clinics (no ACK path);
//! * [`telemetry`] — request-scoped trace spans, the unified metrics
//!   registry, and text/JSON exposition shared by every serving layer;
//! * [`audit`] — the zero-dependency measurement instruments (entropy
//!   estimators, sequential distinguisher, timing harness, collision
//!   sweep) behind the adversarial self-audit;
//! * [`wire`] — the shared cross-tier wire protocol: the workspace's
//!   one CRC-32, the zero-copy transport frame, and the binary/JSON
//!   codec backends every tier links so the formats cannot drift;
//! * [`selfaudit`] — the battery driver wiring those instruments to the
//!   real subsystems and producing the `medsen audit` scorecard.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete encrypted diagnostic session.

pub use medsen_audit as audit;
pub use medsen_cloud as cloud;
pub use medsen_core as core;
pub use medsen_dsp as dsp;
pub use medsen_fountain as fountain;
pub use medsen_gateway as gateway;
pub use medsen_impedance as impedance;
pub use medsen_microfluidics as microfluidics;
pub use medsen_phone as phone;
pub use medsen_replica as replica;
pub use medsen_runtime as runtime;
pub use medsen_sensor as sensor;
pub use medsen_store as store;
pub use medsen_telemetry as telemetry;
pub use medsen_units as units;
pub use medsen_wire as wire;

pub mod selfaudit;
