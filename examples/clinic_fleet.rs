//! Clinic fleet: many dongle sessions served concurrently by the gateway.
//!
//! A rural clinic runs a handful of MedSen dongles at once. Each dongle's
//! phone uploads framed traces over a flaky uplink; the gateway absorbs
//! the burst through a bounded work queue, sheds overload with a
//! retry-after hint, and drives one shared cloud service from a worker
//! pool. At the end, the gateway's metrics show exactly what the fleet
//! experienced.
//!
//! ```text
//! cargo run --release --example clinic_fleet
//! ```

use medsen::cloud::auth::{AuthDecision, BeadSignature};
use medsen::cloud::service::{CloudService, Request, Response};
use medsen::dsp::classify::Classifier;
use medsen::dsp::FeatureVector;
use medsen::gateway::{Gateway, GatewayConfig, SessionConfig, ShedPolicy};
use medsen::impedance::{PulseSpec, SignalTrace, TraceSynthesizer};
use medsen::microfluidics::ParticleKind;
use medsen::units::Seconds;
use std::sync::Mutex;

const SESSIONS: usize = 12;
const USERS: [(&str, u64); 3] = [("ana", 3), ("bo", 6), ("cleo", 12)];

/// A clean trace with `pulses` bead transits, jittered per session.
fn session_trace(session: usize, pulses: u64) -> SignalTrace {
    let mut synth = TraceSynthesizer::clean(1);
    let jitter = session as f64 * 1e-3;
    let specs: Vec<PulseSpec> = (0..pulses)
        .map(|j| {
            PulseSpec::unipolar(
                Seconds::new(0.5 + jitter + j as f64 * 0.25),
                Seconds::new(0.02),
                0.01,
            )
        })
        .collect();
    synth.render(
        &specs,
        Seconds::new(0.5 + jitter + pulses as f64 * 0.25 + 0.5),
    )
}

fn main() {
    // Train a one-class bead classifier from the analysis pipeline's own
    // features, so each detected peak counts as one password bead.
    let mut service = CloudService::new();
    let reference = match service.handle(Request::Analyze {
        trace: session_trace(999, 8),
        authenticate: false,
    }) {
        Response::Analyzed { report, .. } => report,
        other => panic!("reference analysis failed: {other:?}"),
    };
    let vectors: Vec<FeatureVector> = reference
        .peaks
        .iter()
        .map(|p| FeatureVector {
            index: 0,
            amplitudes: p.features.clone(),
        })
        .collect();
    service.install_classifier(
        Classifier::train(&[(ParticleKind::Bead358.label(), vectors)]).expect("trains"),
    );

    // An intentionally small gateway, so backpressure is visible.
    let gateway = Gateway::new(
        service,
        GatewayConfig {
            queue_capacity: 2,
            workers: 2,
            shed_policy: ShedPolicy::Reject {
                retry_after: Seconds::from_millis(50.0),
            },
        },
    );

    // Enroll the clinic's users through the gateway.
    let mut admin = gateway.connect(SessionConfig::reliable());
    for (user, count) in USERS {
        admin
            .enroll(
                user,
                BeadSignature::from_counts(&[(ParticleKind::Bead358, count)]),
            )
            .expect("enrolls");
    }
    admin.close().expect("admin session closes");

    // The fleet: every dongle streams its trace at once over a 20% flaky
    // uplink (deterministic per session).
    let outcomes = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for i in 0..SESSIONS {
            let gateway = &gateway;
            let outcomes = &outcomes;
            scope.spawn(move || {
                let (user, count) = USERS[i % USERS.len()];
                let mut session = gateway.connect(SessionConfig::flaky(0.2, i as u64));
                let response = session
                    .analyze(session_trace(i, count), true)
                    .expect("session completes");
                let stats = session.stats();
                outcomes.lock().unwrap().push((i, user, response, stats));
            });
        }
    });

    let mut outcomes = outcomes.into_inner().unwrap();
    outcomes.sort_by_key(|(i, ..)| *i);
    for (i, user, response, stats) in &outcomes {
        let verdict = match response {
            Response::Analyzed {
                auth: Some(AuthDecision::Accepted { user_id }),
                ..
            } => format!("accepted as {user_id}"),
            Response::Analyzed {
                auth: Some(decision),
                ..
            } => format!("{decision:?}"),
            other => format!("{other:?}"),
        };
        println!(
            "session {i:2} ({user:4}): {verdict} \
             [{} link retries, {} shed retries, {:.2} s simulated uplink]",
            stats.link_retries,
            stats.shed_retries,
            stats.sim_uplink.value()
        );
    }

    println!("\ngateway metrics:\n{}", gateway.shutdown());
}
