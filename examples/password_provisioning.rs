//! Cyto-coded password lifecycle: enrollment, pipette provisioning,
//! authentication, and the ciphertext integrity check (Sec. V).
//!
//! ```text
//! cargo run --release --example password_provisioning
//! ```

use medsen::cloud::{AuthDecision, RecordStore, StoredRecord};
use medsen::core::{DiagnosticRule, PasswordAlphabet, Pipeline, PipelineConfig, UserRegistry};
use medsen::units::Seconds;

fn main() {
    // 1. Enrollment authority: assign collision-free passwords.
    let alphabet = PasswordAlphabet::paper_default();
    println!(
        "password space: {} identifiers ({:.1} bits of entropy)",
        alphabet.password_space(),
        alphabet.entropy_bits()
    );
    let mut registry = UserRegistry::new(alphabet.clone(), 2);
    for user in ["alice", "bob"] {
        let pw = registry.enroll(user).expect("capacity available");
        println!("enrolled {user}: levels {:?}", pw.levels());
    }
    let batch = registry.provision("alice", 30).expect("alice is enrolled");
    println!(
        "provisioned {} pipettes for {} (same embedded identifier)\n",
        batch.count, batch.user_id
    );

    // 2. The cloud learns only expected signatures.
    let config = PipelineConfig {
        duration: Seconds::new(30.0),
        ..PipelineConfig::auth_default(77)
    };
    let mut pipeline = Pipeline::new(config, alphabet, DiagnosticRule::cd4_staging());
    println!("calibrating the bead/cell classifier from reference runs...");
    pipeline.calibrate_classifier();
    let volume = pipeline.processed_volume();
    registry.sync_to_cloud(pipeline.auth_mut(), volume);

    // 3. Alice authenticates by running a test with her own pipette.
    let alice_pw = registry.password_of("alice").expect("enrolled").clone();
    let report = pipeline.run_session("alice", &alice_pw);
    println!(
        "alice's session: measured {:?} -> {:?}",
        report.measured_signature.as_ref().expect("auth measures"),
        report.auth.as_ref().expect("decision issued")
    );

    // 4. Mallory tries with the wrong mixture.
    let mallory_pw = registry.password_of("bob").expect("enrolled").clone();
    let intruder = pipeline.run_session("mallory-with-bobs-pipette", &mallory_pw);
    println!(
        "stolen-pipette session authenticates as: {:?} (a stolen pipette is a stolen",
        intruder.auth.as_ref().expect("decision issued")
    );
    println!("credential — like any password, possession is the secret)\n");

    // 5. Integrity: records are bound to the identifier that produced them.
    let store = RecordStore::new();
    let signature = report.measured_signature.expect("auth measures");
    let id = store.store(StoredRecord {
        user_id: "alice".into(),
        report: medsen::cloud::PeakReport {
            peaks: vec![],
            carriers_hz: vec![5e5],
            sample_rate_hz: 450.0,
            duration_s: 30.0,
            noise_sigma: 3.0e-4,
        },
        signature: signature.clone(),
    });
    let fetched = store.fetch(id).expect("stored");
    let auth_ok = pipeline_auth_check(&pipeline, &fetched);
    println!(
        "integrity check on alice's stored record: {}",
        verdict(auth_ok)
    );

    // A curious insider swaps the record body for bob's.
    let bob_report = pipeline.run_session("bob", &mallory_pw);
    store.tamper(
        id,
        StoredRecord {
            user_id: "alice".into(),
            report: medsen::cloud::PeakReport {
                peaks: vec![],
                carriers_hz: vec![5e5],
                sample_rate_hz: 450.0,
                duration_s: 30.0,
                noise_sigma: 3.0e-4,
            },
            signature: bob_report.measured_signature.expect("auth measures"),
        },
    );
    let swapped = store.fetch(id).expect("stored");
    let tampered_ok = pipeline_auth_check(&pipeline, &swapped);
    println!(
        "integrity check after tampering      : {}",
        verdict(tampered_ok)
    );
}

fn pipeline_auth_check(pipeline: &Pipeline, record: &StoredRecord) -> bool {
    // Re-authenticate the stored signature under the record's claimed user.
    matches!(
        pipeline_auth(pipeline, record),
        AuthDecision::Accepted { ref user_id } if user_id == &record.user_id
    )
}

fn pipeline_auth(pipeline: &Pipeline, record: &StoredRecord) -> AuthDecision {
    pipeline.auth().authenticate(&record.signature)
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "INTACT"
    } else {
        "TAMPERING DETECTED"
    }
}
