//! Security audit: run the Sec. IV-A attacks against progressively stronger
//! cipher configurations and watch the honest decryptor stay accurate while
//! every attack degrades.
//!
//! ```text
//! cargo run --release --example adversary_audit
//! ```

use medsen::cloud::{
    AmplitudeGroupingAttack, AnalysisServer, BurstClusteringAttack, WidthGroupingAttack,
};
use medsen::microfluidics::{
    ChannelGeometry, ParticleKind, PeristalticPump, SampleSpec, TransportSimulator,
};
use medsen::sensor::{Controller, ControllerConfig, EncryptedAcquisition};
use medsen::units::{Concentration, Microliters, Seconds};

fn main() {
    let duration = Seconds::new(30.0);
    let server = AnalysisServer::paper_default();
    let variants: [(&str, bool, bool, bool); 3] = [
        ("plaintext", false, false, false),
        ("selection only", true, false, false),
        ("full cipher", true, true, true),
    ];

    println!(
        "{:<16} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "variant", "truth", "peaks", "amp-atk", "width-atk", "burst-atk", "decryptor"
    );
    println!("{}", "-".repeat(76));

    for (label, random_sel, gains, flow) in variants {
        let seed = 4242;
        let sample = SampleSpec::bead_calibration(
            Microliters::new(1.0),
            ParticleKind::Bead78,
            Concentration::new(25.0 / (0.08 / 60.0 * duration.value())),
        );
        let mut sim = TransportSimulator::new(
            ChannelGeometry::paper_default(),
            PeristalticPump::paper_default(),
            seed,
        );
        let events = sim.run(&sample, duration);
        let truth = events.len();

        let mut acq = EncryptedAcquisition::paper_default(seed);
        let mut controller = Controller::new(
            *acq.array(),
            ControllerConfig {
                randomize_gains: gains,
                randomize_flow: flow,
                ..ControllerConfig::paper_default()
            },
            seed,
        );
        let schedule = if random_sel {
            controller.generate_schedule(duration).clone()
        } else {
            controller.plaintext_schedule().clone()
        };
        let out = acq.run(&events, &schedule, duration);
        let report = server.analyze(&out.trace);

        let amp = AmplitudeGroupingAttack::paper_default().estimate(&report);
        let width = WidthGroupingAttack::paper_default().estimate(&report);
        let burst = BurstClusteringAttack::paper_default().estimate(&report);
        let geometry = ChannelGeometry::paper_default();
        let v = PeristalticPump::paper_default().velocity_at(
            Seconds::ZERO,
            geometry.pore_width,
            geometry.pore_height,
        );
        let delay = Seconds::new(acq.array().span(&geometry).value() / (2.0 * v));
        let decoded = controller
            .decryptor_with_delay(delay)
            .decrypt(&report.reported_peaks())
            .rounded();

        println!(
            "{:<16} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}",
            label,
            truth,
            report.peak_count(),
            amp.estimated_cells,
            width.estimated_cells,
            burst.estimated_cells,
            decoded
        );
    }

    println!("\nEach attack consumes exactly the PeakReport the honest protocol already");
    println!("hands the cloud. Only the decryptor, which holds K(t), tracks the truth");
    println!("once the full cipher is on.");
}
