//! Domain scenario: longitudinal cell-count monitoring (the paper's HIV
//! staging motivation — "the white blood CD-4 cell count is the strongest
//! predictor of HIV progression").
//!
//! Three simulated patients with different circulating cell concentrations
//! run the same encrypted test; the controller-side verdict must track the
//! underlying concentration even though the cloud only ever sees ciphertext.
//!
//! ```text
//! cargo run --release --example hiv_monitoring
//! ```

use medsen::cloud::AnalysisServer;
use medsen::core::DiagnosticRule;
use medsen::microfluidics::{
    ChannelGeometry, ParticleKind, PeristalticPump, SampleSpec, TransportSimulator,
};
use medsen::sensor::{Controller, ControllerConfig, EncryptedAcquisition};
use medsen::units::{Concentration, Microliters, Seconds};

struct Patient {
    name: &'static str,
    /// Circulating marker-cell concentration after sample dilution (1/µL).
    diluted_cells: f64,
    /// Dilution applied during prep.
    dilution: f64,
}

fn main() {
    // The staging rule: thresholds on the *whole-blood* concentration.
    let rule = DiagnosticRule::cd4_staging();
    let duration = Seconds::new(120.0);
    let processed = PeristalticPump::paper_default()
        .profile()
        .rate_at(Seconds::ZERO)
        .volume_after(duration);

    // The tiny processed volume (0.16 µL over two minutes) means CD4-range
    // concentrations need almost no dilution to yield countable cells:
    // 450/µL diluted × 2 = 900 cells/µL whole blood, etc.
    let patients = [
        Patient {
            name: "patient A (healthy)",
            diluted_cells: 450.0,
            dilution: 2.0,
        },
        Patient {
            name: "patient B (advanced)",
            diluted_cells: 175.0,
            dilution: 2.0,
        },
        Patient {
            name: "patient C (severe)",
            diluted_cells: 60.0,
            dilution: 2.0,
        },
    ];

    println!(
        "Encrypted CD4-style staging, {} s runs, {:.3} µL processed:\n",
        duration.value(),
        processed.value()
    );
    for (i, p) in patients.iter().enumerate() {
        let seed = 9000 + i as u64;
        let mut sample = SampleSpec::buffer(Microliters::new(10.0));
        sample.add(
            ParticleKind::WhiteBloodCell,
            Concentration::new(p.diluted_cells),
        );

        let mut sim = TransportSimulator::new(
            ChannelGeometry::paper_default(),
            PeristalticPump::paper_default(),
            seed,
        );
        let events = sim.run(&sample, duration);

        let mut acq = EncryptedAcquisition::paper_default(seed);
        let mut controller = Controller::new(*acq.array(), ControllerConfig::paper_default(), seed);
        let schedule = controller.generate_schedule(duration).clone();
        let out = acq.run(&events, &schedule, duration);

        let report = AnalysisServer::paper_default().analyze(&out.trace);
        let geometry = ChannelGeometry::paper_default();
        let v = PeristalticPump::paper_default().velocity_at(
            Seconds::ZERO,
            geometry.pore_width,
            geometry.pore_height,
        );
        let delay = Seconds::new(acq.array().span(&geometry).value() / (2.0 * v));
        let decoded = controller
            .decryptor_with_delay(delay)
            .decrypt(&report.reported_peaks())
            .rounded();
        let verdict = rule.evaluate_count(decoded, processed, p.dilution);

        println!(
            "{:<22} true cells {:>3} | cloud saw {:>3} peaks | decoded {:>3} | {:?}",
            p.name,
            out.true_total(),
            report.peak_count(),
            decoded,
            verdict
        );
    }
    println!("\nThe cloud never sees a count it can interpret; only the key-holding");
    println!("controller recovers the cell count and applies the staging thresholds.");
}
