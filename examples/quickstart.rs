//! Quickstart: one complete encrypted diagnostic session.
//!
//! A patient draws a blood sample with a pre-provisioned pipette, the sensor
//! encrypts the acquisition at the electrode level, the phone relays the
//! compressed ciphertext, the cloud counts peaks without learning anything,
//! and the controller decrypts the count and issues a verdict.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use medsen::core::{CytoPassword, DiagnosticRule, PasswordAlphabet, Pipeline, PipelineConfig};
use medsen::microfluidics::ParticleKind;
use medsen::units::{Concentration, Seconds};

fn main() {
    // A low-dose identifier alphabet for encrypted diagnostics (sparse
    // streams decode most accurately — see DESIGN.md).
    let alphabet = PasswordAlphabet::new(
        vec![ParticleKind::Bead358, ParticleKind::Bead78],
        Concentration::new(100.0),
        8,
    )
    .expect("valid alphabet");
    let password = CytoPassword::new(&alphabet, vec![1, 1]).expect("valid password");

    let config = PipelineConfig {
        duration: Seconds::new(30.0),
        ..PipelineConfig::paper_default(2024)
    };
    let mut pipeline = Pipeline::new(config, alphabet, DiagnosticRule::cd4_staging());

    println!("Running one encrypted MedSen diagnostic session (30 s acquisition)...\n");
    let report = pipeline.run_session("patient-001", &password);

    println!(
        "ground truth   : {} cells + {} beads crossed the sensor",
        report.true_cells, report.true_beads
    );
    println!(
        "cloud observed : {} peaks (the encrypted count)",
        report.peak_count
    );
    println!(
        "decrypted      : {} particles -> {} cells after bead subtraction",
        report.decoded_total.expect("encrypted mode decodes"),
        report.decoded_cells.expect("encrypted mode decodes")
    );
    println!(
        "verdict        : {:?}",
        report.verdict.expect("diagnosis issued")
    );
    println!(
        "\ncompression    : {:.0} -> {:.0} bytes ({:.2}x)",
        report.compression.raw_bytes as f64,
        report.compression.compressed_bytes as f64,
        report.compression.ratio()
    );
    let t = report.timing;
    println!(
        "timing         : compress {:.3} s | upload {:.3} s | cloud {:.3} s | decrypt {:.4} s",
        t.compression_s, t.upload_s, t.analysis_s, t.decryption_s
    );
    println!(
        "post-acquisition total: {:.3} s (paper: ~0.2 s excl. networking)",
        t.post_acquisition_s()
    );
}
