//! Practitioner access — the Sec. VII-B extension: "MedSen's design also
//! allows (not implemented) sharing of the generated keys with trusted
//! parties, e.g., the patient's practitioners, so that they could also
//! access the cloud-based analysis outcomes remotely."
//!
//! The patient's controller never exports raw key material. Instead it
//! derives a minimal *decryption capability* (per-period multiplication
//! factors) and seals it for the practitioner. The practitioner later
//! fetches the stored encrypted record from the cloud and decrypts the count
//! — without ever learning electrode selections, gains or flow settings.
//!
//! ```text
//! cargo run --release --example practitioner_access
//! ```

use medsen::cloud::BeadSignature;
use medsen::cloud::{AnalysisServer, RecordStore, StoredRecord};
use medsen::core::sharing::{DecryptionCapability, SealedCapability};
use medsen::microfluidics::{ChannelGeometry, ParticleKind, PeristalticPump, TransportSimulator};
use medsen::sensor::{Controller, ControllerConfig, EncryptedAcquisition};
use medsen::units::Seconds;

fn main() {
    let duration = Seconds::new(40.0);
    let seed = 777;

    // ── Patient side ────────────────────────────────────────────────────
    let mut sim = TransportSimulator::new(
        ChannelGeometry::paper_default(),
        PeristalticPump::paper_default(),
        seed,
    );
    let events = sim.run_exact_count(ParticleKind::WhiteBloodCell, 22, duration);
    let mut acq = EncryptedAcquisition::paper_default(seed);
    let mut controller = Controller::new(*acq.array(), ControllerConfig::paper_default(), seed);
    let schedule = controller.generate_schedule(duration).clone();
    let out = acq.run(&events, &schedule, duration);
    println!(
        "patient ran an encrypted test: {} true cells",
        out.true_total()
    );

    // The cloud analyzes and stores the (encrypted) result.
    let report = AnalysisServer::paper_default().analyze(&out.trace);
    println!(
        "cloud stored the record: {} peaks (meaningless without the key)",
        report.peak_count()
    );
    let store = RecordStore::new();
    let record_id = store.store(StoredRecord {
        user_id: "pipette-000042".into(), // anonymous per-pipette alias
        report,
        signature: BeadSignature::new(),
    });

    // The patient shares a sealed capability with their practitioner over a
    // pre-established secret (e.g. exchanged at the clinic).
    let shared_secret = 0x5EC2E7_u64;
    let geometry = ChannelGeometry::paper_default();
    let v = PeristalticPump::paper_default().velocity_at(
        Seconds::ZERO,
        geometry.pore_width,
        geometry.pore_height,
    );
    let delay = Seconds::new(acq.array().span(&geometry).value() / (2.0 * v));
    let capability = DecryptionCapability::derive(&controller, delay);
    let sealed = SealedCapability::seal(&capability, shared_secret, 1);
    println!(
        "patient sealed a {}-byte capability (multiplication factors only —",
        sealed.len()
    );
    println!("no electrode identities, gains, or flow settings leave the device)\n");

    // ── Practitioner side ───────────────────────────────────────────────
    let fetched = store.fetch(record_id).expect("record stored");
    let capability = sealed.unseal(shared_secret).expect("correct shared secret");
    let decrypted = capability.decrypt(&fetched.report.reported_peaks());
    println!(
        "practitioner fetched record {record_id:?} and decrypted: {} cells",
        decrypted.rounded()
    );
    println!("(ground truth was {})", out.true_total());

    // A curious cloud admin with the record but no secret gets nothing.
    match sealed.unseal(0xBAD5EC2E7u64) {
        Err(e) => println!("\ncloud admin without the secret: {e}"),
        Ok(_) => unreachable!("wrong secret must fail"),
    }
}
