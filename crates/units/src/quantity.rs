//! Concrete quantity definitions and the cross-quantity conversions that the
//! MedSen physics models rely on.

use crate::quantity_type;

quantity_type!(
    /// A length in micrometres (µm) — channel widths, electrode pitch,
    /// particle diameters.
    Micrometers,
    "µm"
);

quantity_type!(
    /// A volume in microlitres (µL) — blood samples (< 10 µL per test).
    Microliters,
    "µL"
);

quantity_type!(
    /// A volumetric flow rate in µL/min — the paper pumps at 0.08 µL/min and
    /// back-calculates 0.081 µL/min from transit times.
    FlowRate,
    "µL/min"
);

quantity_type!(
    /// A frequency in hertz. Carrier frequencies (500 kHz – 4 MHz), output
    /// sampling (450 Hz) and filter cut-offs (120 Hz) all use this type.
    Hertz,
    "Hz"
);

quantity_type!(
    /// An electric potential in volts — 1 V excitation, millivolt-scale peaks.
    Volts,
    "V"
);

quantity_type!(
    /// A duration in seconds.
    Seconds,
    "s"
);

quantity_type!(
    /// A resistance/impedance magnitude in ohms.
    Ohms,
    "Ω"
);

quantity_type!(
    /// A capacitance in farads — the electrode double-layer is ~nF scale.
    Farads,
    "F"
);

quantity_type!(
    /// A particle concentration in counts per microlitre.
    Concentration,
    "/µL"
);

impl Micrometers {
    /// Converts to metres.
    #[inline]
    pub fn to_meters(self) -> f64 {
        self.value() * 1e-6
    }

    /// Cross-sectional area (µm²) when used as one side of a rectangle.
    #[inline]
    pub fn area(self, other: Micrometers) -> f64 {
        self.value() * other.value()
    }

    /// Time for a particle to traverse this distance at `velocity` (µm/s).
    ///
    /// # Examples
    ///
    /// ```
    /// use medsen_units::Micrometers;
    /// let t = Micrometers::new(45.0).transit_time(2250.0);
    /// assert!((t.value() - 0.02).abs() < 1e-12); // the paper's ~20 ms peak
    /// ```
    #[inline]
    pub fn transit_time(self, velocity_um_per_s: f64) -> Seconds {
        Seconds::new(self.value() / velocity_um_per_s)
    }
}

impl Microliters {
    /// Converts to cubic micrometres (1 µL = 10⁹ µm³).
    #[inline]
    pub fn to_cubic_micrometers(self) -> f64 {
        self.value() * 1e9
    }

    /// Converts cubic micrometres to microlitres.
    #[inline]
    pub fn from_cubic_micrometers(um3: f64) -> Self {
        Self::new(um3 / 1e9)
    }

    /// Number of particles contained at the given concentration.
    #[inline]
    pub fn particle_count(self, concentration: Concentration) -> f64 {
        self.value() * concentration.value()
    }
}

impl FlowRate {
    /// Mean fluid velocity (µm/s) in a rectangular channel of the given
    /// cross-section.
    ///
    /// The paper's measurement pore is 30 µm × 20 µm; at 0.081 µL/min this
    /// gives ≈ 2250 µm/s, matching the observed ~20 ms transit over the
    /// 45 µm electrode span.
    #[inline]
    pub fn channel_velocity(self, width: Micrometers, height: Micrometers) -> f64 {
        // µL/min → µm³/s, divided by cross-section in µm².
        let um3_per_s = self.value() * 1e9 / 60.0;
        um3_per_s / width.area(height)
    }

    /// Volume delivered over a duration.
    #[inline]
    pub fn volume_after(self, duration: Seconds) -> Microliters {
        Microliters::new(self.value() * duration.value() / 60.0)
    }

    /// Back-calculates a flow rate from an observed transit: the volume swept
    /// through the pore cross-section while one particle crosses `span`.
    ///
    /// Reproduces the paper's Sec. VII-A calculation: a 45 µm span crossed in
    /// ≈ 20 ms inside a 30 µm × 20 µm pore ⇒ ≈ 0.081 µL/min.
    pub fn from_transit(
        span: Micrometers,
        transit: Seconds,
        width: Micrometers,
        height: Micrometers,
    ) -> Self {
        let velocity = span.value() / transit.value(); // µm/s
        let um3_per_s = velocity * width.area(height);
        Self::new(um3_per_s * 60.0 / 1e9)
    }
}

impl Hertz {
    /// Convenience constructor from kilohertz.
    #[inline]
    pub fn from_khz(khz: f64) -> Self {
        Self::new(khz * 1e3)
    }

    /// Convenience constructor from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// The period of one cycle.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.value())
    }

    /// Angular frequency ω = 2πf (rad/s).
    #[inline]
    pub fn angular(self) -> f64 {
        2.0 * core::f64::consts::PI * self.value()
    }
}

impl Seconds {
    /// Convenience constructor from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// Converts to milliseconds.
    #[inline]
    pub fn to_millis(self) -> f64 {
        self.value() * 1e3
    }

    /// Number of samples this duration spans at `rate`.
    #[inline]
    pub fn samples_at(self, rate: Hertz) -> usize {
        (self.value() * rate.value()).round().max(0.0) as usize
    }
}

impl Ohms {
    /// Convenience constructor from megaohms (the capacitive regime the paper
    /// reports is "MΩ range").
    #[inline]
    pub fn from_megaohms(mohm: f64) -> Self {
        Self::new(mohm * 1e6)
    }

    /// Converts to megaohms.
    #[inline]
    pub fn to_megaohms(self) -> f64 {
        self.value() / 1e6
    }
}

impl Farads {
    /// Convenience constructor from nanofarads.
    #[inline]
    pub fn from_nanofarads(nf: f64) -> Self {
        Self::new(nf * 1e-9)
    }

    /// The reactance magnitude 1/(ωC) of this capacitance at `f`.
    #[inline]
    pub fn reactance_at(self, f: Hertz) -> Ohms {
        Ohms::new(1.0 / (f.angular() * self.value()))
    }
}

impl Concentration {
    /// Concentration after diluting 1 part sample into `factor` parts total.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[inline]
    pub fn diluted(self, factor: f64) -> Self {
        assert!(factor > 0.0, "dilution factor must be positive");
        Self::new(self.value() / factor)
    }

    /// Expected particle count in the given volume.
    #[inline]
    pub fn expected_count(self, volume: Microliters) -> f64 {
        self.value() * volume.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_rate_matches_paper_velocity() {
        // 0.081 µL/min through a 30 × 20 µm pore.
        let v =
            FlowRate::new(0.081).channel_velocity(Micrometers::new(30.0), Micrometers::new(20.0));
        assert!((v - 2250.0).abs() < 1.0, "velocity was {v}");
    }

    #[test]
    fn paper_flow_rate_back_calculation() {
        // Sec. VII-A: 45 µm span, ~20 ms per peak, 30 × 20 µm channel
        // ⇒ ≈ 0.081 µL/min.
        let q = FlowRate::from_transit(
            Micrometers::new(45.0),
            Seconds::from_millis(20.0),
            Micrometers::new(30.0),
            Micrometers::new(20.0),
        );
        assert!((q.value() - 0.081).abs() < 0.001, "flow was {q}");
    }

    #[test]
    fn transit_time_roundtrip() {
        let velocity = 2250.0;
        let t = Micrometers::new(45.0).transit_time(velocity);
        assert!((t.to_millis() - 20.0).abs() < 0.1);
    }

    #[test]
    fn reactance_dominates_at_low_frequency() {
        // Double-layer capacitance ~1 nF: at 10 kHz reactance is ~16 kΩ,
        // at 1 MHz it is ~160 Ω — the capacitor "shorts out" as the paper says.
        let c = Farads::from_nanofarads(1.0);
        let low = c.reactance_at(Hertz::from_khz(10.0));
        let high = c.reactance_at(Hertz::from_mhz(1.0));
        assert!(low.value() > 100.0 * high.value());
    }

    #[test]
    fn khz_mhz_constructors() {
        assert_eq!(Hertz::from_khz(500.0).value(), 5e5);
        assert_eq!(Hertz::from_mhz(2.0).value(), 2e6);
    }

    #[test]
    fn seconds_sample_count() {
        // 450 Hz sampling for 2 s ⇒ 900 samples.
        assert_eq!(Seconds::new(2.0).samples_at(Hertz::new(450.0)), 900);
    }

    #[test]
    fn concentration_dilution_and_counts() {
        let c = Concentration::new(1000.0).diluted(10.0);
        assert_eq!(c.value(), 100.0);
        assert_eq!(c.expected_count(Microliters::new(0.5)), 50.0);
    }

    #[test]
    #[should_panic(expected = "dilution factor must be positive")]
    fn dilution_rejects_zero() {
        let _ = Concentration::new(1.0).diluted(0.0);
    }

    #[test]
    fn volume_particle_count() {
        let n = Microliters::new(0.01).particle_count(Concentration::new(2_000_000.0));
        assert_eq!(n, 20_000.0); // the paper's 20K-cell repeatability threshold
    }

    #[test]
    fn megaohm_conversions() {
        let z = Ohms::from_megaohms(2.5);
        assert_eq!(z.value(), 2.5e6);
        assert_eq!(z.to_megaohms(), 2.5);
    }

    #[test]
    fn pump_volume_delivery() {
        let v = FlowRate::new(0.08).volume_after(Seconds::new(60.0));
        assert!((v.value() - 0.08).abs() < 1e-12);
    }
}
