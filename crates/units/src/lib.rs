//! Physical quantity newtypes used throughout the MedSen reproduction.
//!
//! Every physical formula in the paper mixes length scales (µm channels),
//! volumes (µL samples), flow rates (µL/min), frequencies (kHz–MHz carriers),
//! voltages (V excitation, mV peaks), and impedances (MΩ capacitive regime).
//! Encoding each quantity as a distinct type keeps those formulas
//! dimensionally explicit and prevents the classic unit-mixup bugs.
//!
//! # Examples
//!
//! ```
//! use medsen_units::{Micrometers, FlowRate, Seconds};
//!
//! // How long does a bead take to cross the 45 µm sensing span of an
//! // electrode pair at the paper's measured channel velocity?
//! let span = Micrometers::new(45.0);
//! let velocity = FlowRate::new(0.081).channel_velocity(Micrometers::new(30.0), Micrometers::new(20.0));
//! let transit: Seconds = span.transit_time(velocity);
//! assert!(transit.value() > 0.0);
//! ```

mod quantity;

pub use quantity::*;

/// Declares a `f64`-backed physical quantity newtype.
///
/// Generates constructors, accessors, arithmetic within the quantity
/// (addition, subtraction, scalar multiply/divide, dimensionless ratio),
/// ordering helpers, `Display` with a unit suffix, and serde support.
macro_rules! quantity_type {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw magnitude.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw magnitude in the quantity's canonical unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` when the magnitude is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
            #[inline]
            pub fn lerp(self, other: Self, t: f64) -> Self {
                Self(self.0 + (other.0 - self.0) * t)
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Dimensionless ratio of two quantities of the same kind.
        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }
    };
}

pub(crate) use quantity_type;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_preserve_unit() {
        let a = Micrometers::new(30.0);
        let b = Micrometers::new(15.0);
        assert_eq!((a + b).value(), 45.0);
        assert_eq!((a - b).value(), 15.0);
    }

    #[test]
    fn scalar_multiplication_commutes() {
        let a = Volts::new(0.5);
        assert_eq!((a * 2.0).value(), (2.0 * a).value());
    }

    #[test]
    fn same_kind_division_is_dimensionless() {
        let ratio: f64 = Seconds::new(10.0) / Seconds::new(4.0);
        assert_eq!(ratio, 2.5);
    }

    #[test]
    fn display_includes_unit_suffix() {
        assert_eq!(Hertz::new(450.0).to_string(), "450 Hz");
        assert_eq!(Microliters::new(0.01).to_string(), "0.01 µL");
    }

    #[test]
    fn clamp_and_minmax() {
        let v = Volts::new(5.0);
        assert_eq!(v.clamp(Volts::new(0.0), Volts::new(1.0)).value(), 1.0);
        assert_eq!(v.max(Volts::new(7.0)).value(), 7.0);
        assert_eq!(v.min(Volts::new(2.0)).value(), 2.0);
    }

    #[test]
    fn lerp_midpoint() {
        let a = Seconds::new(0.0);
        let b = Seconds::new(10.0);
        assert_eq!(a.lerp(b, 0.5).value(), 5.0);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Seconds = (1..=4).map(|i| Seconds::new(i as f64)).sum();
        assert_eq!(total.value(), 10.0);
    }

    #[test]
    fn negation() {
        assert_eq!((-Volts::new(1.5)).value(), -1.5);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Micrometers::default(), Micrometers::ZERO);
    }
}
