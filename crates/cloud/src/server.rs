//! The cloud analysis server: the paper's Matlab pipeline.
//!
//! The server receives an encrypted trace and runs the Sec. VI-C pipeline —
//! segmented second-order detrending, then threshold peak detection on the
//! reference (lowest) carrier, then per-carrier feature extraction for every
//! peak. It returns a [`PeakReport`]; it never learns the true cell count.

use crate::api::{AnalyzedPeak, PeakReport};
use medsen_dsp::detrend::{detrend_segmented, DetrendConfig};
use medsen_dsp::features::match_amplitudes;
use medsen_dsp::peaks::ThresholdDetector;
use medsen_dsp::stats::robust_sigma;
use medsen_impedance::SignalTrace;
use serde::{Deserialize, Serialize};

/// The analysis server configuration.
///
/// # Examples
///
/// ```
/// use medsen_cloud::AnalysisServer;
/// use medsen_impedance::{PulseSpec, TraceSynthesizer};
/// use medsen_units::Seconds;
///
/// let mut synth = TraceSynthesizer::paper_default(1);
/// let dip = PulseSpec::unipolar(Seconds::new(0.5), Seconds::new(0.02), 0.01);
/// let trace = synth.render(&[dip], Seconds::new(1.0));
/// let report = AnalysisServer::paper_default().analyze(&trace);
/// assert_eq!(report.peak_count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisServer {
    /// Detrending configuration (paper: segmented order 2 with overlap).
    pub detrend: DetrendConfig,
    /// Peak detector settings.
    pub detector: ThresholdDetector,
    /// Half-width (samples) of the window used to read per-carrier features.
    pub feature_half_window: usize,
    /// Noise adaptation: the effective detection threshold is
    /// `max(detector.threshold, adaptive_sigma_factor × σ̂)` with σ̂ the
    /// robust (MAD) noise estimate of the reference depth signal. Keeps the
    /// false-positive rate bounded when a sensor degrades.
    pub adaptive_sigma_factor: f64,
}

impl AnalysisServer {
    /// The deployed configuration.
    pub fn paper_default() -> Self {
        Self {
            detrend: DetrendConfig::paper_default(),
            detector: ThresholdDetector::paper_default(),
            feature_half_window: 4,
            adaptive_sigma_factor: 5.0,
        }
    }

    /// Runs the full analysis on a trace.
    ///
    /// Peaks are detected on the lowest carrier (strongest response for every
    /// particle class); features are read from every carrier.
    ///
    /// # Panics
    ///
    /// Panics if the trace has no channels.
    pub fn analyze(&self, trace: &SignalTrace) -> PeakReport {
        assert!(
            !trace.channels().is_empty(),
            "cannot analyze a trace without channels"
        );
        let sample_rate = trace.sample_rate.value();

        // Detrend every channel into its depth signal.
        let depths: Vec<Vec<f64>> = trace
            .channels()
            .iter()
            .map(|c| detrend_segmented(&c.samples, &self.detrend))
            .collect();

        // Reference = lowest carrier.
        let reference = trace
            .channels()
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.carrier
                    .value()
                    .partial_cmp(&b.carrier.value())
                    .expect("finite carriers")
            })
            .map(|(i, _)| i)
            .expect("non-empty channels");

        let noise_sigma = robust_sigma(&depths[reference]);
        let mut detector = self.detector;
        detector.threshold = detector
            .threshold
            .max(self.adaptive_sigma_factor * noise_sigma);
        let peaks = detector.detect(&depths[reference], sample_rate);
        let features = match_amplitudes(&depths, &peaks, self.feature_half_window);

        let analyzed = peaks
            .iter()
            .zip(&features)
            .map(|(p, f)| AnalyzedPeak {
                time_s: p.time_s,
                amplitude: p.amplitude,
                width_s: p.width_s,
                features: f.amplitudes.clone(),
            })
            .collect();

        PeakReport {
            peaks: analyzed,
            carriers_hz: trace.channels().iter().map(|c| c.carrier.value()).collect(),
            sample_rate_hz: sample_rate,
            duration_s: trace.duration().value(),
            noise_sigma,
        }
    }
}

impl Default for AnalysisServer {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_impedance::{PulseSpec, TraceSynthesizer};
    use medsen_units::Seconds;

    fn pulses_at(times: &[f64], depth: f64) -> Vec<PulseSpec> {
        times
            .iter()
            .map(|&t| PulseSpec::unipolar(Seconds::new(t), Seconds::new(0.02), depth))
            .collect()
    }

    #[test]
    fn analysis_counts_clean_pulses_exactly() {
        let mut synth = TraceSynthesizer::clean(1);
        let trace = synth.render(&pulses_at(&[0.5, 1.5, 2.5], 0.01), Seconds::new(4.0));
        let report = AnalysisServer::paper_default().analyze(&trace);
        assert_eq!(report.peak_count(), 3);
        assert_eq!(report.carriers_hz.len(), 8);
        assert!((report.duration_s - 4.0).abs() < 0.01);
    }

    #[test]
    fn analysis_counts_noisy_drifting_pulses() {
        let mut synth = TraceSynthesizer::paper_default(2);
        let times: Vec<f64> = (0..20).map(|i| 1.0 + i as f64 * 1.3).collect();
        let trace = synth.render(&pulses_at(&times, 0.01), Seconds::new(30.0));
        let report = AnalysisServer::paper_default().analyze(&trace);
        assert_eq!(
            report.peak_count(),
            20,
            "noise/drift must not break counting"
        );
    }

    #[test]
    fn features_cover_every_carrier() {
        let mut synth = TraceSynthesizer::clean(3);
        let trace = synth.render(&pulses_at(&[0.5], 0.01), Seconds::new(1.0));
        let report = AnalysisServer::paper_default().analyze(&trace);
        assert_eq!(report.peaks[0].features.len(), 8);
        // Uniform pulse → all features equal the reference amplitude.
        let f0 = report.peaks[0].features[0];
        assert!(report.peaks[0]
            .features
            .iter()
            .all(|&f| (f - f0).abs() < 1e-6));
    }

    #[test]
    fn report_times_match_pulse_centres() {
        let mut synth = TraceSynthesizer::clean(4);
        let trace = synth.render(&pulses_at(&[0.7, 2.1], 0.008), Seconds::new(3.0));
        let report = AnalysisServer::paper_default().analyze(&trace);
        assert!((report.peaks[0].time_s - 0.7).abs() < 0.01);
        assert!((report.peaks[1].time_s - 2.1).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "without channels")]
    fn empty_trace_panics() {
        use medsen_units::Hertz;
        let trace = SignalTrace::new(Hertz::new(450.0), vec![]);
        let _ = AnalysisServer::paper_default().analyze(&trace);
    }

    #[test]
    fn sub_noise_pulses_are_not_reported() {
        let mut synth = TraceSynthesizer::paper_default(5);
        let trace = synth.render(&pulses_at(&[0.5], 2.0e-4), Seconds::new(1.0));
        let report = AnalysisServer::paper_default().analyze(&trace);
        assert_eq!(report.peak_count(), 0);
    }
}
