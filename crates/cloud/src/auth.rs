//! Cyto-coded authentication (Sec. V).
//!
//! The server authenticates a user from the statistics of the synthetic
//! beads mixed into the sample: it classifies each peak's multi-frequency
//! feature vector as a bead type (or a blood cell, which is ignored), counts
//! beads per type, and matches the measured signature against the enrolled
//! identifiers within a tolerance band. The signature also doubles as the
//! ciphertext integrity check: a stored record whose recovered identifier no
//! longer matches was swapped or corrupted.

use crate::api::PeakReport;
use medsen_dsp::classify::Classifier;
use medsen_dsp::features::FeatureVector;
use medsen_microfluidics::ParticleKind;
use medsen_wire::{Reader, Wire, WireError, Writer};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A measured or enrolled bead signature: counts per bead type.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BeadSignature {
    counts: BTreeMap<ParticleKind, u64>,
}

impl BeadSignature {
    /// An empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a signature from `(bead type, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a non-bead species is used.
    pub fn from_counts(counts: &[(ParticleKind, u64)]) -> Self {
        let mut sig = Self::new();
        for &(kind, n) in counts {
            sig.set(kind, n);
        }
        sig
    }

    /// Sets the count of one bead type.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a synthetic password bead.
    pub fn set(&mut self, kind: ParticleKind, count: u64) {
        assert!(
            kind.is_password_bead(),
            "`{kind}` cannot appear in a bead signature"
        );
        self.counts.insert(kind, count);
    }

    /// Increments one bead type.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a synthetic password bead.
    pub fn increment(&mut self, kind: ParticleKind) {
        assert!(
            kind.is_password_bead(),
            "`{kind}` cannot appear in a bead signature"
        );
        *self.counts.entry(kind).or_insert(0) += 1;
    }

    /// The count for one bead type (0 if absent).
    pub fn count(&self, kind: ParticleKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total beads across all types.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// All `(kind, count)` pairs in stable order.
    pub fn entries(&self) -> impl Iterator<Item = (ParticleKind, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Whether `measured` matches this enrolled signature within a relative
    /// tolerance per bead type. Bead types enrolled at zero must measure at
    /// most the absolute slack (`max(2, tolerance × 10)` beads of
    /// contamination).
    ///
    /// The comparison is input-independent: every password-bead kind is
    /// always examined and the verdict accumulated without early exit, so
    /// the work done never encodes *which* bead count disagreed. An
    /// earlier version returned on the first mismatching kind — a classic
    /// password-oracle shape the audit battery's timing section measures
    /// and pins (see [`Self::matches_counted`]).
    pub fn matches(&self, measured: &BeadSignature, rel_tolerance: f64) -> bool {
        self.matches_counted(measured, rel_tolerance).0
    }

    /// [`Self::matches`] plus the number of per-kind comparisons executed.
    ///
    /// The count is the deterministic witness the security audit asserts
    /// on: a mismatch at the first bead kind and a mismatch at the last
    /// must report the same op count, which wall-clock measurements on a
    /// noisy CI runner cannot pin reliably.
    pub fn matches_counted(&self, measured: &BeadSignature, rel_tolerance: f64) -> (bool, u32) {
        let slack = (rel_tolerance * 10.0).max(2.0);
        let mut mismatches = 0u32;
        let mut ops = 0u32;
        for kind in ParticleKind::ALL {
            if !kind.is_password_bead() {
                continue;
            }
            ops += 1;
            let enrolled = self.count(kind) as f64;
            let got = measured.count(kind) as f64;
            // Evaluate both arms unconditionally and select arithmetically:
            // no data-dependent branch, no early exit.
            let zero_arm = u32::from(got > slack);
            let nonzero_arm = u32::from((got - enrolled).abs() > rel_tolerance * enrolled);
            let is_zero = u32::from(enrolled == 0.0);
            mismatches += is_zero * zero_arm + (1 - is_zero) * nonzero_arm;
        }
        (mismatches == 0, ops)
    }
}

impl Wire for BeadSignature {
    fn wire_encode(&self, w: &mut Writer) {
        let len = u32::try_from(self.counts.len()).expect("bead-kind count fits u32");
        w.put_u32(len);
        for (&kind, &count) in &self.counts {
            kind.wire_encode(w);
            w.put_u64(count);
        }
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let entries = r.get_count()?;
        let mut counts = BTreeMap::new();
        for _ in 0..entries {
            let kind = ParticleKind::wire_decode(r)?;
            // `set` panics on non-bead species; these bytes cross a trust
            // boundary, so reject instead of asserting.
            if !kind.is_password_bead() {
                return Err(WireError::Invalid("non-bead species in bead signature"));
            }
            counts.insert(kind, r.get_u64()?);
        }
        Ok(Self { counts })
    }
}

/// The server's authentication verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuthDecision {
    /// The measured signature matched exactly one enrolled user.
    Accepted {
        /// The authenticated user.
        user_id: String,
    },
    /// No enrolled signature matched.
    Rejected,
    /// More than one enrolled signature matched — an enrollment collision
    /// (the dictionary was built with too-close concentration levels).
    Ambiguous {
        /// All matching users.
        candidates: Vec<String>,
    },
}

impl Wire for AuthDecision {
    fn wire_encode(&self, w: &mut Writer) {
        match self {
            AuthDecision::Accepted { user_id } => {
                w.put_u8(0);
                user_id.wire_encode(w);
            }
            AuthDecision::Rejected => w.put_u8(1),
            AuthDecision::Ambiguous { candidates } => {
                w.put_u8(2);
                candidates.wire_encode(w);
            }
        }
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(AuthDecision::Accepted {
                user_id: String::wire_decode(r)?,
            }),
            1 => Ok(AuthDecision::Rejected),
            2 => Ok(AuthDecision::Ambiguous {
                candidates: Vec::wire_decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "auth decision",
                tag,
            }),
        }
    }
}

/// Server-side enrollment database + authentication logic.
#[derive(Debug, Clone, Default)]
pub struct AuthService {
    enrolled: BTreeMap<String, BeadSignature>,
    /// Relative per-type count tolerance (default 30 %: Poisson arrival
    /// noise, coincidence losses, and classification slips on a few dozen
    /// beads per type stay inside this band).
    pub tolerance: f64,
}

impl AuthService {
    /// An empty service with the default tolerance.
    pub fn new() -> Self {
        Self {
            enrolled: BTreeMap::new(),
            tolerance: 0.30,
        }
    }

    /// Enrolls (or replaces) a user's expected signature.
    pub fn enroll(&mut self, user_id: impl Into<String>, signature: BeadSignature) {
        self.enrolled.insert(user_id.into(), signature);
    }

    /// Number of enrolled users.
    pub fn enrolled_count(&self) -> usize {
        self.enrolled.len()
    }

    /// All `(identifier, signature)` pairs in identifier order. This is
    /// the snapshot surface for durable storage: deterministic order
    /// makes two snapshots of the same state byte-identical.
    pub fn enrolled_entries(&self) -> impl Iterator<Item = (&str, &BeadSignature)> {
        self.enrolled.iter().map(|(id, sig)| (id.as_str(), sig))
    }

    /// Extracts the measured bead signature from a peak report using the
    /// given particle classifier. Peaks classified as blood cells are
    /// ignored; peaks classified as a bead type count toward that type.
    ///
    /// Measurement never consults the enrollment database; this method is
    /// a convenience wrapper around the free [`measure_signature`] so
    /// callers holding no lock (the sharded service) can measure too.
    pub fn measure_signature(&self, report: &PeakReport, classifier: &Classifier) -> BeadSignature {
        measure_signature(report, classifier)
    }

    /// All enrolled identifiers whose signature matches `measured` within
    /// this service's tolerance, in identifier order. This is the scan a
    /// sharded deployment runs per shard before merging candidates.
    pub fn matching_users(&self, measured: &BeadSignature) -> Vec<String> {
        self.enrolled
            .iter()
            .filter(|(_, sig)| sig.matches(measured, self.tolerance))
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Authenticates a measured signature against the enrollment database.
    pub fn authenticate(&self, measured: &BeadSignature) -> AuthDecision {
        decision_from_candidates(self.matching_users(measured))
    }

    /// The Sec. V integrity check: a stored ciphertext is intact iff the
    /// signature recovered from it still matches the identifier it was
    /// filed under.
    pub fn verify_integrity(&self, user_id: &str, recovered: &BeadSignature) -> bool {
        self.enrolled
            .get(user_id)
            .is_some_and(|sig| sig.matches(recovered, self.tolerance))
    }
}

/// Extracts the measured bead signature from a peak report: classify each
/// peak's feature vector, ignore blood cells, count password beads.
/// Measurement depends only on the report and the classifier — never on
/// enrollment state — so it needs no enrollment-database lock.
pub fn measure_signature(report: &PeakReport, classifier: &Classifier) -> BeadSignature {
    let mut sig = BeadSignature::new();
    for peak in &report.peaks {
        let fv = FeatureVector {
            index: 0,
            amplitudes: peak.features.clone(),
        };
        if let Ok(label) = classifier.predict(&fv) {
            if let Some(kind) = kind_for_label(label) {
                sig.increment(kind);
            }
        }
    }
    sig
}

/// Maps classifier labels to bead kinds. The conventional labels are the
/// particle [`label`]s ("3.58um bead", "7.8um bead").
///
/// [`label`]: ParticleKind::label
fn kind_for_label(label: &str) -> Option<ParticleKind> {
    ParticleKind::ALL
        .into_iter()
        .filter(|k| k.is_password_bead())
        .find(|k| k.label() == label)
}

/// Collapses a set of matching identifiers into the authentication
/// verdict: none → rejected, exactly one → accepted, several → ambiguous
/// (in the given candidate order). Shared by the single-map scan above and
/// the cross-shard candidate merge in [`crate::shard::ShardedAuth`].
pub(crate) fn decision_from_candidates(candidates: Vec<String>) -> AuthDecision {
    match candidates.len() {
        0 => AuthDecision::Rejected,
        1 => AuthDecision::Accepted {
            user_id: candidates.into_iter().next().expect("one candidate"),
        },
        _ => AuthDecision::Ambiguous { candidates },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(b358: u64, b78: u64) -> BeadSignature {
        BeadSignature::from_counts(&[(ParticleKind::Bead358, b358), (ParticleKind::Bead78, b78)])
    }

    #[test]
    fn exact_signature_matches() {
        assert!(sig(100, 50).matches(&sig(100, 50), 0.2));
    }

    #[test]
    fn within_tolerance_matches_outside_rejects() {
        let enrolled = sig(100, 50);
        assert!(enrolled.matches(&sig(115, 45), 0.2));
        assert!(!enrolled.matches(&sig(150, 50), 0.2));
        assert!(!enrolled.matches(&sig(100, 10), 0.2));
    }

    #[test]
    fn zero_enrolled_type_rejects_large_contamination() {
        let enrolled = BeadSignature::from_counts(&[(ParticleKind::Bead358, 100)]);
        let mut clean = BeadSignature::from_counts(&[(ParticleKind::Bead358, 100)]);
        clean.set(ParticleKind::Bead78, 1); // trace contamination: ok
        assert!(enrolled.matches(&clean, 0.2));
        let mut dirty = BeadSignature::from_counts(&[(ParticleKind::Bead358, 100)]);
        dirty.set(ParticleKind::Bead78, 40); // someone else's beads: reject
        assert!(!enrolled.matches(&dirty, 0.2));
    }

    #[test]
    #[should_panic(expected = "cannot appear in a bead signature")]
    fn blood_cells_cannot_be_signature_symbols() {
        let mut s = BeadSignature::new();
        s.set(ParticleKind::RedBloodCell, 10);
    }

    #[test]
    fn compare_op_count_is_mismatch_position_independent() {
        let kinds: Vec<ParticleKind> = ParticleKind::ALL
            .into_iter()
            .filter(|k| k.is_password_bead())
            .collect();
        let enrolled = sig(100, 100);
        // Mismatch at the first kind vs the last kind vs a full match:
        // identical op counts in all three cases.
        let (ok_first, ops_first) = enrolled.matches_counted(&sig(500, 100), 0.2);
        let (ok_last, ops_last) = enrolled.matches_counted(&sig(100, 500), 0.2);
        let (ok_match, ops_match) = enrolled.matches_counted(&sig(100, 100), 0.2);
        assert!(!ok_first && !ok_last && ok_match);
        assert_eq!(ops_first, kinds.len() as u32);
        assert_eq!(ops_first, ops_last);
        assert_eq!(ops_first, ops_match);
    }

    #[test]
    fn authentication_accepts_the_right_user() {
        let mut svc = AuthService::new();
        svc.enroll("alice", sig(100, 20));
        svc.enroll("bob", sig(20, 100));
        assert_eq!(
            svc.authenticate(&sig(95, 22)),
            AuthDecision::Accepted {
                user_id: "alice".into()
            }
        );
        assert_eq!(
            svc.authenticate(&sig(18, 110)),
            AuthDecision::Accepted {
                user_id: "bob".into()
            }
        );
    }

    #[test]
    fn authentication_rejects_unknown_signatures() {
        let mut svc = AuthService::new();
        svc.enroll("alice", sig(100, 20));
        assert_eq!(svc.authenticate(&sig(300, 300)), AuthDecision::Rejected);
    }

    #[test]
    fn too_close_enrollments_are_flagged_ambiguous() {
        // "Keeping concentration levels of two patients too close to each
        // other may confuse MedSen" — the service surfaces this rather than
        // guessing.
        let mut svc = AuthService::new();
        svc.enroll("alice", sig(100, 20));
        svc.enroll("mallory", sig(105, 21));
        match svc.authenticate(&sig(102, 20)) {
            AuthDecision::Ambiguous { candidates } => {
                assert_eq!(candidates.len(), 2);
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn integrity_check_detects_swapped_records() {
        let mut svc = AuthService::new();
        svc.enroll("alice", sig(100, 20));
        assert!(svc.verify_integrity("alice", &sig(98, 21)));
        assert!(!svc.verify_integrity("alice", &sig(20, 100)));
        assert!(!svc.verify_integrity("nobody", &sig(98, 21)));
    }

    #[test]
    fn signature_totals_and_entries() {
        let s = sig(30, 12);
        assert_eq!(s.total(), 42);
        assert_eq!(s.count(ParticleKind::Bead78), 12);
        assert_eq!(s.entries().count(), 2);
    }
}
