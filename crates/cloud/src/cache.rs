//! Content-addressed response cache for the analysis pipeline.
//!
//! DSP analysis is a pure function of the uploaded trace (ROADMAP:
//! "analysis results could be cached by content digest"), so identical
//! trace bytes — a dongle retrying an upload after a flaky link, or a
//! duplicate submission — can skip the whole peak-extraction pipeline.
//! The cache maps a stable FNV-1a digest of the trace's *content* (every
//! sample's bit pattern, carrier layout, components, sample rate) to the
//! [`PeakReport`] it produced, with LRU eviction at a fixed capacity.
//!
//! Only the report is cached. Authentication and record storage always
//! re-run: a cached report must be observationally identical to a fresh
//! analysis, and auth decisions depend on mutable enrollment state.

use crate::api::PeakReport;
use medsen_impedance::SignalTrace;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default number of reports retained by [`CloudService`]'s cache.
///
/// [`CloudService`]: crate::service::CloudService
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

/// Stable 64-bit FNV-1a digest of a trace's analysis-relevant content.
///
/// Folds in the sample rate, per-channel carrier/component, channel and
/// sample counts, and every sample's IEEE-754 bit pattern, so any change
/// that could alter the analysis changes the digest. (Equal digests for
/// different traces are possible in principle — 64-bit hash — but the
/// inputs are physical measurements plus noise, not adversarial bytes,
/// and an attacker gains nothing: the cache only ever returns reports the
/// service itself computed.)
pub fn trace_digest(trace: &SignalTrace) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut fold = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    fold(trace.sample_rate.value().to_bits());
    fold(trace.channels().len() as u64);
    for channel in trace.channels() {
        fold(channel.carrier.value().to_bits());
        fold(channel.component as u64);
        fold(channel.samples.len() as u64);
        for sample in &channel.samples {
            fold(sample.to_bits());
        }
    }
    hash
}

/// Hit/miss counters copied out of a [`ResponseCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh analysis.
    pub misses: u64,
    /// Reports currently retained.
    pub entries: usize,
}

/// Digest → report map with LRU eviction.
struct CacheMap {
    reports: HashMap<u64, PeakReport>,
    /// Digests in recency order, most recent at the back. May hold stale
    /// duplicates for a recently re-touched digest; eviction skips any
    /// digest that re-appears later in the queue.
    recency: VecDeque<u64>,
}

/// A bounded content-addressed LRU of analysis reports.
///
/// Lookups and inserts take one short mutex — the map is touched once per
/// *analysis* request, whose miss path runs a full DSP pipeline, so the
/// lock is never the bottleneck. Hit/miss counters are plain relaxed
/// atomics readable without the lock.
pub struct ResponseCache {
    capacity: usize,
    map: Mutex<CacheMap>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResponseCache")
            .field("capacity", &self.capacity)
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl ResponseCache {
    /// A cache retaining up to `capacity` reports (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            map: Mutex::new(CacheMap {
                reports: HashMap::with_capacity(capacity),
                recency: VecDeque::with_capacity(capacity),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Maximum retained reports.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cached report for `digest`, counting a hit or a miss.
    pub fn lookup(&self, digest: u64) -> Option<PeakReport> {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        match map.reports.get(&digest).cloned() {
            Some(report) => {
                map.recency.push_back(digest);
                drop(map);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => {
                drop(map);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `digest`'s report, evicting the least
    /// recently used entry if the cache is full.
    pub fn insert(&self, digest: u64, report: PeakReport) {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.reports.insert(digest, report);
        map.recency.push_back(digest);
        while map.reports.len() > self.capacity {
            let Some(oldest) = map.recency.pop_front() else {
                break; // unreachable: reports outgrowing recency is a bug
            };
            // A digest re-touched since this queue entry is still live;
            // only evict when this is its most recent appearance.
            if !map.recency.contains(&oldest) {
                map.reports.remove(&oldest);
            }
        }
        // Bound the recency queue's stale duplicates: compact once it is
        // far larger than the live set.
        if map.recency.len() > self.capacity.saturating_mul(4) {
            let mut seen = std::collections::HashSet::new();
            let mut compact: Vec<u64> = map
                .recency
                .iter()
                .rev()
                .filter(|d| map.reports.contains_key(*d) && seen.insert(**d))
                .copied()
                .collect();
            compact.reverse();
            map.recency = compact.into();
        }
    }

    /// Point-in-time hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.map.lock().map(|m| m.reports.len()).unwrap_or_default();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_impedance::{Channel, SignalTrace};
    use medsen_units::Hertz;

    fn trace(samples: &[f64]) -> SignalTrace {
        let mut channel = Channel::new(Hertz::new(5e5));
        channel.samples = samples.to_vec();
        SignalTrace::new(Hertz::new(450.0), vec![channel])
    }

    fn report(peaks: usize) -> PeakReport {
        PeakReport {
            peaks: vec![],
            carriers_hz: vec![5e5; peaks.max(1)],
            sample_rate_hz: 450.0,
            duration_s: peaks as f64,
            noise_sigma: 3.0e-4,
        }
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = trace(&[1.0, 0.99, 1.0]);
        assert_eq!(trace_digest(&a), trace_digest(&a.clone()));
        // Any content change moves the digest.
        assert_ne!(trace_digest(&a), trace_digest(&trace(&[1.0, 0.99, 1.01])));
        assert_ne!(trace_digest(&a), trace_digest(&trace(&[1.0, 0.99])));
        let mut different_rate = a.clone();
        different_rate.sample_rate = Hertz::new(900.0);
        assert_ne!(trace_digest(&a), trace_digest(&different_rate));
        // -0.0 and 0.0 are different bit patterns: content, not value.
        assert_ne!(trace_digest(&trace(&[0.0])), trace_digest(&trace(&[-0.0])));
    }

    #[test]
    fn lookup_miss_then_hit_counts_both() {
        let cache = ResponseCache::new(4);
        let d = trace_digest(&trace(&[1.0]));
        assert!(cache.lookup(d).is_none());
        cache.insert(d, report(2));
        assert_eq!(cache.lookup(d).expect("cached").duration_s, 2.0);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResponseCache::new(2);
        cache.insert(1, report(1));
        cache.insert(2, report(2));
        // Touch 1 so 2 becomes the LRU, then overflow.
        assert!(cache.lookup(1).is_some());
        cache.insert(3, report(3));
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.lookup(1).is_some(), "recently used survives");
        assert!(cache.lookup(2).is_none(), "LRU entry was evicted");
        assert!(cache.lookup(3).is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let cache = ResponseCache::new(2);
        cache.insert(1, report(1));
        cache.insert(1, report(9));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.lookup(1).expect("live").duration_s, 9.0);
        // The stale queue entry for the first insert must not evict the
        // refreshed one.
        cache.insert(2, report(2));
        cache.insert(3, report(3));
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.lookup(3).is_some());
    }

    #[test]
    fn recency_queue_compaction_keeps_the_live_set() {
        let cache = ResponseCache::new(2);
        cache.insert(1, report(1));
        cache.insert(2, report(2));
        // Hammer lookups to grow the recency queue past 4× capacity.
        for _ in 0..50 {
            assert!(cache.lookup(1).is_some());
            assert!(cache.lookup(2).is_some());
        }
        cache.insert(3, report(3)); // triggers compaction
        assert_eq!(cache.stats().entries, 2);
        let live: Vec<bool> = (1..=3).map(|d| cache.lookup(d).is_some()).collect();
        assert_eq!(live.iter().filter(|&&l| l).count(), 2);
        assert!(live[2], "the fresh insert is always live");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let cache = ResponseCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(1, report(1));
        cache.insert(2, report(2));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn concurrent_mixed_traffic_stays_bounded() {
        let cache = std::sync::Arc::new(ResponseCache::new(8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let d = t * 16 + (i % 16);
                        if cache.lookup(d).is_none() {
                            cache.insert(d, report(d as usize));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.entries <= 8);
        assert_eq!(stats.hits + stats.misses, 800);
    }
}
