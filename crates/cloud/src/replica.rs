//! Warm-standby pairing for the cloud tier.
//!
//! [`ReplicatedCloud`] pairs two durable [`CloudService`]s: the primary
//! serves traffic and ships every journaled WAL frame to the standby
//! right after the local append (under the journal's per-shard ship
//! lock, so frames arrive in append order at exact log offsets); the
//! standby appends each frame to its *own* WAL first (write-ahead, so a
//! standby crash loses nothing it acked) and then replays it into its
//! in-memory shards through the same idempotent restore paths recovery
//! uses. Lagging or freshly attached shards catch up via snapshot
//! transfer: a primary-side compaction cuts the shard's snapshot under
//! both shard locks, installs it locally (tmp + fsync + rename), and
//! ships the same blob — re-basing the stream at offset zero of the new
//! log generation.
//!
//! ## Failover and fencing
//!
//! [`ReplicatedCloud::promote`] bumps the standby's epoch; from then on
//! every ship from the old primary is rejected as stale and the old
//! primary fences itself **fail-stop**: the write that discovers the
//! deposition panics before mutating memory (the same fail-closed
//! discipline as a journal write failure), and every later request is
//! refused at the service entry point. Routing ([`ReplicatedCloud::
//! serving`]) never returns a dead or fenced node — the first caller to
//! observe a dead primary promotes the standby, so gateway traffic
//! fails over without losing any acknowledged write: everything acked
//! before the kill was either applied on the standby or covered by a
//! shipped snapshot.
//!
//! The hop between the nodes is in-process, but its cost is accounted
//! against the simulated LTE uplink [`NetworkLink`] (the paper's phone
//! connectivity), so `replica-status` can report what the stream would
//! have cost on the wire without slowing the storm tests to 50 ms per
//! frame.

use crate::persist::ReplicationHook;
use crate::service::CloudService;
use crate::StorageError;
use medsen_phone::NetworkLink;
use medsen_replica::{
    ApplySink, FrameShip, ReplicaError, ShipTransport, Shipper, ShipperStats, SnapshotShip,
    Standby, StandbyStats,
};
use medsen_store::FRAME_OVERHEAD;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Epoch a fresh pair starts serving under.
const INITIAL_EPOCH: u64 = 1;

/// [`ApplySink`] over a warm standby [`CloudService`].
pub struct StandbyApplier {
    service: Arc<CloudService>,
}

impl ApplySink for StandbyApplier {
    fn apply_frame(&self, shard: u32, kind: u8, payload: &[u8]) -> Result<(), String> {
        self.service.apply_replicated_frame(shard, kind, payload)
    }

    fn install_snapshot(&self, shard: u32, blob: &[u8]) -> Result<(), String> {
        self.service.install_replicated_snapshot(shard, blob)
    }
}

/// The primary → standby hop: delivers into the standby state machine
/// in-process, accounts simulated wire time against a [`NetworkLink`],
/// and carries the kill switch the failover battery uses to partition
/// the pair.
pub struct ReplicaLink {
    standby: Arc<Standby<StandbyApplier>>,
    link: NetworkLink,
    down: AtomicBool,
    simulated_transfer_ns: AtomicU64,
}

impl ReplicaLink {
    fn new(standby: Arc<Standby<StandbyApplier>>, link: NetworkLink) -> Self {
        Self {
            standby,
            link,
            down: AtomicBool::new(false),
            simulated_transfer_ns: AtomicU64::new(0),
        }
    }

    fn account(&self, bytes: usize) {
        let seconds = self.link.transfer_time(bytes).value();
        if seconds.is_finite() {
            self.simulated_transfer_ns
                .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
        }
    }

    fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// Whether the pair is partitioned.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Microseconds the shipped stream would have spent on the modeled
    /// wire (latency + serialization per ship).
    pub fn simulated_transfer_us(&self) -> u64 {
        self.simulated_transfer_ns.load(Ordering::Relaxed) / 1_000
    }
}

impl ShipTransport for ReplicaLink {
    fn ship_frame(&self, frame: &FrameShip) -> Result<u64, ReplicaError> {
        if self.is_down() {
            return Err(ReplicaError::LinkDown);
        }
        self.account(frame.payload.len() + FRAME_OVERHEAD);
        self.standby.apply(frame)
    }

    fn ship_snapshot(&self, snap: &SnapshotShip) -> Result<u64, ReplicaError> {
        if self.is_down() {
            return Err(ReplicaError::LinkDown);
        }
        self.account(snap.blob.len());
        self.standby.install(snap)
    }
}

/// The journal-side hook: forwards every append and snapshot install to
/// the shipper. Soft failures (link down, detached shard) are swallowed
/// — the shipper counts them and lag grows until catch-up, which is the
/// warm-standby availability contract. A stale-epoch rejection means
/// this node was deposed: the write fails stop before memory mutates,
/// exactly like a journal write failure.
struct ShipHook {
    shipper: Arc<Shipper<Arc<ReplicaLink>>>,
}

impl ReplicationHook for ShipHook {
    fn frame_appended(
        &self,
        shard: u32,
        kind: u8,
        payload: &[u8],
        start_offset: u64,
        end_offset: u64,
    ) {
        match self
            .shipper
            .ship(shard, kind, payload, start_offset, end_offset)
        {
            Ok(_) | Err(ReplicaError::Detached { .. }) | Err(ReplicaError::LinkDown) => {}
            Err(err @ ReplicaError::StaleEpoch { .. }) => {
                panic!("deposed primary refusing to acknowledge a write (failing stop): {err}")
            }
            // Apply/gap failures detached the shard inside the shipper;
            // the primary keeps serving and the lag metric grows.
            Err(_) => {}
        }
    }

    fn snapshot_installed(&self, shard: u32, blob: &[u8]) {
        if let Err(err @ ReplicaError::StaleEpoch { .. }) =
            self.shipper.ship_snapshot(shard, blob, 0)
        {
            panic!("deposed primary refusing to compact (failing stop): {err}")
        }
    }

    fn is_fenced(&self) -> bool {
        self.shipper.is_fenced()
    }
}

/// One shard's replication cursors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaShardLag {
    /// The shard.
    pub shard: u32,
    /// Stream offset the primary's log has produced through.
    pub produced: u64,
    /// Offset the standby has acked through.
    pub acked: u64,
    /// Whether frames are flowing (false = awaiting snapshot catch-up).
    pub attached: bool,
}

/// Point-in-time view of the whole pair, for metrics and the CLI's
/// `replica-status` subcommand.
#[derive(Debug, Clone)]
pub struct ReplicaStatus {
    /// Serving epoch (the standby's fence — authoritative).
    pub epoch: u64,
    /// Whether the standby has been promoted to serving primary.
    pub promoted: bool,
    /// Whether the original primary has been killed.
    pub primary_down: bool,
    /// Whether the pair is partitioned.
    pub link_down: bool,
    /// Primary-side ship counters.
    pub shipper: ShipperStats,
    /// Standby-side apply counters.
    pub standby: StandbyStats,
    /// Per-shard stream cursors, in shard order.
    pub shards: Vec<ReplicaShardLag>,
    /// Microseconds the stream would have cost on the modeled uplink.
    pub simulated_transfer_us: u64,
}

/// A primary + warm-standby pair of durable [`CloudService`]s. See the
/// module docs for the protocol; construct via
/// [`CloudService::with_replication`].
pub struct ReplicatedCloud {
    primary: Arc<CloudService>,
    standby: Arc<CloudService>,
    shipper: Arc<Shipper<Arc<ReplicaLink>>>,
    standby_ctl: Arc<Standby<StandbyApplier>>,
    link: Arc<ReplicaLink>,
    primary_down: AtomicBool,
    promoted: AtomicBool,
}

impl std::fmt::Debug for ReplicatedCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedCloud")
            .field("epoch", &self.epoch())
            .field("promoted", &self.is_promoted())
            .field("shipper", &self.shipper)
            .finish()
    }
}

impl ReplicatedCloud {
    /// Wires `primary` and `standby` into a replicated pair and ships
    /// the initial base snapshot for every shard (a full compaction
    /// doubles as the base transfer).
    ///
    /// # Errors
    ///
    /// Fails if the base compaction cannot be cut.
    ///
    /// # Panics
    ///
    /// Panics if either service is memory-only or the shard layouts
    /// disagree.
    pub(crate) fn pair(
        primary: CloudService,
        standby: CloudService,
    ) -> Result<Arc<Self>, StorageError> {
        assert!(
            primary.is_durable() && standby.is_durable(),
            "replication pairs durable services; open both with storage"
        );
        assert_eq!(
            primary.shard_count(),
            standby.shard_count(),
            "primary and standby must share a shard layout"
        );
        let shards = primary.shard_count() as u32;
        let primary = Arc::new(primary);
        let standby = Arc::new(standby);
        let standby_ctl = Arc::new(Standby::new(
            StandbyApplier {
                service: Arc::clone(&standby),
            },
            shards,
            INITIAL_EPOCH,
        ));
        let link = Arc::new(ReplicaLink::new(
            Arc::clone(&standby_ctl),
            NetworkLink::lte_uplink(),
        ));
        let shipper = Arc::new(Shipper::new(Arc::clone(&link), shards, INITIAL_EPOCH));
        primary
            .cloud_store()
            .expect("primary checked durable above")
            .attach_replication(Arc::new(ShipHook {
                shipper: Arc::clone(&shipper),
            }));
        let pair = Arc::new(Self {
            primary,
            standby,
            shipper,
            standby_ctl,
            link,
            primary_down: AtomicBool::new(false),
            promoted: AtomicBool::new(false),
        });
        // Base every shard's stream: the compaction snapshot is the
        // initial transfer, attaching all shards at offset zero.
        pair.primary.compact_storage()?;
        debug_assert!(pair.shipper.detached_shards().is_empty());
        Ok(pair)
    }

    /// The original primary node (may be dead or fenced — route through
    /// [`ReplicatedCloud::serving`] instead for live traffic).
    pub fn primary(&self) -> &Arc<CloudService> {
        &self.primary
    }

    /// The standby node (the serving primary after promotion).
    pub fn standby(&self) -> &Arc<CloudService> {
        &self.standby
    }

    /// The pair's serving epoch: the standby's fence, which every ship
    /// must clear.
    pub fn epoch(&self) -> u64 {
        self.standby_ctl.epoch()
    }

    /// Whether the standby has taken over as serving primary.
    pub fn is_promoted(&self) -> bool {
        self.promoted.load(Ordering::SeqCst)
    }

    /// The node requests should route to right now. Never returns a
    /// dead or fenced node: the first caller to observe the primary
    /// down (or deposed) promotes the standby, which is the gateway's
    /// failover-on-error path.
    pub fn serving(&self) -> Arc<CloudService> {
        if !self.is_promoted()
            && (self.primary_down.load(Ordering::SeqCst) || self.shipper.is_fenced())
        {
            self.promote();
        }
        if self.is_promoted() {
            Arc::clone(&self.standby)
        } else {
            Arc::clone(&self.primary)
        }
    }

    /// Models a primary crash: routing stops returning it and the
    /// replication link drops mid-stream.
    pub fn kill_primary(&self) {
        self.primary_down.store(true, Ordering::SeqCst);
        self.link.set_down(true);
    }

    /// Models the old primary coming back after a failover: the
    /// partition heals, but the standby stays promoted — the next write
    /// the resurrected node journals ships under its stale epoch, is
    /// rejected by the standby, and fences the node closed.
    pub fn resurrect_primary(&self) {
        self.link.set_down(false);
        self.primary_down.store(false, Ordering::SeqCst);
    }

    /// Drops only the replication link (the primary keeps serving and
    /// acking): lag grows until [`ReplicatedCloud::heal_link`] and
    /// [`ReplicatedCloud::catch_up`] drain it. This is the
    /// partition-without-failover scenario.
    pub fn partition_link(&self) {
        self.link.set_down(true);
    }

    /// Heals a link dropped by [`ReplicatedCloud::partition_link`].
    pub fn heal_link(&self) {
        self.link.set_down(false);
    }

    /// Promotes the standby to serving primary, bumping the epoch so
    /// ships from the deposed primary fail closed. Idempotent: only the
    /// first promotion bumps.
    pub fn promote(&self) -> u64 {
        if !self.promoted.swap(true, Ordering::SeqCst) {
            self.standby_ctl.promote()
        } else {
            self.standby_ctl.epoch()
        }
    }

    /// Re-bases every detached shard with a snapshot transfer (a
    /// primary-side compaction, which ships its snapshot). No-op when
    /// nothing is detached; meaningless after promotion.
    ///
    /// # Errors
    ///
    /// Fails if a compaction snapshot cannot be cut.
    pub fn catch_up(&self) -> Result<(), StorageError> {
        for shard in self.shipper.detached_shards() {
            self.primary.compact_shard_now(shard as usize)?;
        }
        Ok(())
    }

    /// Point-in-time counters and cursors for the whole pair.
    pub fn status(&self) -> ReplicaStatus {
        let shards = (0..self.shipper.shard_count())
            .map(|shard| {
                let (produced, acked) = self.shipper.offsets(shard);
                ReplicaShardLag {
                    shard,
                    produced,
                    acked,
                    attached: self.shipper.is_attached(shard),
                }
            })
            .collect();
        ReplicaStatus {
            epoch: self.epoch(),
            promoted: self.is_promoted(),
            primary_down: self.primary_down.load(Ordering::SeqCst),
            link_down: self.link.is_down(),
            shipper: self.shipper.stats(),
            standby: self.standby_ctl.stats(),
            shards,
            simulated_transfer_us: self.link.simulated_transfer_us(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PeakReport;
    use crate::auth::BeadSignature;
    use crate::service::{Request, Response};
    use crate::storage::StoredRecord;
    use crate::{FlushPolicy, StorageConfig};
    use medsen_microfluidics::ParticleKind;
    use std::path::PathBuf;

    fn sig(n: u64) -> BeadSignature {
        BeadSignature::from_counts(&[(ParticleKind::Bead358, n)])
    }

    fn record(user: &str) -> StoredRecord {
        StoredRecord {
            user_id: user.into(),
            report: PeakReport {
                peaks: vec![],
                carriers_hz: vec![5e5],
                sample_rate_hz: 450.0,
                duration_s: 1.0,
                noise_sigma: 3.0e-4,
            },
            signature: sig(100),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "medsen-replica-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable(dir: &PathBuf, shards: usize) -> CloudService {
        CloudService::with_storage_config(
            StorageConfig::new(dir).flush(FlushPolicy::EveryWrite),
            shards,
        )
        .expect("open")
    }

    fn pair_in(tag: &str, shards: usize) -> (Arc<ReplicatedCloud>, PathBuf, PathBuf) {
        let primary_dir = temp_dir(&format!("{tag}-p"));
        let standby_dir = temp_dir(&format!("{tag}-s"));
        let pair = durable(&primary_dir, shards)
            .with_replication(durable(&standby_dir, shards))
            .expect("pair");
        (pair, primary_dir, standby_dir)
    }

    #[test]
    fn every_write_reaches_the_standby_as_it_happens() {
        let (pair, pd, sd) = pair_in("mirror", 4);
        let primary = pair.serving();
        assert_eq!(
            primary.handle_shared(Request::Enroll {
                identifier: "alice".into(),
                signature: sig(40),
            }),
            Response::Enrolled
        );
        let id = primary.store().store(record("alice"));
        primary.store().tamper(id, record("mallory"));

        // No failover, no flush: the standby is already warm.
        let standby = pair.standby();
        assert_eq!(standby.store().len(), 1);
        assert_eq!(
            standby.store().fetch(id).expect("mirrored").user_id,
            "mallory"
        );
        assert_eq!(
            standby
                .shard_stats()
                .iter()
                .map(|s| s.enrolled)
                .sum::<usize>(),
            1
        );

        let status = pair.status();
        assert_eq!(status.epoch, 1);
        assert!(!status.promoted);
        assert_eq!(status.shipper.shipped_frames, 3);
        assert_eq!(status.shipper.lag_bytes, 0);
        assert_eq!(status.standby.applied_frames, 3);
        assert!(
            status.simulated_transfer_us > 0,
            "the modeled wire is accounted"
        );
        assert!(status.shards.iter().all(|s| s.attached));
        let _ = std::fs::remove_dir_all(&pd);
        let _ = std::fs::remove_dir_all(&sd);
    }

    #[test]
    fn killing_the_primary_promotes_the_standby_with_history_intact() {
        let (pair, pd, sd) = pair_in("failover", 2);
        let primary = pair.serving();
        primary.handle_shared(Request::Enroll {
            identifier: "alice".into(),
            signature: sig(100),
        });
        let id = primary.store().store(record("alice"));

        pair.kill_primary();
        let serving = pair.serving();
        assert!(pair.is_promoted(), "routing auto-promotes a dead primary");
        assert_eq!(pair.epoch(), 2);
        assert!(
            Arc::ptr_eq(&serving, pair.standby()),
            "the promoted standby serves"
        );
        // Every acknowledged write survives the failover.
        assert_eq!(
            serving.handle_shared(Request::VerifyIntegrity { record_id: id }),
            Response::Integrity { intact: true }
        );
        // And the promoted node keeps journaling its own writes.
        serving.handle_shared(Request::Enroll {
            identifier: "bob".into(),
            signature: sig(80),
        });
        assert_eq!(
            serving
                .shard_stats()
                .iter()
                .map(|s| s.enrolled)
                .sum::<usize>(),
            2
        );
        let _ = std::fs::remove_dir_all(&pd);
        let _ = std::fs::remove_dir_all(&sd);
    }

    #[test]
    fn resurrected_old_primary_fails_closed() {
        let (pair, pd, sd) = pair_in("fence", 2);
        let old_primary = Arc::clone(pair.primary());
        old_primary.handle_shared(Request::Enroll {
            identifier: "alice".into(),
            signature: sig(40),
        });
        pair.kill_primary();
        pair.serving(); // promotes
        pair.resurrect_primary();

        // The resurrected node's first journaled write ships under the
        // stale epoch, is rejected by the standby, and fails stop.
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            old_primary.handle_shared(Request::Enroll {
                identifier: "late".into(),
                signature: sig(90),
            })
        }));
        assert!(attempt.is_err(), "a deposed write must not be acknowledged");
        assert!(old_primary.is_fenced());
        // From then on every request is refused at the entry point,
        // reads included.
        for request in [
            Request::Ping,
            Request::VerifyIntegrity {
                record_id: crate::storage::RecordId(0),
            },
        ] {
            assert!(matches!(
                old_primary.handle_shared(request),
                Response::Error { .. }
            ));
        }
        // The deposed write never reached memory, and never reached the
        // standby.
        let status = pair.status();
        assert!(status.standby.stale_rejected >= 1);
        assert_eq!(
            pair.serving()
                .shard_stats()
                .iter()
                .map(|s| s.enrolled)
                .sum::<usize>(),
            1,
            "only the pre-failover enrollment exists"
        );
        // Routing still never returns the fenced node.
        assert!(Arc::ptr_eq(&pair.serving(), pair.standby()));
        let _ = std::fs::remove_dir_all(&pd);
        let _ = std::fs::remove_dir_all(&sd);
    }

    #[test]
    fn partition_grows_lag_and_snapshot_catch_up_drains_it() {
        let (pair, pd, sd) = pair_in("catchup", 2);
        let primary = pair.serving();
        primary.handle_shared(Request::Enroll {
            identifier: "alice".into(),
            signature: sig(40),
        });
        // Partition without killing: the primary keeps serving, lag grows.
        pair.link.set_down(true);
        primary.store().store(record("alice"));
        primary.store().store(record("alice"));
        let status = pair.status();
        assert!(
            status.shipper.lag_bytes > 0,
            "unshipped bytes are visible as lag"
        );
        assert!(status.shards.iter().any(|s| !s.attached));

        // Heal and catch up: one snapshot transfer per detached shard.
        pair.link.set_down(false);
        pair.catch_up().expect("catch up");
        let status = pair.status();
        assert_eq!(status.shipper.lag_bytes, 0);
        assert!(status.shards.iter().all(|s| s.attached));
        assert!(
            status.standby.snapshots_installed > 2,
            "base + catch-up snapshots"
        );
        assert_eq!(pair.standby().store().len(), 2);
        // The stream resumes frame-by-frame after the re-base.
        primary.store().store(record("alice"));
        assert_eq!(pair.standby().store().len(), 3);
        let _ = std::fs::remove_dir_all(&pd);
        let _ = std::fs::remove_dir_all(&sd);
    }

    #[test]
    fn primary_compaction_rebases_the_stream_transparently() {
        let (pair, pd, sd) = pair_in("compact", 1);
        let primary = pair.serving();
        for _ in 0..5 {
            primary.store().store(record("alice"));
        }
        primary.compact_storage().expect("compact");
        // The compaction shipped its snapshot; frames flow at the new
        // generation's offsets.
        primary.store().store(record("alice"));
        assert_eq!(pair.standby().store().len(), 6);
        let status = pair.status();
        assert_eq!(status.shipper.lag_bytes, 0);
        assert!(status.shards[0].attached);
        let _ = std::fs::remove_dir_all(&pd);
        let _ = std::fs::remove_dir_all(&sd);
    }

    #[test]
    #[should_panic(expected = "share a shard layout")]
    fn mismatched_layouts_are_refused() {
        let pd = temp_dir("layout-p");
        let sd = temp_dir("layout-s");
        let _ = durable(&pd, 4).with_replication(durable(&sd, 2));
    }

    #[test]
    #[should_panic(expected = "durable services")]
    fn memory_only_nodes_are_refused() {
        let sd = temp_dir("memonly-s");
        let _ = CloudService::with_shards(2).with_replication(durable(&sd, 2));
    }
}
