//! Durable persistence for the cloud tier: the typed entry codec over
//! `medsen-store`'s opaque per-shard WAL, recovery replay, and snapshot
//! compaction.
//!
//! ## Division of labor
//!
//! `medsen-store` knows nothing about enrollments or records — it
//! journals `(kind: u8, payload: bytes)` frames and opaque snapshot
//! blobs, stamped with the shard layout. This module owns the *meaning*
//! of those bytes: [`WalEntry`] is the typed log entry (JSON-encoded
//! with the same `medsen-phone` codec the wire uses), [`ShardSnapshot`]
//! the compaction image, and [`open_storage`] the replay that rebuilds a
//! [`ShardedAuth`] + [`RecordStore`] pair from disk.
//!
//! ## Fail-stop writes
//!
//! The journal hooks ([`RecordJournal`] / [`EnrollJournal`] impls on
//! [`CloudStore`]) panic if an append cannot be written. That is
//! deliberate: they run *before* the in-memory mutation, under the
//! shard's write lock, so panicking leaves memory and disk consistent —
//! whereas returning an error the caller cannot surface would let the
//! service acknowledge a medical record that evaporates on restart.
//!
//! ## Replay idempotence
//!
//! Recovery applies the snapshot, then every log frame, via restore
//! paths that are idempotent by construction: records land under their
//! explicit [`RecordId`] (re-inserting is a no-op overwrite with the
//! same bytes), enrollments are last-wins, and sequence allocators are
//! `fetch_max`ed past every restored id. This is what makes the
//! compactor's crash window safe — a crash after the snapshot renames
//! but before the log resets replays both, and converges to the same
//! state.

use crate::auth::BeadSignature;
use crate::shard::{shard_index, EnrollJournal, ShardedAuth, MAX_SHARDS};
use crate::storage::{RecordId, RecordJournal, RecordStore, StoredRecord};
use medsen_store::{FlushPolicy, Wal, WalError, WalStats};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Frame kind for an enrollment entry.
const KIND_ENROLL: u8 = 1;
/// Frame kind for a new stored record.
const KIND_STORE: u8 = 2;
/// Frame kind for an in-place record overwrite.
const KIND_TAMPER: u8 = 3;

/// One typed write-ahead log entry. Public so the fault-injection tests
/// can craft adversarial logs through the raw `medsen-store` API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalEntry {
    /// An identifier was enrolled (or re-enrolled, last-wins).
    Enroll {
        /// The enrolled identifier.
        identifier: String,
        /// Its expected bead signature.
        signature: BeadSignature,
    },
    /// A record was stored under a freshly minted id.
    Store {
        /// The minted id.
        id: RecordId,
        /// The stored record.
        record: StoredRecord,
    },
    /// A record was overwritten in place (insider-tampering model).
    Tamper {
        /// The overwritten id.
        id: RecordId,
        /// The replacement record.
        record: StoredRecord,
    },
}

impl WalEntry {
    /// The frame kind byte this entry is written under.
    pub fn kind(&self) -> u8 {
        match self {
            WalEntry::Enroll { .. } => KIND_ENROLL,
            WalEntry::Store { .. } => KIND_STORE,
            WalEntry::Tamper { .. } => KIND_TAMPER,
        }
    }
}

/// One enrollment in a compaction snapshot.
///
/// Named struct rather than a tuple: the vendored serde stubs (and the
/// on-disk format's readability) favor field names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SnapshotEnrollment {
    identifier: String,
    signature: BeadSignature,
}

/// One stored record in a compaction snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SnapshotRecord {
    id: RecordId,
    record: StoredRecord,
}

/// A shard's full state at compaction time. Enrollments iterate in
/// identifier order and records are sorted by id, so two snapshots of
/// the same state are byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct ShardSnapshot {
    enrolled: Vec<SnapshotEnrollment>,
    records: Vec<SnapshotRecord>,
}

/// Errors opening or replaying durable storage.
#[derive(Debug)]
pub enum StorageError {
    /// The underlying WAL failed (IO, corrupt header, layout stamp).
    Wal(WalError),
    /// A frame or snapshot passed its checksum but does not decode as a
    /// known entry — a format version skew, not a crash artifact.
    Corrupt {
        /// The shard whose state is undecodable.
        shard: u32,
        /// What failed to decode.
        detail: String,
    },
    /// A replayed entry carries an id or identifier that does not belong
    /// to the shard/layout it was logged under. The log is internally
    /// inconsistent; replaying it would scatter state across the wrong
    /// shards.
    Layout {
        /// The shard being replayed.
        shard: u32,
        /// The inconsistency found.
        detail: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Wal(err) => write!(f, "{err}"),
            StorageError::Corrupt { shard, detail } => {
                write!(f, "shard {shard} storage is undecodable: {detail}")
            }
            StorageError::Layout { shard, detail } => {
                write!(f, "shard {shard} log is layout-inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Wal(err) => Some(err),
            _ => None,
        }
    }
}

impl From<WalError> for StorageError {
    fn from(err: WalError) -> Self {
        StorageError::Wal(err)
    }
}

/// Durable-storage configuration for [`crate::CloudService`].
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Directory holding the per-shard log and snapshot files.
    pub dir: PathBuf,
    /// When appended frames are fsynced (group commit).
    pub flush: FlushPolicy,
    /// Appends per shard between compaction snapshots; `0` disables
    /// automatic compaction (the log grows until an explicit
    /// [`crate::CloudService::compact_storage`]).
    pub snapshot_every: u64,
}

impl StorageConfig {
    /// Defaults: safest flush policy, snapshot every 256 appends/shard.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            flush: FlushPolicy::default(),
            snapshot_every: 256,
        }
    }

    /// Replaces the flush policy.
    pub fn flush(mut self, flush: FlushPolicy) -> Self {
        self.flush = flush;
        self
    }

    /// Replaces the compaction threshold.
    pub fn snapshot_every(mut self, snapshot_every: u64) -> Self {
        self.snapshot_every = snapshot_every;
        self
    }
}

/// Hook the replication layer installs on the journal. Called *after*
/// the local WAL append / snapshot install, inside a per-shard ship
/// lock, so implementations observe every shard's frames in exact
/// append order with offsets taken from the same log generation.
/// Implementations must not call back into the owning service — they
/// run under its shard locks.
pub(crate) trait ReplicationHook: Send + Sync {
    /// A frame spanning `start_offset..end_offset` of `shard`'s current
    /// log generation was just appended locally.
    fn frame_appended(
        &self,
        shard: u32,
        kind: u8,
        payload: &[u8],
        start_offset: u64,
        end_offset: u64,
    );
    /// `shard`'s snapshot was just installed, resetting its log
    /// generation (the stream re-bases at offset zero).
    fn snapshot_installed(&self, shard: u32, blob: &[u8]);
    /// Whether a higher epoch has deposed this node. A fenced node must
    /// stop serving (checked at the service's request entry point).
    fn is_fenced(&self) -> bool;
}

/// Replication state attached to a [`CloudStore`]: the hook plus one
/// ship lock per shard. The enroll path (auth shard lock) and the store
/// path (record shard lock) can append to the *same WAL shard*
/// concurrently under different locks, so the ship lock is what
/// guarantees the hook sees frames in append order.
struct ReplicationState {
    hook: Arc<dyn ReplicationHook>,
    ship_locks: Vec<Mutex<()>>,
}

impl std::fmt::Debug for ReplicationState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationState")
            .field("shards", &self.ship_locks.len())
            .finish()
    }
}

/// The cloud tier's handle on its WAL set: implements both journal
/// traits (so it can be attached to [`ShardedAuth`] and [`RecordStore`])
/// and tracks per-shard append counts for the compaction trigger.
#[derive(Debug)]
pub struct CloudStore {
    wal: Wal,
    appends_since_snapshot: Vec<AtomicU64>,
    replication: OnceLock<ReplicationState>,
}

impl CloudStore {
    /// Appends a typed entry to `shard`'s log, notifying the replication
    /// hook (if attached) under the shard's ship lock.
    ///
    /// # Panics
    ///
    /// Panics if the entry cannot be encoded or the append fails — see
    /// the module docs on fail-stop writes.
    fn append(&self, shard: u32, entry: &WalEntry) {
        let json = medsen_phone::to_json(entry)
            .unwrap_or_else(|e| panic!("WAL entry failed to encode: {e}"));
        let _ship_guard = self.replication.get().map(|r| {
            r.ship_locks[shard as usize]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
        });
        let frame = self
            .wal
            .append(shard, entry.kind(), json.as_bytes())
            .unwrap_or_else(|e| {
                panic!("cannot journal to shard {shard}'s WAL (failing stop): {e}")
            });
        self.appends_since_snapshot[shard as usize].fetch_add(1, Ordering::Relaxed);
        if let Some(rep) = self.replication.get() {
            let started = std::time::Instant::now();
            rep.hook.frame_appended(
                shard,
                entry.kind(),
                json.as_bytes(),
                frame.start_offset,
                frame.end_offset,
            );
            medsen_telemetry::record_since(medsen_telemetry::Stage::Replication, shard, started);
        }
    }

    /// Attaches the replication hook. May be called at most once, before
    /// the pair takes traffic.
    ///
    /// # Panics
    ///
    /// Panics on a second attach — two shippers racing one log would
    /// interleave their streams.
    pub(crate) fn attach_replication(&self, hook: Arc<dyn ReplicationHook>) {
        let shards = self.appends_since_snapshot.len();
        let state = ReplicationState {
            hook,
            ship_locks: (0..shards).map(|_| Mutex::new(())).collect(),
        };
        if self.replication.set(state).is_err() {
            panic!("replication hook already attached to this store");
        }
    }

    /// Whether the attached replication hook reports this node deposed.
    pub(crate) fn is_fenced(&self) -> bool {
        self.replication.get().is_some_and(|r| r.hook.is_fenced())
    }

    /// Appends an already-encoded replicated frame to `shard`'s log —
    /// the standby's write-ahead step. Bypasses the replication hook
    /// (the standby does not re-ship) but still feeds the compaction
    /// counter, so a promoted standby compacts on the usual cadence.
    pub(crate) fn append_replicated(
        &self,
        shard: u32,
        kind: u8,
        payload: &[u8],
    ) -> Result<(), String> {
        self.wal
            .append(shard, kind, payload)
            .map_err(|e| format!("standby WAL append failed: {e}"))?;
        self.appends_since_snapshot[shard as usize].fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Installs a replicated snapshot blob durably (tmp + fsync + rename
    /// via the store crate) and resets `shard`'s log generation — the
    /// standby's half of a snapshot catch-up.
    pub(crate) fn install_replicated_snapshot(
        &self,
        shard: u32,
        blob: &[u8],
    ) -> Result<(), String> {
        self.wal
            .install_snapshot(shard, blob)
            .map_err(|e| format!("standby snapshot install failed: {e}"))?;
        self.appends_since_snapshot[shard as usize].store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Appends on a shard since its last compaction snapshot.
    pub(crate) fn appends_since_snapshot(&self, shard: usize) -> u64 {
        self.appends_since_snapshot[shard].load(Ordering::Relaxed)
    }

    /// Forces all shards' unsynced appends to disk; returns fsyncs
    /// issued.
    ///
    /// # Panics
    ///
    /// Panics if the flush fails (fail-stop, as for appends).
    pub(crate) fn flush(&self) -> u64 {
        self.wal
            .flush()
            .unwrap_or_else(|e| panic!("cannot flush WAL (failing stop): {e}"))
    }

    /// Cumulative WAL counters.
    pub(crate) fn stats(&self) -> WalStats {
        self.wal.stats()
    }
}

impl EnrollJournal for CloudStore {
    fn enrolled(&self, shard: usize, user_id: &str, signature: &BeadSignature) {
        self.append(
            shard as u32,
            &WalEntry::Enroll {
                identifier: user_id.to_string(),
                signature: signature.clone(),
            },
        );
    }
}

impl RecordJournal for CloudStore {
    fn record_stored(&self, id: RecordId, record: &StoredRecord) {
        self.append(
            id.shard() as u32,
            &WalEntry::Store {
                id,
                record: record.clone(),
            },
        );
    }

    fn record_tampered(&self, id: RecordId, record: &StoredRecord) {
        self.append(
            id.shard() as u32,
            &WalEntry::Tamper {
                id,
                record: record.clone(),
            },
        );
    }
}

/// Applies one recovered entry to the in-memory state through the
/// journal-bypassing restore paths, validating that it belongs on
/// `shard` under this layout. Idempotent (restore-by-id, last-wins), so
/// recovery replay and the standby's replicated-frame apply both use it.
pub(crate) fn replay_entry(
    auth: &ShardedAuth,
    store: &RecordStore,
    shard: u32,
    shard_count: usize,
    entry: WalEntry,
) -> Result<(), StorageError> {
    match entry {
        WalEntry::Enroll {
            identifier,
            signature,
        } => {
            let expected = shard_index(&identifier, shard_count);
            if expected != shard as usize {
                return Err(StorageError::Layout {
                    shard,
                    detail: format!(
                        "identifier {identifier:?} routes to shard {expected} under this layout"
                    ),
                });
            }
            auth.restore_enroll(expected, identifier, signature);
        }
        WalEntry::Store { id, record } | WalEntry::Tamper { id, record } => {
            // The RecordId's own layout encoding is the second line of
            // defense behind the file-header stamp: an id minted under a
            // different shard count (or filed on the wrong shard's log)
            // is refused even if the header was forged or rewritten.
            if id.shard_count() != shard_count || id.shard() != shard as usize {
                return Err(StorageError::Layout {
                    shard,
                    detail: format!(
                        "{id:?} encodes shard {}/{} but was logged on shard {shard} of \
                         a {shard_count}-shard layout",
                        id.shard(),
                        id.shard_count()
                    ),
                });
            }
            store.restore(id, record);
        }
    }
    Ok(())
}

/// Decodes a [`ShardSnapshot`] blob and replays it into the in-memory
/// state through the same idempotent restore paths as log frames.
///
/// Used at recovery (the on-disk snapshot) and by the standby when a
/// snapshot catch-up arrives over the replication stream. The entries
/// overwrite last-wins by identifier/id and nothing in the system ever
/// deletes, so replaying a newer snapshot over older standby state
/// converges to exactly the primary's state at snapshot time.
pub(crate) fn replay_snapshot_blob(
    auth: &ShardedAuth,
    store: &RecordStore,
    shard: u32,
    shard_count: usize,
    bytes: &[u8],
) -> Result<(), StorageError> {
    let json = std::str::from_utf8(bytes).map_err(|_| StorageError::Corrupt {
        shard,
        detail: "snapshot is not UTF-8".into(),
    })?;
    let snapshot: ShardSnapshot =
        medsen_phone::from_json(json).map_err(|e| StorageError::Corrupt {
            shard,
            detail: format!("snapshot does not decode: {e}"),
        })?;
    for enrollment in snapshot.enrolled {
        replay_entry(
            auth,
            store,
            shard,
            shard_count,
            WalEntry::Enroll {
                identifier: enrollment.identifier,
                signature: enrollment.signature,
            },
        )?;
    }
    for snap_record in snapshot.records {
        replay_entry(
            auth,
            store,
            shard,
            shard_count,
            WalEntry::Store {
                id: snap_record.id,
                record: snap_record.record,
            },
        )?;
    }
    Ok(())
}

/// Opens (or creates) durable storage under `config.dir` for a
/// `shard_count`-way layout, replays it, and returns the recovered
/// state plus the journal handle — with the journal *already attached*,
/// so no mutation can slip through unlogged between open and wire-up.
pub(crate) fn open_storage(
    config: &StorageConfig,
    shard_count: usize,
) -> Result<(ShardedAuth, RecordStore, Arc<CloudStore>), StorageError> {
    assert!(
        (1..=MAX_SHARDS).contains(&shard_count),
        "shard count {shard_count} outside 1..={MAX_SHARDS}"
    );
    let (wal, recoveries) = Wal::open(&config.dir, shard_count as u32, config.flush)?;

    let mut auth = ShardedAuth::new(shard_count);
    let mut store = RecordStore::with_shards(shard_count);

    for recovery in recoveries {
        let shard = recovery.shard;
        if let Some(bytes) = &recovery.snapshot {
            replay_snapshot_blob(&auth, &store, shard, shard_count, bytes)?;
        }
        for frame in recovery.frames {
            let json = std::str::from_utf8(&frame.payload).map_err(|_| StorageError::Corrupt {
                shard,
                detail: "log entry is not UTF-8".into(),
            })?;
            let entry: WalEntry =
                medsen_phone::from_json(json).map_err(|e| StorageError::Corrupt {
                    shard,
                    detail: format!("log entry does not decode: {e}"),
                })?;
            if entry.kind() != frame.kind {
                return Err(StorageError::Corrupt {
                    shard,
                    detail: format!(
                        "frame kind {} disagrees with its payload ({})",
                        frame.kind,
                        entry.kind()
                    ),
                });
            }
            replay_entry(&auth, &store, shard, shard_count, entry)?;
        }
    }

    let cloud_store = Arc::new(CloudStore {
        wal,
        appends_since_snapshot: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
        replication: OnceLock::new(),
    });
    auth.set_journal(cloud_store.clone());
    store.set_journal(cloud_store.clone());
    Ok((auth, store, cloud_store))
}

/// Snapshots one shard's full state and resets its log.
///
/// Takes the shard's auth lock then its records lock — the only place in
/// the system that ever holds both. Regular writers hold at most one
/// shard lock at a time, so this fixed order cannot deadlock, and
/// holding both guarantees no journaled-but-unapplied entry exists while
/// the snapshot is cut (journal hooks run inside those same locks).
pub(crate) fn compact_shard(
    auth: &ShardedAuth,
    store: &RecordStore,
    cloud_store: &CloudStore,
    shard: usize,
) -> Result<(), StorageError> {
    let auth_guard = auth.write_shard(shard);
    let records_guard = store.write_shard(shard);

    let enrolled = auth_guard
        .enrolled_entries()
        .map(|(identifier, signature)| SnapshotEnrollment {
            identifier: identifier.to_string(),
            signature: signature.clone(),
        })
        .collect();
    let mut records: Vec<SnapshotRecord> = records_guard
        .iter()
        .map(|(&id, record)| SnapshotRecord {
            id,
            record: record.clone(),
        })
        .collect();
    records.sort_by_key(|r| r.id);
    let snapshot = ShardSnapshot { enrolled, records };

    let json = medsen_phone::to_json(&snapshot).map_err(|e| StorageError::Corrupt {
        shard: shard as u32,
        detail: format!("snapshot failed to encode: {e}"),
    })?;
    cloud_store
        .wal
        .install_snapshot(shard as u32, json.as_bytes())?;
    cloud_store.appends_since_snapshot[shard].store(0, Ordering::Relaxed);
    // Compaction reset the shard's log generation, so the replication
    // stream re-bases at offset zero: ship the same snapshot blob to the
    // standby. The dual shard locks keep appends out; the ship lock keeps
    // this ordered against the hook's view of other ships.
    if let Some(rep) = cloud_store.replication.get() {
        let _ship_guard = rep.ship_locks[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        rep.hook.snapshot_installed(shard as u32, json.as_bytes());
    }
    Ok(())
}

/// Stable path of `shard`'s log file under `dir` — the layout contract
/// the fault-injection tests corrupt files through.
pub fn log_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("wal-{shard:03}.log"))
}

/// Stable path of `shard`'s snapshot file under `dir`.
pub fn snapshot_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("snap-{shard:03}.bin"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PeakReport;
    use medsen_microfluidics::ParticleKind;

    fn sig(n: u64) -> BeadSignature {
        BeadSignature::from_counts(&[(ParticleKind::Bead358, n)])
    }

    fn record(user: &str) -> StoredRecord {
        StoredRecord {
            user_id: user.into(),
            report: PeakReport {
                peaks: vec![],
                carriers_hz: vec![5e5],
                sample_rate_hz: 450.0,
                duration_s: 1.0,
                noise_sigma: 3.0e-4,
            },
            signature: sig(100),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "medsen-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn wal_entry_json_round_trips() {
        for entry in [
            WalEntry::Enroll {
                identifier: "alice".into(),
                signature: sig(40),
            },
            WalEntry::Store {
                id: RecordId::compose(3, 8, 17),
                record: record("alice"),
            },
            WalEntry::Tamper {
                id: RecordId::compose(0, 1, 0),
                record: record("mallory"),
            },
        ] {
            let json = medsen_phone::to_json(&entry).expect("encodes");
            let back: WalEntry = medsen_phone::from_json(&json).expect("decodes");
            assert_eq!(back, entry);
        }
    }

    #[test]
    fn open_mutate_reopen_round_trips() {
        let dir = temp_dir("roundtrip");
        let config = StorageConfig::new(&dir);
        {
            let (auth, store, _cs) = open_storage(&config, 4).expect("open");
            auth.enroll("alice", sig(40));
            auth.enroll("bob", sig(80));
            let id = store.store(record("alice"));
            store.tamper(id, record("mallory"));
        }
        let (auth, store, cs) = open_storage(&config, 4).expect("reopen");
        assert_eq!(auth.enrolled_count(), 2);
        assert!(auth.verify_integrity("bob", &sig(80)));
        assert_eq!(store.len(), 1);
        let ids = store.records_of("mallory");
        assert_eq!(ids.len(), 1, "tamper must survive replay");
        assert_eq!(cs.stats().recovered_entries, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_resets_logs_and_preserves_state() {
        let dir = temp_dir("compact");
        let config = StorageConfig::new(&dir);
        {
            let (auth, store, cs) = open_storage(&config, 2).expect("open");
            auth.enroll("alice", sig(40));
            for _ in 0..5 {
                store.store(record("alice"));
            }
            for shard in 0..2 {
                compact_shard(&auth, &store, &cs, shard).expect("compact");
                assert_eq!(cs.appends_since_snapshot(shard), 0);
            }
            // Post-compaction appends land in the fresh log.
            store.store(record("alice"));
        }
        let (auth, store, cs) = open_storage(&config, 2).expect("reopen");
        assert_eq!(auth.enrolled_count(), 1);
        assert_eq!(store.len(), 6);
        let stats = cs.stats();
        assert_eq!(stats.recovered_snapshots, 2);
        assert_eq!(
            stats.recovered_entries, 1,
            "only the post-compaction append should be in the logs"
        );
        // New ids keep advancing past everything recovered.
        let next = store.store(record("alice"));
        let all = store.records_of("alice");
        assert_eq!(all.len(), 7);
        assert_eq!(all.last(), Some(&next));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_under_a_different_layout_is_refused() {
        let dir = temp_dir("layout");
        let config = StorageConfig::new(&dir);
        {
            let (auth, _store, _cs) = open_storage(&config, 4).expect("open");
            auth.enroll("alice", sig(40));
        }
        match open_storage(&config, 2) {
            Err(StorageError::Wal(WalError::LayoutMismatch {
                expected, found, ..
            })) => {
                assert_eq!(expected, 2);
                assert_eq!(found, 4);
            }
            Err(other) => panic!("expected a layout mismatch, got {other}"),
            Ok(_) => panic!("expected a layout mismatch, got success"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_level_layout_skew_is_refused_even_with_a_valid_header() {
        // Forge a log whose header claims a 2-shard layout but whose
        // entry carries an id minted under 8 shards: the RecordId's own
        // encoding must refuse the replay.
        let dir = temp_dir("skew");
        {
            let (wal, _) = Wal::open(&dir, 2, FlushPolicy::EveryWrite).expect("open raw");
            let entry = WalEntry::Store {
                id: RecordId::compose(0, 8, 0),
                record: record("alice"),
            };
            let json = medsen_phone::to_json(&entry).expect("encodes");
            wal.append(0, entry.kind(), json.as_bytes())
                .expect("append");
        }
        match open_storage(&StorageConfig::new(&dir), 2) {
            Err(StorageError::Layout { shard, detail }) => {
                assert_eq!(shard, 0);
                assert!(
                    detail.contains("8-shard") || detail.contains("shard 0/8"),
                    "{detail}"
                );
            }
            Err(other) => panic!("expected a layout error, got {other}"),
            Ok(_) => panic!("expected a layout error, got success"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
