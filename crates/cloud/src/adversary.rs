//! Curious-but-honest adversary models (Sec. IV-A's security analysis).
//!
//! The paper argues the cipher defeats three concrete count-recovery
//! strategies an eavesdropper with domain knowledge would try:
//!
//! 1. **Amplitude signatures** — "each cell has a specific signature in terms
//!    of voltage drop ... the attacker would try to detect consecutive peaks
//!    of the exact same amplitude and then infer the number of electrodes
//!    on". Defeated by the random per-electrode gains `G(t)`.
//! 2. **Width signatures** — "an attacker could try to recognize peaks that
//!    correspond to a single cell by observing the width of the curve".
//!    Defeated by the random flow speed `S(t)`.
//! 3. **Burst clustering** — Sec. VII-A's admitted limitation: at low cell
//!    density "there is a long delay between groups of peaks corresponding
//!    to a specific cell", so temporal gaps alone cluster per-cell groups.
//!    Mitigated by electrode-pattern spacing and defeated by realistic cell
//!    densities, where bursts overlap.
//!
//! Each attack consumes only a [`PeakReport`] — exactly what the honest
//! protocol already hands the cloud.

use crate::api::PeakReport;
use crate::auth::BeadSignature;
use medsen_audit::SequentialDistinguisher;
use medsen_microfluidics::ParticleKind;
use serde::{Deserialize, Serialize};

/// The result of one attack run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// The adversary's estimate of the true cell count.
    pub estimated_cells: usize,
    /// Number of peak groups the attack formed.
    pub groups: usize,
    /// Total peaks observed.
    pub peaks: usize,
}

impl AttackOutcome {
    /// |estimate − truth| / truth (∞-safe: 0 truth with 0 estimate is 0).
    pub fn relative_error(&self, true_cells: usize) -> f64 {
        if true_cells == 0 {
            if self.estimated_cells == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.estimated_cells as f64 - true_cells as f64).abs() / true_cells as f64
        }
    }
}

/// Which peak characteristic a grouping attack keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupFeature {
    Amplitude,
    Width,
    TimeOnly,
}

fn run_grouping(
    report: &PeakReport,
    feature: GroupFeature,
    rel_tolerance: f64,
    max_gap_s: f64,
) -> AttackOutcome {
    let peaks = &report.peaks;
    if peaks.is_empty() {
        return AttackOutcome {
            estimated_cells: 0,
            groups: 0,
            peaks: 0,
        };
    }
    let value = |i: usize| match feature {
        GroupFeature::Amplitude => peaks[i].amplitude,
        GroupFeature::Width => peaks[i].width_s,
        GroupFeature::TimeOnly => 0.0,
    };
    let mut groups = 1usize;
    let mut anchor = value(0);
    for i in 1..peaks.len() {
        let gap = peaks[i].time_s - peaks[i - 1].time_s;
        let similar = match feature {
            GroupFeature::TimeOnly => true,
            _ => {
                let v = value(i);
                let scale = anchor.abs().max(1e-12);
                (v - anchor).abs() <= rel_tolerance * scale
            }
        };
        if gap > max_gap_s || !similar {
            groups += 1;
            anchor = value(i);
        }
    }
    AttackOutcome {
        estimated_cells: groups,
        groups,
        peaks: peaks.len(),
    }
}

/// Attack 1: group consecutive peaks of (near-)equal amplitude into per-cell
/// groups. Works when output gains are constant; the cipher's random `G(t)`
/// shatters the groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmplitudeGroupingAttack {
    /// Relative amplitude tolerance for "the exact same amplitude".
    pub rel_tolerance: f64,
    /// Maximum in-group gap between consecutive peaks (one cell's dips all
    /// occur within the array transit time).
    pub max_gap_s: f64,
}

impl AmplitudeGroupingAttack {
    /// A domain-knowledgeable attacker's tuning: 6 % amplitude slack
    /// (covers bead monodispersity), 0.35 s gap (array transit plus margin).
    pub fn paper_default() -> Self {
        Self {
            rel_tolerance: 0.06,
            max_gap_s: 0.35,
        }
    }

    /// Runs the attack on a peak report.
    pub fn estimate(&self, report: &PeakReport) -> AttackOutcome {
        run_grouping(
            report,
            GroupFeature::Amplitude,
            self.rel_tolerance,
            self.max_gap_s,
        )
    }
}

impl Default for AmplitudeGroupingAttack {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Attack 2: group consecutive peaks of (near-)equal width. Works when the
/// flow speed is constant; the cipher's random `S(t)` varies widths 4×.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WidthGroupingAttack {
    /// Relative width tolerance.
    pub rel_tolerance: f64,
    /// Maximum in-group gap between consecutive peaks.
    pub max_gap_s: f64,
}

impl WidthGroupingAttack {
    /// Default tuning: widths are quantized by the 450 Hz sampling, so allow
    /// 30 % slack; same gap bound as the amplitude attack.
    pub fn paper_default() -> Self {
        Self {
            rel_tolerance: 0.30,
            max_gap_s: 0.35,
        }
    }

    /// Runs the attack on a peak report.
    pub fn estimate(&self, report: &PeakReport) -> AttackOutcome {
        run_grouping(
            report,
            GroupFeature::Width,
            self.rel_tolerance,
            self.max_gap_s,
        )
    }
}

impl Default for WidthGroupingAttack {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Attack 3: pure temporal burst clustering — one group per quiet-gap-
/// separated burst of peaks. The paper's Sec. VII-A limitation: effective on
/// sparse samples, defeated by realistic densities where bursts overlap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstClusteringAttack {
    /// Minimum quiet gap that separates two cells' bursts.
    pub max_gap_s: f64,
}

impl BurstClusteringAttack {
    /// Default tuning (array transit plus margin).
    pub fn paper_default() -> Self {
        Self { max_gap_s: 0.35 }
    }

    /// Runs the attack on a peak report.
    pub fn estimate(&self, report: &PeakReport) -> AttackOutcome {
        run_grouping(report, GroupFeature::TimeOnly, 0.0, self.max_gap_s)
    }
}

impl Default for BurstClusteringAttack {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Attack 4: credential linking. A curious cloud that *runs* the auth
/// protocol sees a bead signature per session — counts it is entitled to,
/// since counting is its job. Across many sessions of two users it can run
/// a two-sample test per bead type and ask: are these the same credential?
/// This wraps the audit crate's sequential Welch distinguisher over the
/// password-bead count vector; the audit battery uses it to measure how
/// many observed sessions separate adjacent credential pairs.
#[derive(Debug, Clone)]
pub struct SignatureDistinguisher {
    inner: SequentialDistinguisher,
}

impl SignatureDistinguisher {
    /// A distinguisher over the full password-bead alphabet.
    pub fn new() -> Self {
        let dims = ParticleKind::ALL
            .into_iter()
            .filter(|k| k.is_password_bead())
            .count();
        Self {
            inner: SequentialDistinguisher::new(dims),
        }
    }

    fn vectorize(sig: &BeadSignature) -> Vec<f64> {
        ParticleKind::ALL
            .into_iter()
            .filter(|k| k.is_password_bead())
            .map(|k| sig.count(k) as f64)
            .collect()
    }

    /// Feeds one observed session of the first user.
    pub fn observe_a(&mut self, sig: &BeadSignature) {
        self.inner.observe_a(&Self::vectorize(sig));
    }

    /// Feeds one observed session of the second user.
    pub fn observe_b(&mut self, sig: &BeadSignature) {
        self.inner.observe_b(&Self::vectorize(sig));
    }

    /// Sessions observed per user `(n_a, n_b)`.
    pub fn sessions(&self) -> (u64, u64) {
        self.inner.counts()
    }

    /// The current separation statistic (largest per-bead-type Welch z).
    pub fn z_score(&self) -> f64 {
        self.inner.z_score()
    }

    /// Whether the accumulated sessions separate the two users above
    /// `z_threshold`.
    pub fn distinguished(&self, z_threshold: f64) -> bool {
        self.z_score() >= z_threshold
    }
}

impl Default for SignatureDistinguisher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::AnalyzedPeak;

    fn report(peaks: Vec<(f64, f64, f64)>) -> PeakReport {
        PeakReport {
            peaks: peaks
                .into_iter()
                .map(|(t, a, w)| AnalyzedPeak {
                    time_s: t,
                    amplitude: a,
                    width_s: w,
                    features: vec![a],
                })
                .collect(),
            carriers_hz: vec![5e5],
            sample_rate_hz: 450.0,
            duration_s: 10.0,
            noise_sigma: 3.0e-4,
        }
    }

    /// Three cells, multiplicity 3, constant gain and flow: a fully
    /// unprotected stream.
    fn unprotected() -> PeakReport {
        let mut peaks = Vec::new();
        for (cell, base) in [(0, 1.0f64), (1, 3.0), (2, 5.0)] {
            let amp = 0.010 + cell as f64 * 0.0015; // cell-to-cell jitter
            for k in 0..3 {
                peaks.push((base + k as f64 * 0.1, amp, 0.02));
            }
        }
        report(peaks)
    }

    #[test]
    fn amplitude_attack_recovers_unprotected_count() {
        let out = AmplitudeGroupingAttack::paper_default().estimate(&unprotected());
        assert_eq!(out.estimated_cells, 3);
        assert_eq!(out.relative_error(3), 0.0);
    }

    #[test]
    fn amplitude_attack_shatters_under_random_gains() {
        // Same timing, but each peak's amplitude scrambled by a gain.
        let gains = [0.7, 2.8, 1.2, 0.9, 2.0, 0.75, 1.6, 2.6, 1.0];
        let mut peaks = Vec::new();
        let mut gi = 0;
        for base in [1.0f64, 3.0, 5.0] {
            for k in 0..3 {
                peaks.push((base + k as f64 * 0.1, 0.010 * gains[gi], 0.02));
                gi += 1;
            }
        }
        let out = AmplitudeGroupingAttack::paper_default().estimate(&report(peaks));
        assert!(out.estimated_cells >= 7, "groups: {}", out.estimated_cells);
        assert!(out.relative_error(3) > 1.0);
    }

    #[test]
    fn width_attack_recovers_fixed_flow_count() {
        let out = WidthGroupingAttack::paper_default().estimate(&unprotected());
        // All widths equal, so grouping is by gaps: 3 bursts.
        assert_eq!(out.estimated_cells, 3);
    }

    #[test]
    fn width_attack_shatters_under_random_flow() {
        let widths = [0.01, 0.04, 0.02, 0.035, 0.012, 0.05, 0.022, 0.014, 0.045];
        let mut peaks = Vec::new();
        let mut wi = 0;
        for base in [1.0f64, 3.0, 5.0] {
            for k in 0..3 {
                peaks.push((base + k as f64 * 0.1, 0.010, widths[wi]));
                wi += 1;
            }
        }
        let out = WidthGroupingAttack::paper_default().estimate(&report(peaks));
        assert!(out.estimated_cells >= 7, "groups: {}", out.estimated_cells);
    }

    #[test]
    fn burst_attack_works_on_sparse_streams() {
        let out = BurstClusteringAttack::paper_default().estimate(&unprotected());
        assert_eq!(out.estimated_cells, 3);
    }

    #[test]
    fn burst_attack_fails_on_dense_streams() {
        // 10 cells arriving 0.15 s apart: bursts overlap into a few clusters.
        let mut peaks = Vec::new();
        for cell in 0..10 {
            let base = cell as f64 * 0.15;
            for k in 0..3 {
                peaks.push((base + k as f64 * 0.1, 0.01, 0.02));
            }
        }
        peaks.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let out = BurstClusteringAttack::paper_default().estimate(&report(peaks));
        assert!(
            out.estimated_cells <= 3,
            "clusters: {}",
            out.estimated_cells
        );
        assert!(out.relative_error(10) > 0.5);
    }

    #[test]
    fn empty_report_estimates_zero() {
        let out = AmplitudeGroupingAttack::paper_default().estimate(&report(vec![]));
        assert_eq!(out.estimated_cells, 0);
        assert_eq!(out.relative_error(0), 0.0);
        assert!(
            BurstClusteringAttack::paper_default()
                .estimate(&report(vec![]))
                .relative_error(5)
                > 0.99
        );
    }

    #[test]
    fn signature_distinguisher_links_distinct_users_only() {
        use medsen_audit::AuditRng;
        let mut rng = AuditRng::new(17);
        let mut same = SignatureDistinguisher::new();
        let mut diff = SignatureDistinguisher::new();
        for _ in 0..64 {
            let draw = |rng: &mut AuditRng, l358: f64, l78: f64| {
                let mut s = BeadSignature::new();
                s.set(ParticleKind::Bead358, rng.poisson(l358));
                s.set(ParticleKind::Bead78, rng.poisson(l78));
                s
            };
            same.observe_a(&draw(&mut rng, 100.0, 200.0));
            same.observe_b(&draw(&mut rng, 100.0, 200.0));
            diff.observe_a(&draw(&mut rng, 100.0, 200.0));
            diff.observe_b(&draw(&mut rng, 400.0, 50.0));
        }
        assert_eq!(same.sessions(), (64, 64));
        assert!(!same.distinguished(5.0), "z = {}", same.z_score());
        assert!(diff.distinguished(5.0), "z = {}", diff.z_score());
    }

    #[test]
    fn relative_error_is_symmetric_in_magnitude() {
        let out = AttackOutcome {
            estimated_cells: 6,
            groups: 6,
            peaks: 6,
        };
        assert!((out.relative_error(3) - 1.0).abs() < 1e-12);
        let under = AttackOutcome {
            estimated_cells: 1,
            groups: 1,
            peaks: 6,
        };
        assert!((under.relative_error(2) - 0.5).abs() < 1e-12);
    }
}
