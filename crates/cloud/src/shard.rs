//! Identifier-hash sharding for the cloud write path.
//!
//! The monolithic service put every enrollment behind one
//! `RwLock<AuthService>` and every record behind one store lock, so an
//! enroll-heavy fleet serialized on a single writer no matter how many
//! gateway workers it had. This module splits that state into `N`
//! independent shards routed by a *stable* hash of the user identifier:
//! writers for different identifiers take different locks and proceed in
//! parallel, while the request/response API above stays unchanged.
//!
//! Routing stability is a correctness property, not a tuning knob: the
//! same identifier must land on the same shard for every call and for
//! every independently constructed service with the same shard count,
//! otherwise an enrollment could become unreachable to the
//! authentication scan that follows it. The hash is therefore a fixed
//! FNV-1a — never `std`'s randomly seeded hasher.

use crate::auth::{decision_from_candidates, AuthDecision, AuthService, BeadSignature};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hard cap on shard counts: the shard index and the shard count must
/// both fit the 8-bit fields [`RecordId`](crate::storage::RecordId)
/// reserves for them.
pub const MAX_SHARDS: usize = 256;

/// Stable 64-bit FNV-1a hash of an identifier.
///
/// This value is part of the persistence contract (record ids encode the
/// shard it selects), so the constants below must never change.
pub fn identity_hash(identifier: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in identifier.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The shard an identifier routes to in a `shard_count`-way split.
///
/// # Panics
///
/// Panics if `shard_count` is zero or exceeds [`MAX_SHARDS`].
pub fn shard_index(identifier: &str, shard_count: usize) -> usize {
    assert!(
        (1..=MAX_SHARDS).contains(&shard_count),
        "shard count {shard_count} outside 1..={MAX_SHARDS}"
    );
    (identity_hash(identifier) % shard_count as u64) as usize
}

/// Point-in-time per-shard occupancy and lock-contention counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Identifiers enrolled on this shard.
    pub enrolled: usize,
    /// Records stored on this shard.
    pub records: usize,
    /// Write-lock acquisitions on this shard's enrollment database.
    pub write_acquisitions: u64,
    /// Write-lock acquisitions that found the lock already held and had
    /// to wait. `contended_writes / write_acquisitions` is the direct
    /// measure of how much the shard split is (or is not) buying.
    pub contended_writes: u64,
}

#[derive(Debug)]
struct AuthShard {
    auth: RwLock<AuthService>,
    write_acquisitions: AtomicU64,
    contended_writes: AtomicU64,
}

impl AuthShard {
    fn new() -> Self {
        Self {
            auth: RwLock::new(AuthService::new()),
            write_acquisitions: AtomicU64::new(0),
            contended_writes: AtomicU64::new(0),
        }
    }
}

/// Write-ahead hook for enrollment mutations, invoked *inside* the
/// owning shard's write lock *before* the in-memory database changes —
/// the same contract as [`crate::storage::RecordJournal`].
pub trait EnrollJournal: Send + Sync + std::fmt::Debug {
    /// `user_id` is about to be enrolled (or re-enrolled) on `shard`.
    fn enrolled(&self, shard: usize, user_id: &str, signature: &BeadSignature);
}

/// The enrollment database split into independently locked shards.
///
/// Reads (authentication scans, integrity checks) take per-shard read
/// locks; writes (enrollment) touch exactly one shard. Authentication
/// still scans every shard — the measured signature does not reveal the
/// user, so no route exists until a match is found — but scans share the
/// locks and never block each other.
#[derive(Debug)]
pub struct ShardedAuth {
    shards: Vec<AuthShard>,
    journal: Option<Arc<dyn EnrollJournal>>,
}

impl ShardedAuth {
    /// `shard_count` independently locked shards, each with the default
    /// tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero or exceeds [`MAX_SHARDS`].
    pub fn new(shard_count: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&shard_count),
            "shard count {shard_count} outside 1..={MAX_SHARDS}"
        );
        Self {
            shards: (0..shard_count).map(|_| AuthShard::new()).collect(),
            journal: None,
        }
    }

    /// Attaches a write-ahead journal. Must be called before the database
    /// is shared; enrollments from then on are journaled per the
    /// [`EnrollJournal`] contract.
    pub fn set_journal(&mut self, journal: Arc<dyn EnrollJournal>) {
        self.journal = Some(journal);
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Write-locks one shard, counting acquisitions and contention.
    fn write(&self, index: usize) -> parking_lot::RwLockWriteGuard<'_, AuthService> {
        let shard = &self.shards[index];
        shard.write_acquisitions.fetch_add(1, Ordering::Relaxed);
        match shard.auth.try_write() {
            Some(guard) => guard,
            None => {
                shard.contended_writes.fetch_add(1, Ordering::Relaxed);
                shard.auth.write()
            }
        }
    }

    /// Enrolls (or replaces) a user's expected signature on its shard.
    /// If a journal is attached, the entry is journaled under the shard's
    /// write lock before the database changes (write-ahead order).
    pub fn enroll(&self, user_id: impl Into<String>, signature: BeadSignature) {
        let user_id = user_id.into();
        let index = shard_index(&user_id, self.shards.len());
        // The shard-lock span covers acquire through guard release so
        // lock-wait *and* hold time (journal append included) land in it.
        let lock_started = std::time::Instant::now();
        let mut guard = self.write(index);
        if let Some(journal) = &self.journal {
            journal.enrolled(index, &user_id, &signature);
        }
        guard.enroll(user_id, signature);
        drop(guard);
        medsen_telemetry::record_since(
            medsen_telemetry::Stage::ShardLock,
            index as u32,
            lock_started,
        );
    }

    /// Re-enrolls a user recovered from durable storage. Bypasses the
    /// journal (the entry is already on disk) and the contention
    /// counters (recovery runs before the service takes traffic).
    pub(crate) fn restore_enroll(&self, shard: usize, user_id: String, signature: BeadSignature) {
        self.shards[shard].auth.write().enroll(user_id, signature);
    }

    /// Write-locks one shard's enrollment database for the compactor,
    /// bypassing the contention counters (compaction pauses are reported
    /// through the WAL snapshot stats instead).
    pub(crate) fn write_shard(
        &self,
        index: usize,
    ) -> parking_lot::RwLockWriteGuard<'_, AuthService> {
        self.shards[index].auth.write()
    }

    /// Authenticates a measured signature against every shard's
    /// enrollment database, merging candidates so cross-shard ambiguity
    /// is still detected. Candidates are sorted, matching the ordering a
    /// single global enrollment map would produce.
    pub fn authenticate(&self, measured: &BeadSignature) -> AuthDecision {
        let mut candidates: Vec<String> = Vec::new();
        for shard in &self.shards {
            candidates.extend(shard.auth.read().matching_users(measured));
        }
        candidates.sort();
        decision_from_candidates(candidates)
    }

    /// The Sec. V integrity check, routed to the identifier's shard.
    pub fn verify_integrity(&self, user_id: &str, recovered: &BeadSignature) -> bool {
        let index = shard_index(user_id, self.shards.len());
        self.shards[index]
            .auth
            .read()
            .verify_integrity(user_id, recovered)
    }

    /// Total identifiers enrolled across all shards.
    pub fn enrolled_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.auth.read().enrolled_count())
            .sum()
    }

    /// Per-shard occupancy and contention counters (`records` left zero;
    /// the caller owning the record store fills it in).
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                enrolled: s.auth.read().enrolled_count(),
                records: 0,
                write_acquisitions: s.write_acquisitions.load(Ordering::Relaxed),
                contended_writes: s.contended_writes.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_microfluidics::ParticleKind;

    fn sig(n: u64) -> BeadSignature {
        BeadSignature::from_counts(&[(ParticleKind::Bead358, n)])
    }

    #[test]
    fn hash_is_stable_across_calls_and_constructions() {
        // Golden values: these are part of the record-id contract. If
        // this test ever needs updating, stored record ids have been
        // invalidated.
        assert_eq!(identity_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(identity_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(identity_hash("pipette-7"), identity_hash("pipette-7"));
        for n in [1usize, 2, 8, 256] {
            let first = shard_index("pipette-7", n);
            assert_eq!(first, shard_index("pipette-7", n));
            assert!(first < n);
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for id in ["", "a", "pipette-7", "very-long-identifier-string"] {
            assert_eq!(shard_index(id, 1), 0);
        }
    }

    #[test]
    fn shards_spread_identifiers() {
        let hit: std::collections::BTreeSet<usize> = (0..64)
            .map(|i| shard_index(&format!("user-{i}"), 8))
            .collect();
        assert!(
            hit.len() >= 4,
            "64 identifiers over 8 shards must not collapse onto {hit:?}"
        );
    }

    #[test]
    #[should_panic(expected = "outside 1..=256")]
    fn zero_shards_panics() {
        shard_index("x", 0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=256")]
    fn oversized_shard_count_panics() {
        ShardedAuth::new(MAX_SHARDS + 1);
    }

    #[test]
    fn enroll_authenticate_verify_round_trip() {
        let auth = ShardedAuth::new(8);
        auth.enroll("alice", sig(100));
        auth.enroll("bob", sig(300));
        assert_eq!(auth.enrolled_count(), 2);
        assert_eq!(
            auth.authenticate(&sig(102)),
            AuthDecision::Accepted {
                user_id: "alice".into()
            }
        );
        assert_eq!(auth.authenticate(&sig(5000)), AuthDecision::Rejected);
        assert!(auth.verify_integrity("bob", &sig(310)));
        assert!(!auth.verify_integrity("bob", &sig(100)));
        assert!(!auth.verify_integrity("nobody", &sig(100)));
    }

    #[test]
    fn cross_shard_ambiguity_is_detected_and_sorted() {
        // Find two identifiers on *different* shards, enroll them with
        // overlapping signatures, and check the merged verdict.
        let auth = ShardedAuth::new(8);
        let a = "user-a";
        let b = (0..64)
            .map(|i| format!("user-{i}"))
            .find(|c| shard_index(c, 8) != shard_index(a, 8))
            .expect("some identifier lands elsewhere");
        auth.enroll(a, sig(100));
        auth.enroll(b.clone(), sig(101));
        match auth.authenticate(&sig(100)) {
            AuthDecision::Ambiguous { candidates } => {
                let mut expected = vec![a.to_string(), b];
                expected.sort();
                assert_eq!(candidates, expected);
            }
            other => panic!("expected cross-shard ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn reenrollment_replaces_on_the_same_shard() {
        let auth = ShardedAuth::new(4);
        auth.enroll("carol", sig(50));
        auth.enroll("carol", sig(200));
        assert_eq!(auth.enrolled_count(), 1);
        assert!(auth.verify_integrity("carol", &sig(200)));
        assert!(!auth.verify_integrity("carol", &sig(50)));
    }

    #[test]
    fn stats_count_writes_per_shard() {
        let auth = ShardedAuth::new(4);
        auth.enroll("alice", sig(10));
        auth.enroll("alice", sig(20));
        let stats = auth.stats();
        assert_eq!(stats.len(), 4);
        let index = shard_index("alice", 4);
        assert_eq!(stats[index].write_acquisitions, 2);
        assert_eq!(stats[index].enrolled, 1);
        let elsewhere: u64 = stats
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != index)
            .map(|(_, s)| s.write_acquisitions)
            .sum();
        assert_eq!(elsewhere, 0, "writes never touch foreign shards");
    }

    #[test]
    fn concurrent_enrolls_on_distinct_shards_all_land() {
        let auth = std::sync::Arc::new(ShardedAuth::new(8));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let auth = auth.clone();
                scope.spawn(move || {
                    for i in 0..50u64 {
                        auth.enroll(format!("user-{t}-{i}"), sig(10 + i));
                    }
                });
            }
        });
        assert_eq!(auth.enrolled_count(), 400);
    }
}
