//! Binary wire encodings for the cross-tier message types, plus the
//! format-dispatch helpers every transport hop shares.
//!
//! [`Request`] and [`Response`] are the two root messages of the
//! phone↔gateway↔cloud protocol. Their [`Wire`] impls live here (orphan
//! rules put them next to the types, not in `medsen-wire`), each under a
//! frozen frame kind tag; the per-field encodings of the payload types
//! (traces, reports, signatures, records) live in their owning modules
//! and crates.
//!
//! The free functions at the bottom are the one place the
//! binary-vs-JSON choice is made: every encoder/decoder in the gateway
//! and cloud goes through [`encode_request`]/[`decode_request`]/
//! [`encode_response`]/[`decode_response`] with a [`WireFormat`], so no
//! call site can hardcode a format and drift from its peer.

use crate::service::{Request, Response};
use medsen_phone::JsonWire;
use medsen_wire::{
    decode_message, decode_message_traced, encode_message, encode_message_traced, BinaryWire,
    Reader, Wire, WireCodec, WireError, WireFormat, WireMessage, Writer, TRACED_KIND_BIT,
    WIRE_VERSION,
};

/// Frame kind tag for [`Request`] messages. Frozen: chosen clear of the
/// WAL entry kinds, the AOAP frame types (`0x10..=0x13`), and the
/// fountain symbol magic (`0xF7`), so a misrouted buffer fails on its
/// kind byte instead of half-decoding.
pub const REQUEST_KIND: u8 = 0x21;

/// Frame kind tag for [`Response`] messages.
pub const RESPONSE_KIND: u8 = 0x22;

/// Variant tags for [`Request`]. Frozen wire contract.
const REQ_ANALYZE: u8 = 0;
const REQ_ENROLL: u8 = 1;
const REQ_FETCH: u8 = 2;
const REQ_VERIFY_INTEGRITY: u8 = 3;
const REQ_PING: u8 = 4;

/// Variant tags for [`Response`]. Frozen wire contract.
const RESP_ANALYZED: u8 = 0;
const RESP_ENROLLED: u8 = 1;
const RESP_RECORD: u8 = 2;
const RESP_INTEGRITY: u8 = 3;
const RESP_PONG: u8 = 4;
const RESP_ERROR: u8 = 5;

impl Wire for Request {
    fn wire_encode(&self, w: &mut Writer) {
        match self {
            Request::Analyze {
                trace,
                authenticate,
            } => {
                w.put_u8(REQ_ANALYZE);
                trace.wire_encode(w);
                w.put_bool(*authenticate);
            }
            Request::Enroll {
                identifier,
                signature,
            } => {
                w.put_u8(REQ_ENROLL);
                identifier.wire_encode(w);
                signature.wire_encode(w);
            }
            Request::Fetch { record_id } => {
                w.put_u8(REQ_FETCH);
                record_id.wire_encode(w);
            }
            Request::VerifyIntegrity { record_id } => {
                w.put_u8(REQ_VERIFY_INTEGRITY);
                record_id.wire_encode(w);
            }
            Request::Ping => w.put_u8(REQ_PING),
        }
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            REQ_ANALYZE => Ok(Request::Analyze {
                trace: Wire::wire_decode(r)?,
                authenticate: r.get_bool()?,
            }),
            REQ_ENROLL => Ok(Request::Enroll {
                identifier: String::wire_decode(r)?,
                signature: Wire::wire_decode(r)?,
            }),
            REQ_FETCH => Ok(Request::Fetch {
                record_id: Wire::wire_decode(r)?,
            }),
            REQ_VERIFY_INTEGRITY => Ok(Request::VerifyIntegrity {
                record_id: Wire::wire_decode(r)?,
            }),
            REQ_PING => Ok(Request::Ping),
            tag => Err(WireError::BadTag {
                what: "request",
                tag,
            }),
        }
    }
}

impl WireMessage for Request {
    const KIND: u8 = REQUEST_KIND;
}

impl Wire for Response {
    fn wire_encode(&self, w: &mut Writer) {
        match self {
            Response::Analyzed {
                report,
                auth,
                stored_as,
            } => {
                w.put_u8(RESP_ANALYZED);
                report.wire_encode(w);
                auth.wire_encode(w);
                stored_as.wire_encode(w);
            }
            Response::Enrolled => w.put_u8(RESP_ENROLLED),
            Response::Record(record) => {
                w.put_u8(RESP_RECORD);
                record.wire_encode(w);
            }
            Response::Integrity { intact } => {
                w.put_u8(RESP_INTEGRITY);
                w.put_bool(*intact);
            }
            Response::Pong => w.put_u8(RESP_PONG),
            Response::Error { reason } => {
                w.put_u8(RESP_ERROR);
                reason.wire_encode(w);
            }
        }
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            RESP_ANALYZED => Ok(Response::Analyzed {
                report: Wire::wire_decode(r)?,
                auth: Option::wire_decode(r)?,
                stored_as: Option::wire_decode(r)?,
            }),
            RESP_ENROLLED => Ok(Response::Enrolled),
            RESP_RECORD => Ok(Response::Record(Wire::wire_decode(r)?)),
            RESP_INTEGRITY => Ok(Response::Integrity {
                intact: r.get_bool()?,
            }),
            RESP_PONG => Ok(Response::Pong),
            RESP_ERROR => Ok(Response::Error {
                reason: String::wire_decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "response",
                tag,
            }),
        }
    }
}

impl WireMessage for Response {
    const KIND: u8 = RESPONSE_KIND;
}

/// Encodes a [`Request`] body in the selected format.
pub fn encode_request(format: WireFormat, request: &Request) -> Result<Vec<u8>, WireError> {
    match format {
        WireFormat::Binary => BinaryWire.encode(request),
        WireFormat::Json => JsonWire.encode(request),
    }
}

/// Decodes a [`Request`] body in the selected format. Total: malformed
/// bytes return an error, never panic.
pub fn decode_request(format: WireFormat, bytes: &[u8]) -> Result<Request, WireError> {
    match format {
        WireFormat::Binary => BinaryWire.decode(bytes),
        WireFormat::Json => JsonWire.decode(bytes),
    }
}

/// Encodes a [`Response`] body in the selected format.
pub fn encode_response(format: WireFormat, response: &Response) -> Result<Vec<u8>, WireError> {
    match format {
        WireFormat::Binary => BinaryWire.encode(response),
        WireFormat::Json => JsonWire.encode(response),
    }
}

/// Decodes a [`Response`] body in the selected format.
pub fn decode_response(format: WireFormat, bytes: &[u8]) -> Result<Response, WireError> {
    match format {
        WireFormat::Binary => BinaryWire.decode(bytes),
        WireFormat::Json => JsonWire.decode(bytes),
    }
}

/// Encodes a [`Request`] body with trace context in the selected
/// format. Binary rides the traced twin frame kind
/// (`REQUEST_KIND | TRACED_KIND_BIT`); JSON mirrors the same optional
/// field as a `{"trace":N,"body":...}` wrapper object. A zero `trace`
/// falls back to the plain, byte-identical untraced encoding in both
/// formats.
pub fn encode_request_traced(
    format: WireFormat,
    request: &Request,
    trace: u64,
) -> Result<Vec<u8>, WireError> {
    match format {
        WireFormat::Binary => Ok(encode_message_traced(request, trace)),
        WireFormat::Json => Ok(json_wrap(JsonWire.encode(request)?, trace)),
    }
}

/// Decodes a [`Request`] body that may or may not carry trace context;
/// pre-trace-context bodies decode as `(request, None)` in both
/// formats.
pub fn decode_request_traced(
    format: WireFormat,
    bytes: &[u8],
) -> Result<(Request, Option<u64>), WireError> {
    match format {
        WireFormat::Binary => decode_message_traced(bytes),
        WireFormat::Json => {
            let (inner, trace) = json_unwrap(bytes)?;
            Ok((JsonWire.decode(inner)?, trace))
        }
    }
}

/// Encodes a [`Response`] body with trace context — the reply half of
/// [`encode_request_traced`], so a traced request's reply carries the
/// same trace id back to the phone.
pub fn encode_response_traced(
    format: WireFormat,
    response: &Response,
    trace: u64,
) -> Result<Vec<u8>, WireError> {
    match format {
        WireFormat::Binary => Ok(encode_message_traced(response, trace)),
        WireFormat::Json => Ok(json_wrap(JsonWire.encode(response)?, trace)),
    }
}

/// Decodes a [`Response`] body that may or may not carry trace context.
pub fn decode_response_traced(
    format: WireFormat,
    bytes: &[u8],
) -> Result<(Response, Option<u64>), WireError> {
    match format {
        WireFormat::Binary => decode_message_traced(bytes),
        WireFormat::Json => {
            let (inner, trace) = json_unwrap(bytes)?;
            Ok((JsonWire.decode(inner)?, trace))
        }
    }
}

/// The JSON mirror of the binary trace-context prefix: wraps a
/// canonical body in `{"trace":N,"body":...}`. Zero trace → the body
/// itself, unchanged.
fn json_wrap(body: Vec<u8>, trace: u64) -> Vec<u8> {
    if trace == 0 {
        return body;
    }
    let mut out = Vec::with_capacity(body.len() + 24);
    out.extend_from_slice(b"{\"trace\":");
    out.extend_from_slice(trace.to_string().as_bytes());
    out.extend_from_slice(b",\"body\":");
    out.extend_from_slice(&body);
    out.push(b'}');
    out
}

/// Splits a possibly-wrapped JSON body into `(inner, trace)`. The
/// wrapper prefix cannot collide with a real message: every root
/// message serializes as `{"<VariantName>":...}` or a bare string, so
/// `{"trace":` is unambiguous.
fn json_unwrap(bytes: &[u8]) -> Result<(&[u8], Option<u64>), WireError> {
    let Some(rest) = bytes.strip_prefix(b"{\"trace\":".as_slice()) else {
        return Ok((bytes, None));
    };
    let comma = rest
        .iter()
        .position(|&b| b == b',')
        .ok_or(WireError::Invalid("traced json wrapper missing body"))?;
    let trace: u64 = std::str::from_utf8(&rest[..comma])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(WireError::Invalid("traced json wrapper has a bad trace id"))?;
    if trace == 0 {
        return Err(WireError::Invalid("traced json wrapper with zero trace id"));
    }
    let inner = rest[comma + 1..]
        .strip_prefix(b"\"body\":".as_slice())
        .and_then(|r| r.strip_suffix(b"}".as_slice()))
        .ok_or(WireError::Invalid("traced json wrapper missing body"))?;
    Ok((inner, Some(trace)))
}

/// Encodes an error reply in the selected format. Infallible by design:
/// the gateway's reply channel must never starve because an *error*
/// could not be encoded.
pub fn encode_error(format: WireFormat, reason: &str) -> Vec<u8> {
    let response = Response::Error {
        reason: reason.to_string(),
    };
    encode_response(format, &response)
        .unwrap_or_else(|_| b"{\"Error\":{\"reason\":\"reply encoding failed\"}}".to_vec())
}

/// Whether an encoded reply is the standby's "node deposed" fencing
/// error, which tells the gateway to re-route to the promoted primary.
///
/// This runs on *every* reply on the submit path, so the binary arm
/// peeks the variant tag behind the version byte (and behind the trace
/// prefix on a traced frame) and only pays for a full decode when the
/// reply really is an error frame.
pub fn reply_is_deposed(format: WireFormat, bytes: &[u8]) -> bool {
    let deposed = |reason: &str| reason.contains("node deposed");
    match format {
        WireFormat::Json => std::str::from_utf8(bytes).is_ok_and(deposed),
        WireFormat::Binary => match medsen_wire::decode_frame(bytes) {
            Ok((kind, payload))
                if kind == RESPONSE_KIND || kind == (RESPONSE_KIND | TRACED_KIND_BIT) =>
            {
                // The variant tag sits after the version byte, plus the
                // 8-byte trace id on a traced frame.
                let tag_at = if kind & TRACED_KIND_BIT != 0 { 9 } else { 1 };
                payload.first() == Some(&WIRE_VERSION)
                    && payload.get(tag_at) == Some(&RESP_ERROR)
                    && matches!(
                        decode_response_traced(WireFormat::Binary, bytes),
                        Ok((Response::Error { reason }, _)) if deposed(&reason)
                    )
            }
            _ => false,
        },
    }
}

/// Binary convenience used by tests and fixtures: one framed request.
pub fn request_to_bytes(request: &Request) -> Vec<u8> {
    encode_message(request)
}

/// Binary convenience used by tests and fixtures: one framed response.
pub fn response_to_bytes(response: &Response) -> Vec<u8> {
    encode_message(response)
}

/// Binary convenience: decodes one framed request.
pub fn request_from_bytes(bytes: &[u8]) -> Result<Request, WireError> {
    decode_message(bytes)
}

/// Binary convenience: decodes one framed response.
pub fn response_from_bytes(bytes: &[u8]) -> Result<Response, WireError> {
    decode_message(bytes)
}

/// The deterministic fixture corpus behind the checked-in golden frames.
///
/// Every value is built from fixed literal data, so re-encoding it must
/// reproduce the committed `tests/golden/*.bin` bytes byte-for-byte —
/// that is the CI tripwire against silent wire-format drift. The corpus
/// covers every [`Request`] and [`Response`] variant, including
/// non-ASCII identifiers and the deposed-node error the failover path
/// string-matches on.
pub mod golden {
    use super::{Request, Response};
    use crate::api::{AnalyzedPeak, PeakReport};
    use crate::auth::{AuthDecision, BeadSignature};
    use crate::storage::{RecordId, StoredRecord};
    use medsen_impedance::{Channel, SignalComponent, SignalTrace};
    use medsen_microfluidics::ParticleKind;
    use medsen_units::Hertz;

    /// A small two-channel trace with fixed literal samples.
    pub fn trace() -> SignalTrace {
        let mut ch = Channel::new(Hertz::from_khz(500.0));
        ch.samples = vec![1.0, 0.97, 0.99];
        let mut quad = Channel::new(Hertz::from_khz(2000.0));
        quad.samples = vec![0.01, 0.02, 0.015];
        quad.component = SignalComponent::Quadrature;
        SignalTrace::new(Hertz::new(450.0), vec![ch, quad])
    }

    /// A one-peak analysis report with fixed literal statistics.
    pub fn report() -> PeakReport {
        PeakReport {
            peaks: vec![AnalyzedPeak {
                time_s: 0.5,
                amplitude: 0.03,
                width_s: 0.002,
                features: vec![0.03, 0.01],
            }],
            carriers_hz: vec![500_000.0, 2_000_000.0],
            sample_rate_hz: 450.0,
            duration_s: 2.0,
            noise_sigma: 0.001,
        }
    }

    /// One named fixture per [`Request`] variant.
    pub fn requests() -> Vec<(&'static str, Request)> {
        vec![
            (
                "req_analyze",
                Request::Analyze {
                    trace: trace(),
                    authenticate: true,
                },
            ),
            (
                "req_enroll",
                Request::Enroll {
                    identifier: "patient-α".into(),
                    signature: BeadSignature::from_counts(&[
                        (ParticleKind::Bead358, 40),
                        (ParticleKind::Bead78, 12),
                    ]),
                },
            ),
            (
                "req_fetch",
                Request::Fetch {
                    record_id: RecordId::compose(3, 8, 77),
                },
            ),
            (
                "req_verify",
                Request::VerifyIntegrity {
                    record_id: RecordId(u64::MAX >> 1),
                },
            ),
            ("req_ping", Request::Ping),
        ]
    }

    /// One named fixture per [`Response`] variant (two for `Analyzed`,
    /// covering both the accepted and the ambiguous auth arms).
    pub fn responses() -> Vec<(&'static str, Response)> {
        vec![
            (
                "resp_analyzed_accepted",
                Response::Analyzed {
                    report: report(),
                    auth: Some(AuthDecision::Accepted {
                        user_id: "patient-α".into(),
                    }),
                    stored_as: Some(RecordId::compose(0, 1, 0)),
                },
            ),
            (
                "resp_analyzed_ambiguous",
                Response::Analyzed {
                    report: report(),
                    auth: Some(AuthDecision::Ambiguous {
                        candidates: vec!["a".into(), "b".into()],
                    }),
                    stored_as: None,
                },
            ),
            ("resp_enrolled", Response::Enrolled),
            (
                "resp_record",
                Response::Record(StoredRecord {
                    user_id: "patient-α".into(),
                    report: report(),
                    signature: BeadSignature::from_counts(&[(ParticleKind::Bead78, 9)]),
                }),
            ),
            ("resp_integrity", Response::Integrity { intact: false }),
            ("resp_pong", Response::Pong),
            (
                "resp_error_deposed",
                Response::Error {
                    reason: "node deposed: a newer epoch is serving".into(),
                },
            ),
        ]
    }

    /// The fixed trace id every trace-context-bearing golden frame
    /// carries. Arbitrary but frozen: regenerated fixtures must
    /// reproduce the committed bytes.
    pub const TRACE_ID: u64 = 0x0000_BEEF_CAFE_0042;

    /// Trace-context-bearing fixtures: representative request variants
    /// under the traced twin frame kind (binary) / wrapper object
    /// (JSON), all carrying [`TRACE_ID`].
    pub fn traced_requests() -> Vec<(&'static str, Request)> {
        vec![
            (
                "req_enroll_traced",
                Request::Enroll {
                    identifier: "patient-α".into(),
                    signature: BeadSignature::from_counts(&[
                        (ParticleKind::Bead358, 40),
                        (ParticleKind::Bead78, 12),
                    ]),
                },
            ),
            ("req_ping_traced", Request::Ping),
        ]
    }

    /// Trace-context-bearing response fixtures, including the deposed
    /// fencing error (the failover path must see through the trace
    /// prefix).
    pub fn traced_responses() -> Vec<(&'static str, Response)> {
        vec![
            ("resp_pong_traced", Response::Pong),
            (
                "resp_error_deposed_traced",
                Response::Error {
                    reason: "node deposed: a newer epoch is serving".into(),
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> medsen_impedance::SignalTrace {
        golden::trace()
    }

    fn every_request() -> Vec<Request> {
        golden::requests().into_iter().map(|(_, r)| r).collect()
    }

    fn every_response() -> Vec<Response> {
        golden::responses().into_iter().map(|(_, r)| r).collect()
    }

    #[test]
    fn every_request_round_trips_in_both_formats() {
        for request in every_request() {
            for format in [WireFormat::Binary, WireFormat::Json] {
                let bytes = encode_request(format, &request).expect("encodes");
                let back = decode_request(format, &bytes).expect("decodes");
                assert_eq!(back, request, "{format}");
            }
        }
    }

    #[test]
    fn every_response_round_trips_in_both_formats() {
        for response in every_response() {
            for format in [WireFormat::Binary, WireFormat::Json] {
                let bytes = encode_response(format, &response).expect("encodes");
                let back = decode_response(format, &bytes).expect("decodes");
                assert_eq!(back, response, "{format}");
            }
        }
    }

    #[test]
    fn request_and_response_kinds_do_not_cross_decode() {
        let req_bytes = request_to_bytes(&Request::Ping);
        assert!(matches!(
            response_from_bytes(&req_bytes),
            Err(WireError::WrongKind { .. })
        ));
        let resp_bytes = response_to_bytes(&Response::Pong);
        assert!(matches!(
            request_from_bytes(&resp_bytes),
            Err(WireError::WrongKind { .. })
        ));
    }

    #[test]
    fn deposed_detection_works_in_both_formats() {
        let deposed = Response::Error {
            reason: "node deposed: a newer epoch is serving".into(),
        };
        let healthy = Response::Pong;
        let plain_error = Response::Error {
            reason: "trace has no channels".into(),
        };
        for format in [WireFormat::Binary, WireFormat::Json] {
            let bytes = encode_response(format, &deposed).expect("encodes");
            assert!(reply_is_deposed(format, &bytes), "{format}");
            let bytes = encode_response(format, &healthy).expect("encodes");
            assert!(!reply_is_deposed(format, &bytes), "{format}");
            let bytes = encode_response(format, &plain_error).expect("encodes");
            assert!(!reply_is_deposed(format, &bytes), "{format}");
        }
        // Garbage is not deposed either.
        assert!(!reply_is_deposed(WireFormat::Binary, b"junk"));
        assert!(!reply_is_deposed(WireFormat::Json, &[0xFF, 0xFE]));
    }

    #[test]
    fn error_reply_encoding_is_infallible_and_decodable() {
        for format in [WireFormat::Binary, WireFormat::Json] {
            let bytes = encode_error(format, "queue full");
            match decode_response(format, &bytes).expect("decodes") {
                Response::Error { reason } => assert_eq!(reason, "queue full"),
                other => panic!("unexpected reply {other:?}"),
            }
        }
    }

    #[test]
    fn traced_bodies_round_trip_in_both_formats() {
        for request in every_request() {
            for format in [WireFormat::Binary, WireFormat::Json] {
                let bytes = encode_request_traced(format, &request, 0xFACE).expect("encodes");
                let (back, trace) = decode_request_traced(format, &bytes).expect("decodes");
                assert_eq!(back, request, "{format}");
                assert_eq!(trace, Some(0xFACE), "{format}");
            }
        }
        for response in every_response() {
            for format in [WireFormat::Binary, WireFormat::Json] {
                let bytes = encode_response_traced(format, &response, 0xFACE).expect("encodes");
                let (back, trace) = decode_response_traced(format, &bytes).expect("decodes");
                assert_eq!(back, response, "{format}");
                assert_eq!(trace, Some(0xFACE), "{format}");
            }
        }
    }

    #[test]
    fn untraced_bodies_decode_through_the_traced_decoders() {
        // Backward compatibility: a pre-trace-context peer's bytes give
        // (value, None), and a zero trace encodes the identical bytes.
        for request in every_request() {
            for format in [WireFormat::Binary, WireFormat::Json] {
                let plain = encode_request(format, &request).expect("encodes");
                assert_eq!(
                    encode_request_traced(format, &request, 0).expect("encodes"),
                    plain,
                    "zero trace must be byte-identical ({format})"
                );
                let (back, trace) = decode_request_traced(format, &plain).expect("decodes");
                assert_eq!(back, request, "{format}");
                assert_eq!(trace, None, "{format}");
            }
        }
    }

    #[test]
    fn traced_json_wrapper_is_the_documented_shape() {
        let bytes = encode_request_traced(WireFormat::Json, &Request::Ping, 7).expect("encodes");
        assert_eq!(
            std::str::from_utf8(&bytes).expect("utf8"),
            "{\"trace\":7,\"body\":\"Ping\"}"
        );
    }

    #[test]
    fn malformed_traced_json_wrappers_are_rejected() {
        for bad in [
            &b"{\"trace\":"[..],
            b"{\"trace\":abc,\"body\":\"Ping\"}",
            b"{\"trace\":0,\"body\":\"Ping\"}",
            b"{\"trace\":7,\"payload\":\"Ping\"}",
            b"{\"trace\":7,\"body\":\"Ping\"",
        ] {
            assert!(
                decode_request_traced(WireFormat::Json, bad).is_err(),
                "{:?}",
                std::str::from_utf8(bad)
            );
        }
    }

    #[test]
    fn deposed_detection_sees_through_the_trace_prefix() {
        let deposed = Response::Error {
            reason: "node deposed: a newer epoch is serving".into(),
        };
        for format in [WireFormat::Binary, WireFormat::Json] {
            let bytes = encode_response_traced(format, &deposed, 0xAB).expect("encodes");
            assert!(reply_is_deposed(format, &bytes), "{format}");
            let bytes = encode_response_traced(format, &Response::Pong, 0xAB).expect("encodes");
            assert!(!reply_is_deposed(format, &bytes), "{format}");
        }
    }

    #[test]
    fn binary_bodies_are_much_smaller_than_json() {
        let request = Request::Analyze {
            trace: sample_trace(),
            authenticate: false,
        };
        let json = encode_request(WireFormat::Json, &request).expect("json");
        let binary = encode_request(WireFormat::Binary, &request).expect("binary");
        assert!(
            binary.len() < json.len(),
            "binary ({}) should undercut JSON ({})",
            binary.len(),
            json.len()
        );
    }
}
