//! Binary wire encodings for the cross-tier message types, plus the
//! format-dispatch helpers every transport hop shares.
//!
//! [`Request`] and [`Response`] are the two root messages of the
//! phone↔gateway↔cloud protocol. Their [`Wire`] impls live here (orphan
//! rules put them next to the types, not in `medsen-wire`), each under a
//! frozen frame kind tag; the per-field encodings of the payload types
//! (traces, reports, signatures, records) live in their owning modules
//! and crates.
//!
//! The free functions at the bottom are the one place the
//! binary-vs-JSON choice is made: every encoder/decoder in the gateway
//! and cloud goes through [`encode_request`]/[`decode_request`]/
//! [`encode_response`]/[`decode_response`] with a [`WireFormat`], so no
//! call site can hardcode a format and drift from its peer.

use crate::service::{Request, Response};
use medsen_phone::JsonWire;
use medsen_wire::{
    decode_message, encode_message, BinaryWire, Reader, Wire, WireCodec, WireError, WireFormat,
    WireMessage, Writer, WIRE_VERSION,
};

/// Frame kind tag for [`Request`] messages. Frozen: chosen clear of the
/// WAL entry kinds, the AOAP frame types (`0x10..=0x13`), and the
/// fountain symbol magic (`0xF7`), so a misrouted buffer fails on its
/// kind byte instead of half-decoding.
pub const REQUEST_KIND: u8 = 0x21;

/// Frame kind tag for [`Response`] messages.
pub const RESPONSE_KIND: u8 = 0x22;

/// Variant tags for [`Request`]. Frozen wire contract.
const REQ_ANALYZE: u8 = 0;
const REQ_ENROLL: u8 = 1;
const REQ_FETCH: u8 = 2;
const REQ_VERIFY_INTEGRITY: u8 = 3;
const REQ_PING: u8 = 4;

/// Variant tags for [`Response`]. Frozen wire contract.
const RESP_ANALYZED: u8 = 0;
const RESP_ENROLLED: u8 = 1;
const RESP_RECORD: u8 = 2;
const RESP_INTEGRITY: u8 = 3;
const RESP_PONG: u8 = 4;
const RESP_ERROR: u8 = 5;

impl Wire for Request {
    fn wire_encode(&self, w: &mut Writer) {
        match self {
            Request::Analyze {
                trace,
                authenticate,
            } => {
                w.put_u8(REQ_ANALYZE);
                trace.wire_encode(w);
                w.put_bool(*authenticate);
            }
            Request::Enroll {
                identifier,
                signature,
            } => {
                w.put_u8(REQ_ENROLL);
                identifier.wire_encode(w);
                signature.wire_encode(w);
            }
            Request::Fetch { record_id } => {
                w.put_u8(REQ_FETCH);
                record_id.wire_encode(w);
            }
            Request::VerifyIntegrity { record_id } => {
                w.put_u8(REQ_VERIFY_INTEGRITY);
                record_id.wire_encode(w);
            }
            Request::Ping => w.put_u8(REQ_PING),
        }
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            REQ_ANALYZE => Ok(Request::Analyze {
                trace: Wire::wire_decode(r)?,
                authenticate: r.get_bool()?,
            }),
            REQ_ENROLL => Ok(Request::Enroll {
                identifier: String::wire_decode(r)?,
                signature: Wire::wire_decode(r)?,
            }),
            REQ_FETCH => Ok(Request::Fetch {
                record_id: Wire::wire_decode(r)?,
            }),
            REQ_VERIFY_INTEGRITY => Ok(Request::VerifyIntegrity {
                record_id: Wire::wire_decode(r)?,
            }),
            REQ_PING => Ok(Request::Ping),
            tag => Err(WireError::BadTag {
                what: "request",
                tag,
            }),
        }
    }
}

impl WireMessage for Request {
    const KIND: u8 = REQUEST_KIND;
}

impl Wire for Response {
    fn wire_encode(&self, w: &mut Writer) {
        match self {
            Response::Analyzed {
                report,
                auth,
                stored_as,
            } => {
                w.put_u8(RESP_ANALYZED);
                report.wire_encode(w);
                auth.wire_encode(w);
                stored_as.wire_encode(w);
            }
            Response::Enrolled => w.put_u8(RESP_ENROLLED),
            Response::Record(record) => {
                w.put_u8(RESP_RECORD);
                record.wire_encode(w);
            }
            Response::Integrity { intact } => {
                w.put_u8(RESP_INTEGRITY);
                w.put_bool(*intact);
            }
            Response::Pong => w.put_u8(RESP_PONG),
            Response::Error { reason } => {
                w.put_u8(RESP_ERROR);
                reason.wire_encode(w);
            }
        }
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            RESP_ANALYZED => Ok(Response::Analyzed {
                report: Wire::wire_decode(r)?,
                auth: Option::wire_decode(r)?,
                stored_as: Option::wire_decode(r)?,
            }),
            RESP_ENROLLED => Ok(Response::Enrolled),
            RESP_RECORD => Ok(Response::Record(Wire::wire_decode(r)?)),
            RESP_INTEGRITY => Ok(Response::Integrity {
                intact: r.get_bool()?,
            }),
            RESP_PONG => Ok(Response::Pong),
            RESP_ERROR => Ok(Response::Error {
                reason: String::wire_decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "response",
                tag,
            }),
        }
    }
}

impl WireMessage for Response {
    const KIND: u8 = RESPONSE_KIND;
}

/// Encodes a [`Request`] body in the selected format.
pub fn encode_request(format: WireFormat, request: &Request) -> Result<Vec<u8>, WireError> {
    match format {
        WireFormat::Binary => BinaryWire.encode(request),
        WireFormat::Json => JsonWire.encode(request),
    }
}

/// Decodes a [`Request`] body in the selected format. Total: malformed
/// bytes return an error, never panic.
pub fn decode_request(format: WireFormat, bytes: &[u8]) -> Result<Request, WireError> {
    match format {
        WireFormat::Binary => BinaryWire.decode(bytes),
        WireFormat::Json => JsonWire.decode(bytes),
    }
}

/// Encodes a [`Response`] body in the selected format.
pub fn encode_response(format: WireFormat, response: &Response) -> Result<Vec<u8>, WireError> {
    match format {
        WireFormat::Binary => BinaryWire.encode(response),
        WireFormat::Json => JsonWire.encode(response),
    }
}

/// Decodes a [`Response`] body in the selected format.
pub fn decode_response(format: WireFormat, bytes: &[u8]) -> Result<Response, WireError> {
    match format {
        WireFormat::Binary => BinaryWire.decode(bytes),
        WireFormat::Json => JsonWire.decode(bytes),
    }
}

/// Encodes an error reply in the selected format. Infallible by design:
/// the gateway's reply channel must never starve because an *error*
/// could not be encoded.
pub fn encode_error(format: WireFormat, reason: &str) -> Vec<u8> {
    let response = Response::Error {
        reason: reason.to_string(),
    };
    encode_response(format, &response)
        .unwrap_or_else(|_| b"{\"Error\":{\"reason\":\"reply encoding failed\"}}".to_vec())
}

/// Whether an encoded reply is the standby's "node deposed" fencing
/// error, which tells the gateway to re-route to the promoted primary.
///
/// This runs on *every* reply on the submit path, so the binary arm
/// peeks the variant tag behind the version byte and only pays for a
/// full decode when the reply really is an error frame.
pub fn reply_is_deposed(format: WireFormat, bytes: &[u8]) -> bool {
    let deposed = |reason: &str| reason.contains("node deposed");
    match format {
        WireFormat::Json => std::str::from_utf8(bytes).is_ok_and(deposed),
        WireFormat::Binary => match medsen_wire::decode_frame(bytes) {
            Ok((RESPONSE_KIND, payload))
                if payload.first() == Some(&WIRE_VERSION)
                    && payload.get(1) == Some(&RESP_ERROR) =>
            {
                matches!(
                    decode_response(WireFormat::Binary, bytes),
                    Ok(Response::Error { reason }) if deposed(&reason)
                )
            }
            _ => false,
        },
    }
}

/// Binary convenience used by tests and fixtures: one framed request.
pub fn request_to_bytes(request: &Request) -> Vec<u8> {
    encode_message(request)
}

/// Binary convenience used by tests and fixtures: one framed response.
pub fn response_to_bytes(response: &Response) -> Vec<u8> {
    encode_message(response)
}

/// Binary convenience: decodes one framed request.
pub fn request_from_bytes(bytes: &[u8]) -> Result<Request, WireError> {
    decode_message(bytes)
}

/// Binary convenience: decodes one framed response.
pub fn response_from_bytes(bytes: &[u8]) -> Result<Response, WireError> {
    decode_message(bytes)
}

/// The deterministic fixture corpus behind the checked-in golden frames.
///
/// Every value is built from fixed literal data, so re-encoding it must
/// reproduce the committed `tests/golden/*.bin` bytes byte-for-byte —
/// that is the CI tripwire against silent wire-format drift. The corpus
/// covers every [`Request`] and [`Response`] variant, including
/// non-ASCII identifiers and the deposed-node error the failover path
/// string-matches on.
pub mod golden {
    use super::{Request, Response};
    use crate::api::{AnalyzedPeak, PeakReport};
    use crate::auth::{AuthDecision, BeadSignature};
    use crate::storage::{RecordId, StoredRecord};
    use medsen_impedance::{Channel, SignalComponent, SignalTrace};
    use medsen_microfluidics::ParticleKind;
    use medsen_units::Hertz;

    /// A small two-channel trace with fixed literal samples.
    pub fn trace() -> SignalTrace {
        let mut ch = Channel::new(Hertz::from_khz(500.0));
        ch.samples = vec![1.0, 0.97, 0.99];
        let mut quad = Channel::new(Hertz::from_khz(2000.0));
        quad.samples = vec![0.01, 0.02, 0.015];
        quad.component = SignalComponent::Quadrature;
        SignalTrace::new(Hertz::new(450.0), vec![ch, quad])
    }

    /// A one-peak analysis report with fixed literal statistics.
    pub fn report() -> PeakReport {
        PeakReport {
            peaks: vec![AnalyzedPeak {
                time_s: 0.5,
                amplitude: 0.03,
                width_s: 0.002,
                features: vec![0.03, 0.01],
            }],
            carriers_hz: vec![500_000.0, 2_000_000.0],
            sample_rate_hz: 450.0,
            duration_s: 2.0,
            noise_sigma: 0.001,
        }
    }

    /// One named fixture per [`Request`] variant.
    pub fn requests() -> Vec<(&'static str, Request)> {
        vec![
            (
                "req_analyze",
                Request::Analyze {
                    trace: trace(),
                    authenticate: true,
                },
            ),
            (
                "req_enroll",
                Request::Enroll {
                    identifier: "patient-α".into(),
                    signature: BeadSignature::from_counts(&[
                        (ParticleKind::Bead358, 40),
                        (ParticleKind::Bead78, 12),
                    ]),
                },
            ),
            (
                "req_fetch",
                Request::Fetch {
                    record_id: RecordId::compose(3, 8, 77),
                },
            ),
            (
                "req_verify",
                Request::VerifyIntegrity {
                    record_id: RecordId(u64::MAX >> 1),
                },
            ),
            ("req_ping", Request::Ping),
        ]
    }

    /// One named fixture per [`Response`] variant (two for `Analyzed`,
    /// covering both the accepted and the ambiguous auth arms).
    pub fn responses() -> Vec<(&'static str, Response)> {
        vec![
            (
                "resp_analyzed_accepted",
                Response::Analyzed {
                    report: report(),
                    auth: Some(AuthDecision::Accepted {
                        user_id: "patient-α".into(),
                    }),
                    stored_as: Some(RecordId::compose(0, 1, 0)),
                },
            ),
            (
                "resp_analyzed_ambiguous",
                Response::Analyzed {
                    report: report(),
                    auth: Some(AuthDecision::Ambiguous {
                        candidates: vec!["a".into(), "b".into()],
                    }),
                    stored_as: None,
                },
            ),
            ("resp_enrolled", Response::Enrolled),
            (
                "resp_record",
                Response::Record(StoredRecord {
                    user_id: "patient-α".into(),
                    report: report(),
                    signature: BeadSignature::from_counts(&[(ParticleKind::Bead78, 9)]),
                }),
            ),
            ("resp_integrity", Response::Integrity { intact: false }),
            ("resp_pong", Response::Pong),
            (
                "resp_error_deposed",
                Response::Error {
                    reason: "node deposed: a newer epoch is serving".into(),
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> medsen_impedance::SignalTrace {
        golden::trace()
    }

    fn every_request() -> Vec<Request> {
        golden::requests().into_iter().map(|(_, r)| r).collect()
    }

    fn every_response() -> Vec<Response> {
        golden::responses().into_iter().map(|(_, r)| r).collect()
    }

    #[test]
    fn every_request_round_trips_in_both_formats() {
        for request in every_request() {
            for format in [WireFormat::Binary, WireFormat::Json] {
                let bytes = encode_request(format, &request).expect("encodes");
                let back = decode_request(format, &bytes).expect("decodes");
                assert_eq!(back, request, "{format}");
            }
        }
    }

    #[test]
    fn every_response_round_trips_in_both_formats() {
        for response in every_response() {
            for format in [WireFormat::Binary, WireFormat::Json] {
                let bytes = encode_response(format, &response).expect("encodes");
                let back = decode_response(format, &bytes).expect("decodes");
                assert_eq!(back, response, "{format}");
            }
        }
    }

    #[test]
    fn request_and_response_kinds_do_not_cross_decode() {
        let req_bytes = request_to_bytes(&Request::Ping);
        assert!(matches!(
            response_from_bytes(&req_bytes),
            Err(WireError::WrongKind { .. })
        ));
        let resp_bytes = response_to_bytes(&Response::Pong);
        assert!(matches!(
            request_from_bytes(&resp_bytes),
            Err(WireError::WrongKind { .. })
        ));
    }

    #[test]
    fn deposed_detection_works_in_both_formats() {
        let deposed = Response::Error {
            reason: "node deposed: a newer epoch is serving".into(),
        };
        let healthy = Response::Pong;
        let plain_error = Response::Error {
            reason: "trace has no channels".into(),
        };
        for format in [WireFormat::Binary, WireFormat::Json] {
            let bytes = encode_response(format, &deposed).expect("encodes");
            assert!(reply_is_deposed(format, &bytes), "{format}");
            let bytes = encode_response(format, &healthy).expect("encodes");
            assert!(!reply_is_deposed(format, &bytes), "{format}");
            let bytes = encode_response(format, &plain_error).expect("encodes");
            assert!(!reply_is_deposed(format, &bytes), "{format}");
        }
        // Garbage is not deposed either.
        assert!(!reply_is_deposed(WireFormat::Binary, b"junk"));
        assert!(!reply_is_deposed(WireFormat::Json, &[0xFF, 0xFE]));
    }

    #[test]
    fn error_reply_encoding_is_infallible_and_decodable() {
        for format in [WireFormat::Binary, WireFormat::Json] {
            let bytes = encode_error(format, "queue full");
            match decode_response(format, &bytes).expect("decodes") {
                Response::Error { reason } => assert_eq!(reason, "queue full"),
                other => panic!("unexpected reply {other:?}"),
            }
        }
    }

    #[test]
    fn binary_bodies_are_much_smaller_than_json() {
        let request = Request::Analyze {
            trace: sample_trace(),
            authenticate: false,
        };
        let json = encode_request(WireFormat::Json, &request).expect("json");
        let binary = encode_request(WireFormat::Binary, &request).expect("binary");
        assert!(
            binary.len() < json.len(),
            "binary ({}) should undercut JSON ({})",
            binary.len(),
            json.len()
        );
    }
}
