//! The untrusted cloud side of MedSen: encrypted-signal analysis, cyto-coded
//! authentication, record storage — and the adversary models the cipher is
//! designed to defeat.
//!
//! The cloud is *curious but honest*: it faithfully runs peak analysis on
//! whatever trace it receives and returns peak statistics, but it may also
//! try to learn the true cell count (the diagnostic secret) from what it
//! sees. This crate implements both roles:
//!
//! * [`AnalysisServer`] — detrend → threshold peak detection → per-carrier
//!   feature extraction (the paper's Matlab pipeline, Sec. VI-C);
//! * [`AuthService`] — bead-statistics authentication of cyto-coded
//!   identifiers (Sec. V) plus the ciphertext integrity check;
//! * [`RecordStore`] — diagnosis records keyed by identifier, "stored in
//!   cloud for a later access by the patient's practitioner";
//! * [`cache`] — a content-addressed LRU of analysis reports, so
//!   byte-identical uploads (retries, duplicates) skip the DSP pipeline;
//! * [`shard`] — identifier-hash routing that splits the enrollment
//!   database and record store into independently locked shards, so
//!   enroll-heavy fleets scale past a single writer lock;
//! * [`persist`] — durable per-shard write-ahead logging over
//!   `medsen-store`: group-commit fsync batching, compaction snapshots,
//!   and crash recovery that rebuilds the shards from disk
//!   ([`CloudService::with_storage`]);
//! * [`replica`] — warm-standby pairing over `medsen-replica`: every
//!   WAL frame ships to a second full service after the local append,
//!   snapshot transfers catch up lagging standbys, and an epoch-fenced
//!   promotion path turns the standby into the serving primary
//!   ([`ReplicatedCloud`]);
//! * [`CloudService`] — the deployable request/response façade over the
//!   JSON wire the phone relays;
//! * [`adversary`] — the Sec. IV-A attacks: amplitude-signature grouping,
//!   width-signature grouping, and temporal burst clustering, with the
//!   divide-by-multiplication-factor count recovery they enable.

pub mod adversary;
pub mod api;
pub mod auth;
pub mod cache;
pub mod persist;
pub mod replica;
pub mod server;
pub mod service;
pub mod shard;
pub mod storage;
pub mod wire;

pub use adversary::{
    AmplitudeGroupingAttack, AttackOutcome, BurstClusteringAttack, SignatureDistinguisher,
    WidthGroupingAttack,
};
pub use api::{AnalyzedPeak, PeakReport};
pub use auth::{AuthDecision, AuthService, BeadSignature};
pub use cache::{trace_digest, CacheStats, ResponseCache, DEFAULT_CACHE_CAPACITY};
pub use persist::{StorageConfig, StorageError, WalEntry};
pub use replica::{ReplicaShardLag, ReplicaStatus, ReplicatedCloud};
pub use server::AnalysisServer;
pub use service::{CloudService, Request, Response, DEFAULT_SHARD_COUNT};
pub use shard::{identity_hash, shard_index, EnrollJournal, ShardStats, ShardedAuth, MAX_SHARDS};
pub use storage::{RecordId, RecordJournal, RecordStore, StoredRecord};
pub use wire::{
    decode_request, decode_response, encode_error, encode_request, encode_response,
    reply_is_deposed, REQUEST_KIND, RESPONSE_KIND,
};

// Durability knobs come from medsen-store; re-exported so front-ends
// (gateway, CLI) configure persistence without a direct dependency.
pub use medsen_store::{FlushPolicy, WalStats};
