//! The cloud service façade: one request/response endpoint tying together
//! analysis, authentication, and record storage.
//!
//! The prototype's cloud is "a powerful server that runs Matlab"; a
//! deployable service needs an actual protocol. [`CloudService`] dispatches
//! JSON-encoded [`Request`]s (as carried by the phone's accessory/network
//! frames) to the analysis server, the auth service, and the record store,
//! and returns JSON-encoded [`Response`]s. Everything stays inside the
//! curious-but-honest boundary: requests carry ciphertext traces and bead
//! statistics, never key material.

use crate::api::PeakReport;
use crate::auth::{self, AuthDecision, BeadSignature};
use crate::cache::{trace_digest, CacheStats, ResponseCache, DEFAULT_CACHE_CAPACITY};
use crate::persist::{self, CloudStore, StorageConfig, StorageError};
use crate::server::AnalysisServer;
use crate::shard::{shard_index, ShardStats, ShardedAuth};
use crate::storage::{RecordId, RecordStore, StoredRecord};
use medsen_dsp::classify::Classifier;
use medsen_impedance::SignalTrace;
use medsen_store::{FlushPolicy, WalStats};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// A client request to the cloud service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Analyze an encrypted trace; optionally authenticate and store the
    /// result under the recovered identifier.
    Analyze {
        /// The encrypted multi-channel trace.
        trace: SignalTrace,
        /// Whether to classify beads and authenticate (plaintext sessions).
        authenticate: bool,
    },
    /// Enroll an identifier's expected bead signature.
    Enroll {
        /// Cloud-side identifier (an anonymous pipette alias or a user id).
        identifier: String,
        /// Expected bead counts.
        signature: BeadSignature,
    },
    /// Fetch a stored record by id.
    Fetch {
        /// The record to fetch.
        record_id: RecordId,
    },
    /// Verify a stored record's identifier binding (Sec. V integrity check).
    VerifyIntegrity {
        /// The record to verify.
        record_id: RecordId,
    },
    /// Service liveness probe.
    Ping,
}

/// The service's reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Analysis outcome (and, when requested, the auth decision and the id
    /// of the stored record).
    Analyzed {
        /// The peak statistics (the only thing the cloud ever "knows").
        report: PeakReport,
        /// Authentication outcome when `authenticate` was set.
        auth: Option<AuthDecision>,
        /// Record id when the result was stored (accepted auth only).
        stored_as: Option<RecordId>,
    },
    /// Enrollment acknowledged.
    Enrolled,
    /// A fetched record.
    Record(StoredRecord),
    /// Integrity verdict for a stored record.
    Integrity {
        /// Whether the record still matches its identifier.
        intact: bool,
    },
    /// Liveness reply.
    Pong,
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        reason: String,
    },
}

/// Default shard count for [`CloudService::new`]: enough independent
/// writer locks that a clinic-sized gateway worker pool never serializes
/// on enrollment, cheap enough that a single-dongle deployment does not
/// notice.
pub const DEFAULT_SHARD_COUNT: usize = 8;

/// The assembled cloud service.
///
/// Every stage is safe to drive from many threads at once through
/// [`CloudService::handle_shared`]: analysis is pure, and the enrollment
/// database and record store are split into [`CloudService::shard_count`]
/// independently locked shards routed by the stable identifier hash
/// ([`crate::shard::shard_index`]) — writers for different users take
/// different locks and proceed in parallel. The gateway worker pool
/// relies on this to serve concurrent dongle sessions against one shared
/// service instance, and aligns its per-shard worker lanes with the same
/// routing hash.
#[derive(Debug)]
pub struct CloudService {
    analysis: AnalysisServer,
    auth: ShardedAuth,
    store: RecordStore,
    classifier: Option<Classifier>,
    /// Durable-storage handle when the service was opened with
    /// [`CloudService::with_storage`]; `None` keeps the memory-only
    /// behavior (and cost) of the previous tiers.
    persist: Option<Arc<CloudStore>>,
    /// Appends per shard between automatic compaction snapshots
    /// (0 = never compact automatically).
    snapshot_every: u64,
    /// Content-addressed LRU of analysis reports: identical trace bytes
    /// (dongle retries, duplicate submissions) skip the DSP pipeline.
    cache: ResponseCache,
}

impl CloudService {
    /// Creates a service with the paper-default analysis pipeline and
    /// [`DEFAULT_SHARD_COUNT`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARD_COUNT)
    }

    /// Creates a service whose enrollment database and record store are
    /// split into `shard_count` independently locked shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero or exceeds
    /// [`MAX_SHARDS`](crate::shard::MAX_SHARDS).
    pub fn with_shards(shard_count: usize) -> Self {
        Self {
            analysis: AnalysisServer::paper_default(),
            auth: ShardedAuth::new(shard_count),
            store: RecordStore::with_shards(shard_count),
            classifier: None,
            persist: None,
            snapshot_every: 0,
            cache: ResponseCache::new(DEFAULT_CACHE_CAPACITY),
        }
    }

    /// Creates a durable service: every enrollment and record mutation is
    /// journaled to a per-shard write-ahead log under `dir` before it is
    /// applied, and any state already on disk is recovered first.
    ///
    /// `dir` must have been written by a `shard_count`-way service (or be
    /// empty/new); opening logs from a different layout fails with
    /// [`StorageError::Wal`] — see the `medsen-store` layout stamps.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be opened or the recovered state is
    /// undecodable / layout-inconsistent. After a successful open, write
    /// failures are **fail-stop** (panic) rather than silent — see
    /// [`crate::persist`].
    pub fn with_storage(
        dir: impl AsRef<Path>,
        shard_count: usize,
        policy: FlushPolicy,
    ) -> Result<Self, StorageError> {
        Self::with_storage_config(StorageConfig::new(dir.as_ref()).flush(policy), shard_count)
    }

    /// [`CloudService::with_storage`] with full control over the
    /// compaction threshold.
    pub fn with_storage_config(
        config: StorageConfig,
        shard_count: usize,
    ) -> Result<Self, StorageError> {
        let (auth, store, persist) = persist::open_storage(&config, shard_count)?;
        Ok(Self {
            analysis: AnalysisServer::paper_default(),
            auth,
            store,
            classifier: None,
            persist: Some(persist),
            snapshot_every: config.snapshot_every,
            cache: ResponseCache::new(DEFAULT_CACHE_CAPACITY),
        })
    }

    /// Pairs this durable service (as primary) with a durable `standby`:
    /// every journaled WAL frame ships to the standby after the local
    /// append, snapshot transfers catch up lagging shards, and the
    /// returned [`ReplicatedCloud`] owns the fenced promotion path. See
    /// [`crate::replica`].
    ///
    /// # Errors
    ///
    /// Fails if the initial base snapshot transfer cannot be cut.
    ///
    /// # Panics
    ///
    /// Panics if either service is memory-only or the shard layouts
    /// disagree (wiring bugs, not runtime conditions).
    pub fn with_replication(
        self,
        standby: CloudService,
    ) -> Result<Arc<crate::replica::ReplicatedCloud>, StorageError> {
        crate::replica::ReplicatedCloud::pair(self, standby)
    }

    /// Whether the service journals to durable storage.
    pub fn is_durable(&self) -> bool {
        self.persist.is_some()
    }

    /// Whether replication has deposed this node: a ship was rejected
    /// for carrying a stale epoch, so a promoted standby is serving and
    /// this node's state can no longer be trusted. Always `false` for an
    /// unreplicated service.
    pub fn is_fenced(&self) -> bool {
        self.persist.as_ref().is_some_and(|p| p.is_fenced())
    }

    /// The durable-storage handle, for the replication wiring.
    pub(crate) fn cloud_store(&self) -> Option<&Arc<CloudStore>> {
        self.persist.as_ref()
    }

    /// Compacts one shard immediately (snapshot + log reset). With a
    /// replication hook attached this doubles as a snapshot transfer,
    /// which is how detached shards catch up.
    pub(crate) fn compact_shard_now(&self, shard: usize) -> Result<(), StorageError> {
        if let Some(persist) = &self.persist {
            persist::compact_shard(&self.auth, &self.store, persist, shard)?;
        }
        Ok(())
    }

    /// Applies one replicated WAL frame on a warm standby: decode,
    /// append to this node's own WAL (write-ahead), then replay into the
    /// in-memory shards through the idempotent restore paths.
    pub(crate) fn apply_replicated_frame(
        &self,
        shard: u32,
        kind: u8,
        payload: &[u8],
    ) -> Result<(), String> {
        let persist = self.persist.as_ref().ok_or("standby is not durable")?;
        let json = std::str::from_utf8(payload)
            .map_err(|_| "replicated frame is not UTF-8".to_string())?;
        let entry: persist::WalEntry = medsen_phone_json::from_json(json)
            .map_err(|e| format!("replicated frame does not decode: {e}"))?;
        if entry.kind() != kind {
            return Err(format!(
                "frame kind {kind} disagrees with its payload ({})",
                entry.kind()
            ));
        }
        persist.append_replicated(shard, kind, payload)?;
        persist::replay_entry(&self.auth, &self.store, shard, self.shard_count(), entry)
            .map_err(|e| e.to_string())
    }

    /// Installs a replicated snapshot on a warm standby: durable first
    /// (tmp + fsync + rename, resetting this node's log generation),
    /// then replayed wholesale into the in-memory shards.
    pub(crate) fn install_replicated_snapshot(
        &self,
        shard: u32,
        blob: &[u8],
    ) -> Result<(), String> {
        let persist = self.persist.as_ref().ok_or("standby is not durable")?;
        persist.install_replicated_snapshot(shard, blob)?;
        persist::replay_snapshot_blob(&self.auth, &self.store, shard, self.shard_count(), blob)
            .map_err(|e| e.to_string())
    }

    /// Cumulative write-ahead-log counters, or `None` for a memory-only
    /// service.
    pub fn storage_stats(&self) -> Option<WalStats> {
        self.persist.as_ref().map(|p| p.stats())
    }

    /// Forces every shard's unsynced journal appends to disk regardless
    /// of the flush policy. Returns fsyncs issued (0 for a memory-only
    /// service or when nothing was pending).
    ///
    /// # Panics
    ///
    /// Panics if the flush fails (fail-stop, like the journal itself).
    pub fn flush_storage(&self) -> u64 {
        self.persist.as_ref().map_or(0, |p| p.flush())
    }

    /// Snapshots every shard's state and resets its log, regardless of
    /// the automatic threshold. No-op for a memory-only service.
    pub fn compact_storage(&self) -> Result<(), StorageError> {
        if let Some(persist) = &self.persist {
            for shard in 0..self.shard_count() {
                persist::compact_shard(&self.auth, &self.store, persist, shard)?;
            }
        }
        Ok(())
    }

    /// Compacts `shard` if its log has grown past the configured
    /// threshold. Called on the write paths after the shard lock is
    /// released, so the compactor can take both of the shard's locks.
    fn maybe_compact(&self, shard: usize) {
        let Some(persist) = &self.persist else { return };
        if self.snapshot_every == 0 {
            return;
        }
        if persist.appends_since_snapshot(shard) >= self.snapshot_every {
            // Compaction failure is fail-stop for the same reason journal
            // failure is: continuing would let the log grow unboundedly
            // on a disk that is already refusing writes.
            persist::compact_shard(&self.auth, &self.store, persist, shard)
                .unwrap_or_else(|e| panic!("cannot compact shard {shard} (failing stop): {e}"));
        }
    }

    /// How many ways the write path is sharded.
    pub fn shard_count(&self) -> usize {
        self.auth.shard_count()
    }

    /// Per-shard occupancy and lock-contention counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let mut stats = self.auth.stats();
        for (stat, records) in stats.iter_mut().zip(self.store.shard_lens()) {
            stat.records = records;
        }
        stats
    }

    /// Installs the bead/cell classifier (required for authentication).
    pub fn install_classifier(&mut self, classifier: Classifier) {
        self.classifier = Some(classifier);
    }

    /// Direct access to the record store (for operational tooling).
    pub fn store(&self) -> &RecordStore {
        &self.store
    }

    /// Response-cache hit/miss/occupancy counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Handles one request.
    pub fn handle(&mut self, request: Request) -> Response {
        self.handle_shared(request)
    }

    /// Handles one request through a shared reference.
    ///
    /// This is the entry point concurrent front-ends (the gateway worker
    /// pool) use; `handle` is the single-threaded convenience wrapper.
    pub fn handle_shared(&self, request: Request) -> Response {
        // A deposed primary fails closed on everything, reads included:
        // once a ship was rejected for a stale epoch, a promoted standby
        // may have moved past this node's state.
        if self.is_fenced() {
            return Response::Error {
                reason: "node deposed: a newer epoch is serving".into(),
            };
        }
        match request {
            Request::Ping => Response::Pong,
            Request::Enroll {
                identifier,
                signature,
            } => {
                let shard = shard_index(&identifier, self.shard_count());
                self.auth.enroll(identifier, signature);
                self.maybe_compact(shard);
                Response::Enrolled
            }
            Request::Fetch { record_id } => match self.store.fetch(record_id) {
                Some(record) => Response::Record(record),
                None => Response::Error {
                    reason: format!("no record {record_id:?}"),
                },
            },
            Request::VerifyIntegrity { record_id } => match self.store.fetch(record_id) {
                Some(record) => Response::Integrity {
                    intact: self
                        .auth
                        .verify_integrity(&record.user_id, &record.signature),
                },
                None => Response::Error {
                    reason: format!("no record {record_id:?}"),
                },
            },
            Request::Analyze {
                trace,
                authenticate,
            } => {
                if trace.channels().is_empty() {
                    return Response::Error {
                        reason: "trace has no channels".into(),
                    };
                }
                // Analysis is pure, so identical trace content yields the
                // cached report; only misses pay the DSP pipeline (and
                // only misses record an analysis span).
                let digest = trace_digest(&trace);
                let report = match self.cache.lookup(digest) {
                    Some(report) => report,
                    None => {
                        let started = std::time::Instant::now();
                        let report = self.analysis.analyze(&trace);
                        medsen_telemetry::record_since(
                            medsen_telemetry::Stage::Analysis,
                            0,
                            started,
                        );
                        self.cache.insert(digest, report.clone());
                        report
                    }
                };
                if !authenticate {
                    return Response::Analyzed {
                        report,
                        auth: None,
                        stored_as: None,
                    };
                }
                let Some(classifier) = &self.classifier else {
                    return Response::Error {
                        reason: "no classifier installed for authentication".into(),
                    };
                };
                // Measurement is lock-free (pure function of the report);
                // authentication takes per-shard read locks only.
                let signature = auth::measure_signature(&report, classifier);
                let decision = self.auth.authenticate(&signature);
                let stored_as = if let AuthDecision::Accepted { user_id } = &decision {
                    let id = self.store.store(StoredRecord {
                        user_id: user_id.clone(),
                        report: report.clone(),
                        signature,
                    });
                    self.maybe_compact(id.shard());
                    Some(id)
                } else {
                    None
                };
                Response::Analyzed {
                    report,
                    auth: Some(decision),
                    stored_as,
                }
            }
        }
    }

    /// Handles a JSON-encoded request, returning a JSON-encoded response —
    /// the exact byte-level interface behind the phone's network frames.
    pub fn handle_json(&mut self, request_json: &str) -> String {
        self.handle_json_shared(request_json)
    }

    /// Shared-reference counterpart of [`CloudService::handle_json`].
    pub fn handle_json_shared(&self, request_json: &str) -> String {
        let response = match medsen_phone_json::from_json::<Request>(request_json) {
            Ok(request) => self.handle_shared(request),
            Err(e) => Response::Error {
                reason: format!("malformed request: {e}"),
            },
        };
        medsen_phone_json::to_json(&response)
            .unwrap_or_else(|e| format!("{{\"Error\":{{\"reason\":\"encode failure: {e}\"}}}}"))
    }

    /// Handles one encoded request body in the selected wire format,
    /// returning the reply in the same format — the byte-level service
    /// entry the gateway drives. Total: a malformed body becomes an
    /// encoded `Error` reply, never a panic.
    ///
    /// Trace context is transparent end to end: a request carrying a
    /// trace id gets a reply carrying the same id, and an untraced
    /// request gets the byte-identical pre-trace-context reply.
    pub fn handle_wire_shared(&self, format: medsen_wire::WireFormat, body: &[u8]) -> Vec<u8> {
        let (response, trace) = match crate::wire::decode_request_traced(format, body) {
            Ok((request, trace)) => (self.handle_shared(request), trace.unwrap_or(0)),
            Err(e) => (
                Response::Error {
                    reason: format!("malformed request: {e}"),
                },
                0,
            ),
        };
        crate::wire::encode_response_traced(format, &response, trace)
            .unwrap_or_else(|e| crate::wire::encode_error(format, &format!("encode failure: {e}")))
    }
}

impl Default for CloudService {
    fn default() -> Self {
        Self::new()
    }
}

// The JSON codec lives in medsen-phone (the relay owns the wire format);
// alias it locally to keep call sites readable.
use medsen_phone as medsen_phone_json;

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_impedance::{PulseSpec, TraceSynthesizer};
    use medsen_microfluidics::ParticleKind;
    use medsen_units::Seconds;

    fn trace(n_pulses: usize) -> SignalTrace {
        let mut synth = TraceSynthesizer::clean(1);
        let pulses: Vec<PulseSpec> = (0..n_pulses)
            .map(|i| PulseSpec::unipolar(Seconds::new(0.5 + i as f64), Seconds::new(0.02), 0.01))
            .collect();
        synth.render(&pulses, Seconds::new(n_pulses as f64 + 1.0))
    }

    #[test]
    fn ping_pongs() {
        let mut svc = CloudService::new();
        assert_eq!(svc.handle(Request::Ping), Response::Pong);
    }

    #[test]
    fn analyze_without_auth_reports_peaks() {
        let mut svc = CloudService::new();
        let response = svc.handle(Request::Analyze {
            trace: trace(4),
            authenticate: false,
        });
        match response {
            Response::Analyzed {
                report,
                auth,
                stored_as,
            } => {
                assert_eq!(report.peak_count(), 4);
                assert!(auth.is_none());
                assert!(stored_as.is_none());
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn auth_without_classifier_errors() {
        let mut svc = CloudService::new();
        let response = svc.handle(Request::Analyze {
            trace: trace(1),
            authenticate: true,
        });
        assert!(matches!(response, Response::Error { .. }));
    }

    #[test]
    fn fetch_unknown_record_errors() {
        let mut svc = CloudService::new();
        assert!(matches!(
            svc.handle(Request::Fetch {
                record_id: RecordId(99)
            }),
            Response::Error { .. }
        ));
    }

    #[test]
    fn enroll_then_integrity_flow() {
        let mut svc = CloudService::new();
        let signature =
            BeadSignature::from_counts(&[(ParticleKind::Bead358, 40), (ParticleKind::Bead78, 10)]);
        assert_eq!(
            svc.handle(Request::Enroll {
                identifier: "pipette-7".into(),
                signature: signature.clone(),
            }),
            Response::Enrolled
        );
        // Store a record manually and verify it.
        let id = svc.store().store(StoredRecord {
            user_id: "pipette-7".into(),
            report: PeakReport {
                peaks: vec![],
                carriers_hz: vec![5e5],
                sample_rate_hz: 450.0,
                duration_s: 1.0,
                noise_sigma: 3.0e-4,
            },
            signature,
        });
        assert_eq!(
            svc.handle(Request::VerifyIntegrity { record_id: id }),
            Response::Integrity { intact: true }
        );
    }

    #[test]
    fn json_interface_round_trips() {
        let mut svc = CloudService::new();
        let request = medsen_phone::to_json(&Request::Ping).expect("encodes");
        let response = svc.handle_json(&request);
        let parsed: Response = medsen_phone::from_json(&response).expect("decodes");
        assert_eq!(parsed, Response::Pong);
    }

    #[test]
    fn json_interface_rejects_garbage_gracefully() {
        let mut svc = CloudService::new();
        let response = svc.handle_json("not json at all");
        let parsed: Response = medsen_phone::from_json(&response).expect("decodes");
        assert!(matches!(parsed, Response::Error { .. }));
    }

    #[test]
    fn reenroll_replaces_the_signature() {
        let mut svc = CloudService::new();
        let first = BeadSignature::from_counts(&[(ParticleKind::Bead358, 40)]);
        let second = BeadSignature::from_counts(&[(ParticleKind::Bead358, 80)]);
        svc.handle(Request::Enroll {
            identifier: "pipette-1".into(),
            signature: first.clone(),
        });
        let id = svc.store().store(StoredRecord {
            user_id: "pipette-1".into(),
            report: PeakReport {
                peaks: vec![],
                carriers_hz: vec![5e5],
                sample_rate_hz: 450.0,
                duration_s: 1.0,
                noise_sigma: 3.0e-4,
            },
            signature: first,
        });
        assert_eq!(
            svc.handle(Request::VerifyIntegrity { record_id: id }),
            Response::Integrity { intact: true }
        );
        // Re-enrolling the same identifier replaces the stored expectation:
        // the old record no longer verifies.
        assert_eq!(
            svc.handle(Request::Enroll {
                identifier: "pipette-1".into(),
                signature: second,
            }),
            Response::Enrolled
        );
        assert_eq!(
            svc.handle(Request::VerifyIntegrity { record_id: id }),
            Response::Integrity { intact: false }
        );
    }

    #[test]
    fn verify_integrity_of_unknown_record_errors() {
        let mut svc = CloudService::new();
        match svc.handle(Request::VerifyIntegrity {
            record_id: RecordId(12345),
        }) {
            Response::Error { reason } => assert!(reason.contains("12345")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn analyze_of_channelless_trace_errors() {
        let mut svc = CloudService::new();
        let empty = SignalTrace::new(medsen_units::Hertz::new(450.0), vec![]);
        match svc.handle(Request::Analyze {
            trace: empty,
            authenticate: false,
        }) {
            Response::Error { reason } => assert!(reason.contains("no channels")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn json_with_wrong_shape_yields_error_response() {
        let mut svc = CloudService::new();
        // Valid JSON, but not a valid Request: unknown variant and a
        // variant missing its payload fields.
        for bad in ["{\"Reboot\":{}}", "{\"Analyze\":{}}", "42", "[]"] {
            let response = svc.handle_json(bad);
            let parsed: Response = medsen_phone::from_json(&response).expect("decodes");
            match parsed {
                Response::Error { reason } => {
                    assert!(
                        reason.contains("malformed request"),
                        "for input {bad}: {reason}"
                    )
                }
                other => panic!("for input {bad}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn handle_shared_serves_concurrent_callers() {
        let svc = CloudService::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let svc = &svc;
                scope.spawn(move || {
                    for i in 0..10 {
                        let sig =
                            BeadSignature::from_counts(&[(ParticleKind::Bead358, 10 + t * 10 + i)]);
                        assert_eq!(
                            svc.handle_shared(Request::Enroll {
                                identifier: format!("user-{t}"),
                                signature: sig,
                            }),
                            Response::Enrolled
                        );
                        assert_eq!(svc.handle_shared(Request::Ping), Response::Pong);
                    }
                });
            }
        });
        // Every thread's last enrollment is visible afterwards.
        for t in 0..8u64 {
            let sig = BeadSignature::from_counts(&[(ParticleKind::Bead358, 10 + t * 10 + 9)]);
            // Integrity check against the enrolled map via a fresh record.
            let id = svc.store().store(StoredRecord {
                user_id: format!("user-{t}"),
                report: PeakReport {
                    peaks: vec![],
                    carriers_hz: vec![5e5],
                    sample_rate_hz: 450.0,
                    duration_s: 1.0,
                    noise_sigma: 3.0e-4,
                },
                signature: sig,
            });
            assert_eq!(
                svc.handle_shared(Request::VerifyIntegrity { record_id: id }),
                Response::Integrity { intact: true },
                "thread {t}'s final enrollment must have won"
            );
        }
    }

    #[test]
    fn service_defaults_to_sharded_state() {
        let svc = CloudService::new();
        assert_eq!(svc.shard_count(), DEFAULT_SHARD_COUNT);
        assert_eq!(svc.shard_stats().len(), DEFAULT_SHARD_COUNT);
        assert_eq!(CloudService::with_shards(3).shard_count(), 3);
    }

    #[test]
    fn shard_stats_track_enrollments_and_records() {
        let svc = CloudService::with_shards(4);
        svc.handle_shared(Request::Enroll {
            identifier: "alice".into(),
            signature: BeadSignature::from_counts(&[(ParticleKind::Bead358, 40)]),
        });
        svc.store().store(StoredRecord {
            user_id: "alice".into(),
            report: PeakReport {
                peaks: vec![],
                carriers_hz: vec![5e5],
                sample_rate_hz: 450.0,
                duration_s: 1.0,
                noise_sigma: 3.0e-4,
            },
            signature: BeadSignature::from_counts(&[(ParticleKind::Bead358, 40)]),
        });
        let stats = svc.shard_stats();
        assert_eq!(stats.iter().map(|s| s.enrolled).sum::<usize>(), 1);
        assert_eq!(stats.iter().map(|s| s.records).sum::<usize>(), 1);
        assert_eq!(stats.iter().map(|s| s.write_acquisitions).sum::<u64>(), 1);
        // Enrollment and its record live on the same shard.
        let shard = crate::shard::shard_index("alice", 4);
        assert_eq!(stats[shard].enrolled, 1);
        assert_eq!(stats[shard].records, 1);
    }

    /// Regression for the `handle` / `handle_shared` unification: both
    /// entry points (and both JSON wrappers) must be the same dispatch
    /// path, observable as byte-identical JSON for an identical request
    /// stream against identically prepared services.
    #[test]
    fn handle_and_handle_shared_produce_identical_json() {
        let mut via_mut = CloudService::new();
        let via_shared = CloudService::new();
        let requests = [
            Request::Ping,
            Request::Enroll {
                identifier: "pipette-7".into(),
                signature: BeadSignature::from_counts(&[(ParticleKind::Bead358, 40)]),
            },
            Request::Analyze {
                trace: trace(3),
                authenticate: false,
            },
            Request::Analyze {
                trace: trace(2),
                authenticate: true, // no classifier → error path
            },
            Request::Fetch {
                record_id: RecordId(7),
            },
            Request::VerifyIntegrity {
                record_id: RecordId(7),
            },
        ];
        for request in requests {
            let json = medsen_phone::to_json(&request).expect("encodes");
            assert_eq!(
                via_mut.handle_json(&json),
                via_shared.handle_json_shared(&json),
                "dispatch paths diverged for {request:?}"
            );
            // The non-JSON entry points agree too.
            assert_eq!(
                via_mut.handle(request.clone()),
                via_shared.handle_shared(request)
            );
        }
        // Both paths mutated the same state the same way.
        assert_eq!(via_mut.store().len(), via_shared.store().len());
    }

    /// Ids minted by a service with a different shard layout must fail
    /// closed through the request API: an error response, never a panic,
    /// never another user's record.
    #[test]
    fn foreign_shard_ids_error_through_the_service() {
        let eight = CloudService::with_shards(8);
        let two = CloudService::with_shards(2);
        let record = |user: &str| StoredRecord {
            user_id: user.into(),
            report: PeakReport {
                peaks: vec![],
                carriers_hz: vec![5e5],
                sample_rate_hz: 450.0,
                duration_s: 1.0,
                noise_sigma: 3.0e-4,
            },
            signature: BeadSignature::from_counts(&[(ParticleKind::Bead358, 40)]),
        };
        for i in 0..8 {
            two.store().store(record(&format!("user-{i}")));
        }
        let foreign = eight.store().store(record("alice"));
        for request in [
            Request::Fetch { record_id: foreign },
            Request::VerifyIntegrity { record_id: foreign },
        ] {
            assert!(
                matches!(two.handle_shared(request), Response::Error { .. }),
                "foreign id {foreign:?} must fail closed"
            );
        }
    }

    #[test]
    fn sharded_concurrent_enrolls_and_stores_do_not_collide() {
        let svc = CloudService::with_shards(8);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let svc = &svc;
                scope.spawn(move || {
                    for i in 0..20u64 {
                        let user = format!("user-{t}");
                        let sig =
                            BeadSignature::from_counts(&[(ParticleKind::Bead358, 10 + t + i)]);
                        assert_eq!(
                            svc.handle_shared(Request::Enroll {
                                identifier: user.clone(),
                                signature: sig.clone(),
                            }),
                            Response::Enrolled
                        );
                        let id = svc.store().store(StoredRecord {
                            user_id: user.clone(),
                            report: PeakReport {
                                peaks: vec![],
                                carriers_hz: vec![5e5],
                                sample_rate_hz: 450.0,
                                duration_s: 1.0,
                                noise_sigma: 3.0e-4,
                            },
                            signature: sig,
                        });
                        // Another user's traffic never aliases our id.
                        assert_eq!(svc.store().fetch(id).expect("stored").user_id, user);
                    }
                });
            }
        });
        assert_eq!(svc.store().len(), 160);
        for t in 0..8u64 {
            assert_eq!(svc.store().records_of(&format!("user-{t}")).len(), 20);
        }
    }

    /// Identical trace content must be answered from the response cache —
    /// and the cached report must be observationally identical to a fresh
    /// analysis.
    #[test]
    fn repeated_analyze_hits_the_response_cache() {
        let svc = CloudService::new();
        let request = Request::Analyze {
            trace: trace(3),
            authenticate: false,
        };
        let first = svc.handle_shared(request.clone());
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));
        let second = svc.handle_shared(request);
        assert_eq!(first, second, "cached report is byte-for-byte the same");
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // Different content misses again.
        svc.handle_shared(Request::Analyze {
            trace: trace(4),
            authenticate: false,
        });
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    }

    #[test]
    fn analyze_request_survives_the_json_wire() {
        let mut svc = CloudService::new();
        let request = Request::Analyze {
            trace: trace(3),
            authenticate: false,
        };
        let encoded = medsen_phone::to_json(&request).expect("encodes");
        let response = svc.handle_json(&encoded);
        let parsed: Response = medsen_phone::from_json(&response).expect("decodes");
        match parsed {
            Response::Analyzed { report, .. } => assert_eq!(report.peak_count(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }
}
