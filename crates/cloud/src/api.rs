//! Wire types between the phone/cloud and the sensor.
//!
//! These types are the *entire* vocabulary the untrusted side speaks: note
//! the absence of any key material, electrode identity, or plaintext count —
//! the server can only ever hand back peak statistics.

use medsen_wire::{Reader, Wire, WireError, Writer};
use serde::{Deserialize, Serialize};

/// One peak as analyzed by the server: timing, shape, and per-carrier
/// amplitudes (the classification features of Fig. 16).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzedPeak {
    /// Peak timestamp, seconds from acquisition start.
    pub time_s: f64,
    /// Depth on the reference (lowest) carrier.
    pub amplitude: f64,
    /// Width in seconds.
    pub width_s: f64,
    /// Depth on every carrier channel, in channel order.
    pub features: Vec<f64>,
}

impl AnalyzedPeak {
    /// Converts to the minimal peak form the sensor-side decryptor consumes.
    pub fn to_reported(&self) -> medsen_sensor::ReportedPeak {
        medsen_sensor::ReportedPeak {
            time_s: self.time_s,
            amplitude: self.amplitude,
            width_s: self.width_s,
        }
    }
}

/// The server's full analysis result for one acquisition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeakReport {
    /// All detected peaks, in time order.
    pub peaks: Vec<AnalyzedPeak>,
    /// Carrier frequencies (Hz) the features are indexed by.
    pub carriers_hz: Vec<f64>,
    /// Output sampling rate of the analyzed trace.
    pub sample_rate_hz: f64,
    /// Analyzed duration in seconds.
    pub duration_s: f64,
    /// Robust noise-floor estimate (σ) of the reference channel's depth
    /// signal. A deployment alarms when this leaves the sensor's normal
    /// band — the explicit failure signature for a degraded sensor.
    #[serde(default)]
    pub noise_sigma: f64,
}

impl PeakReport {
    /// Number of detected peaks — the only "count" the cloud ever knows.
    pub fn peak_count(&self) -> usize {
        self.peaks.len()
    }

    /// Peaks converted for the sensor-side decryptor.
    pub fn reported_peaks(&self) -> Vec<medsen_sensor::ReportedPeak> {
        self.peaks.iter().map(AnalyzedPeak::to_reported).collect()
    }

    /// Index of the carrier nearest `hz`, if any.
    pub fn carrier_index(&self, hz: f64) -> Option<usize> {
        self.carriers_hz
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (*a - hz)
                    .abs()
                    .partial_cmp(&(*b - hz).abs())
                    .expect("finite carriers")
            })
            .map(|(i, _)| i)
    }
}

impl Wire for AnalyzedPeak {
    fn wire_encode(&self, w: &mut Writer) {
        w.put_f64(self.time_s);
        w.put_f64(self.amplitude);
        w.put_f64(self.width_s);
        self.features.wire_encode(w);
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AnalyzedPeak {
            time_s: r.get_f64()?,
            amplitude: r.get_f64()?,
            width_s: r.get_f64()?,
            features: Vec::wire_decode(r)?,
        })
    }
}

impl Wire for PeakReport {
    fn wire_encode(&self, w: &mut Writer) {
        self.peaks.wire_encode(w);
        self.carriers_hz.wire_encode(w);
        w.put_f64(self.sample_rate_hz);
        w.put_f64(self.duration_s);
        w.put_f64(self.noise_sigma);
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PeakReport {
            peaks: Vec::wire_decode(r)?,
            carriers_hz: Vec::wire_decode(r)?,
            sample_rate_hz: r.get_f64()?,
            duration_s: r.get_f64()?,
            noise_sigma: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak(t: f64) -> AnalyzedPeak {
        AnalyzedPeak {
            time_s: t,
            amplitude: 0.004,
            width_s: 0.02,
            features: vec![0.004, 0.003],
        }
    }

    #[test]
    fn report_counts_and_converts() {
        let report = PeakReport {
            peaks: vec![peak(0.1), peak(0.2)],
            carriers_hz: vec![5e5, 2.5e6],
            sample_rate_hz: 450.0,
            duration_s: 1.0,
            noise_sigma: 3.0e-4,
        };
        assert_eq!(report.peak_count(), 2);
        let reported = report.reported_peaks();
        assert_eq!(reported.len(), 2);
        assert_eq!(reported[0].time_s, 0.1);
    }

    #[test]
    fn carrier_lookup() {
        let report = PeakReport {
            peaks: vec![],
            carriers_hz: vec![5e5, 2.5e6],
            sample_rate_hz: 450.0,
            duration_s: 1.0,
            noise_sigma: 3.0e-4,
        };
        assert_eq!(report.carrier_index(2.4e6), Some(1));
        assert_eq!(report.carrier_index(1e3), Some(0));
    }

    #[test]
    fn report_is_wire_safe() {
        // The report crosses the network: it must be serializable in both
        // directions and carry no key material by type (checked at compile
        // time — `PeakReport` cannot even name `CipherKey`).
        fn assert_wire<T: Serialize + for<'de> Deserialize<'de> + Send + Sync>() {}
        assert_wire::<PeakReport>();
        assert_wire::<AnalyzedPeak>();
    }
}
