//! Cloud record storage.
//!
//! "The diagnostic information can be returned to a patient or stored in
//! cloud for a later access by the patient's practitioner" (Sec. II).
//! Records are keyed by the cyto-coded identifier's owner and store only
//! ciphertext-side artifacts: the peak report and the signature that binds it
//! to an identity.
//!
//! The store is split into [`RecordStore::shard_count`] independently
//! locked shards routed by the stable identifier hash
//! ([`crate::shard::shard_index`]), so writers for different users never
//! contend. A [`RecordId`] encodes the shard it lives on *and* the shard
//! count of the store that minted it, so an id presented to a store with
//! a different layout fails closed (`None` / `false`) instead of
//! panicking or aliasing another user's record.

use crate::api::PeakReport;
use crate::auth::BeadSignature;
use crate::shard::{shard_index, MAX_SHARDS};
use medsen_wire::{Reader, Wire, WireError, Writer};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bits of a [`RecordId`] holding the per-shard sequence number.
const SEQUENCE_BITS: u32 = 48;
/// Mask selecting the sequence field.
const SEQUENCE_MASK: u64 = (1 << SEQUENCE_BITS) - 1;
/// Bit offset of the `shard_count - 1` field.
const COUNT_SHIFT: u32 = SEQUENCE_BITS;
/// Bit offset of the shard-index field.
const SHARD_SHIFT: u32 = SEQUENCE_BITS + 8;

/// An opaque record identifier.
///
/// Layout (most significant first): 8 bits shard index, 8 bits
/// `shard_count - 1` of the minting store, 48 bits per-shard sequence
/// number. A single-shard store therefore mints plain sequential integers
/// `0, 1, 2, …`, bit-identical to the pre-sharding format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u64);

impl RecordId {
    /// Largest per-shard sequence number an id can carry.
    pub const MAX_SEQUENCE: u64 = SEQUENCE_MASK;

    /// Builds an id from its fields.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count`, `shard_count` is outside
    /// `1..=`[`MAX_SHARDS`], or `sequence` exceeds [`Self::MAX_SEQUENCE`].
    pub fn compose(shard: usize, shard_count: usize, sequence: u64) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&shard_count),
            "shard count {shard_count} outside 1..={MAX_SHARDS}"
        );
        assert!(shard < shard_count, "shard {shard} >= count {shard_count}");
        assert!(sequence <= SEQUENCE_MASK, "sequence {sequence} overflows");
        Self(
            ((shard as u64) << SHARD_SHIFT)
                | (((shard_count - 1) as u64) << COUNT_SHIFT)
                | sequence,
        )
    }

    /// The shard index this id was minted on.
    pub fn shard(self) -> usize {
        (self.0 >> SHARD_SHIFT) as usize
    }

    /// The shard count of the store that minted this id.
    pub fn shard_count(self) -> usize {
        ((self.0 >> COUNT_SHIFT) & 0xFF) as usize + 1
    }

    /// The per-shard sequence number.
    pub fn sequence(self) -> u64 {
        self.0 & SEQUENCE_MASK
    }
}

/// One stored (still encrypted) diagnostic record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredRecord {
    /// The user the record was filed under.
    pub user_id: String,
    /// The analysis result (encrypted-domain peak statistics).
    pub report: PeakReport,
    /// The bead signature recovered at submission time (integrity anchor).
    pub signature: BeadSignature,
}

impl Wire for RecordId {
    fn wire_encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RecordId(r.get_u64()?))
    }
}

impl Wire for StoredRecord {
    fn wire_encode(&self, w: &mut Writer) {
        self.user_id.wire_encode(w);
        self.report.wire_encode(w);
        self.signature.wire_encode(w);
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StoredRecord {
            user_id: String::wire_decode(r)?,
            report: PeakReport::wire_decode(r)?,
            signature: BeadSignature::wire_decode(r)?,
        })
    }
}

/// Write-ahead hook for record mutations.
///
/// [`RecordStore`] invokes the journal *inside* the owning shard's write
/// lock, *before* the in-memory map changes. That ordering is the
/// durability contract: the log is always a superset of what any reader
/// has observed, and a compactor holding the shard's write lock can
/// never race a journaled-but-unapplied mutation. Implementations are
/// expected to fail stop (panic) if the journal cannot be written —
/// acknowledging a medical record that would evaporate on restart is
/// strictly worse than crashing.
pub trait RecordJournal: Send + Sync + std::fmt::Debug {
    /// A new record is about to be inserted under `id`.
    fn record_stored(&self, id: RecordId, record: &StoredRecord);
    /// An existing record at `id` is about to be overwritten in place.
    fn record_tampered(&self, id: RecordId, record: &StoredRecord);
}

/// One shard: its own lock, map, and sequence counter.
#[derive(Debug, Default)]
struct StoreShard {
    records: RwLock<HashMap<RecordId, StoredRecord>>,
    next_sequence: AtomicU64,
}

/// A concurrent, identifier-hash-sharded record store.
#[derive(Debug)]
pub struct RecordStore {
    shards: Vec<StoreShard>,
    journal: Option<Arc<dyn RecordJournal>>,
}

impl Default for RecordStore {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordStore {
    /// A single-shard store — id-compatible with the pre-sharding format.
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// A store with `shard_count` independently locked shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero or exceeds [`MAX_SHARDS`].
    pub fn with_shards(shard_count: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&shard_count),
            "shard count {shard_count} outside 1..={MAX_SHARDS}"
        );
        Self {
            shards: (0..shard_count).map(|_| StoreShard::default()).collect(),
            journal: None,
        }
    }

    /// Attaches a write-ahead journal. Must be called before the store is
    /// shared; mutations from then on are journaled per the
    /// [`RecordJournal`] contract.
    pub fn set_journal(&mut self, journal: Arc<dyn RecordJournal>) {
        self.journal = Some(journal);
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether `id` could have been minted by this store's layout. Ids
    /// from a store with a different shard count (or hand-rolled ids with
    /// an out-of-range shard) fail this check and every lookup on them
    /// fails closed.
    fn owns(&self, id: RecordId) -> bool {
        id.shard_count() == self.shards.len() && id.shard() < self.shards.len()
    }

    /// Stores a record on its user's shard, returning its id.
    ///
    /// The sequence number is minted and the journal written under the
    /// shard's write lock, so the on-disk log observes ids in exactly the
    /// order the map does.
    pub fn store(&self, record: StoredRecord) -> RecordId {
        let shard = shard_index(&record.user_id, self.shards.len());
        let slot = &self.shards[shard];
        let mut records = slot.records.write();
        let sequence = slot.next_sequence.fetch_add(1, Ordering::Relaxed);
        let id = RecordId::compose(shard, self.shards.len(), sequence);
        if let Some(journal) = &self.journal {
            journal.record_stored(id, &record);
        }
        records.insert(id, record);
        id
    }

    /// Re-inserts a record recovered from durable storage. Bypasses the
    /// journal (the entry is already on disk) and bumps the shard's
    /// sequence allocator past the recovered id so new ids never collide.
    ///
    /// # Panics
    ///
    /// Panics if `id` was minted under a different shard layout.
    pub(crate) fn restore(&self, id: RecordId, record: StoredRecord) {
        assert!(
            self.owns(id),
            "restore of {id:?} into a {}-shard store",
            self.shards.len()
        );
        let slot = &self.shards[id.shard()];
        let mut records = slot.records.write();
        slot.next_sequence
            .fetch_max(id.sequence() + 1, Ordering::Relaxed);
        records.insert(id, record);
    }

    /// Write-locks one shard's record map for the compactor, which must
    /// quiesce the shard while it snapshots and resets the log.
    pub(crate) fn write_shard(
        &self,
        shard: usize,
    ) -> parking_lot::RwLockWriteGuard<'_, HashMap<RecordId, StoredRecord>> {
        self.shards[shard].records.write()
    }

    /// Fetches a record by id. Ids minted under a different shard layout
    /// return `None`.
    pub fn fetch(&self, id: RecordId) -> Option<StoredRecord> {
        if !self.owns(id) {
            return None;
        }
        self.shards[id.shard()].records.read().get(&id).cloned()
    }

    /// All record ids filed under a user, in id order.
    ///
    /// Scans every shard rather than only the user's home shard: a
    /// tampering insider ([`RecordStore::tamper`]) can overwrite a record
    /// in place with a foreign `user_id`, and the listing must still see
    /// it where it physically lives.
    pub fn records_of(&self, user_id: &str) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .records
                    .read()
                    .iter()
                    .filter(|(_, r)| r.user_id == user_id)
                    .map(|(&id, _)| id)
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort();
        ids
    }

    /// Number of stored records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.records.read().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.records.read().is_empty())
    }

    /// Records per shard, in shard order (for metrics).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.records.read().len()).collect()
    }

    /// Overwrites a record in place (models a tampering cloud insider for
    /// the integrity-check experiments). Returns `false` if the id is
    /// unknown — including ids minted under a different shard layout.
    pub fn tamper(&self, id: RecordId, record: StoredRecord) -> bool {
        if !self.owns(id) {
            return false;
        }
        let mut records = self.shards[id.shard()].records.write();
        if let std::collections::hash_map::Entry::Occupied(mut e) = records.entry(id) {
            if let Some(journal) = &self.journal {
                journal.record_tampered(id, &record);
            }
            e.insert(record);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_microfluidics::ParticleKind;

    fn record(user: &str) -> StoredRecord {
        StoredRecord {
            user_id: user.into(),
            report: PeakReport {
                peaks: vec![],
                carriers_hz: vec![5e5],
                sample_rate_hz: 450.0,
                duration_s: 1.0,
                noise_sigma: 3.0e-4,
            },
            signature: BeadSignature::from_counts(&[(ParticleKind::Bead358, 100)]),
        }
    }

    #[test]
    fn store_and_fetch_round_trip() {
        let store = RecordStore::new();
        let id = store.store(record("alice"));
        let fetched = store.fetch(id).expect("stored record");
        assert_eq!(fetched.user_id, "alice");
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn unknown_id_fetches_none() {
        let store = RecordStore::new();
        assert!(store.fetch(RecordId(42)).is_none());
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let store = RecordStore::new();
        let a = store.store(record("alice"));
        let b = store.store(record("bob"));
        assert_ne!(a, b);
        assert!(b.0 > a.0);
    }

    #[test]
    fn single_shard_ids_match_the_preshard_format() {
        let store = RecordStore::new();
        assert_eq!(store.store(record("alice")), RecordId(0));
        assert_eq!(store.store(record("bob")), RecordId(1));
        assert_eq!(store.store(record("alice")), RecordId(2));
    }

    #[test]
    fn per_user_listing() {
        let store = RecordStore::new();
        let a1 = store.store(record("alice"));
        let _b = store.store(record("bob"));
        let a2 = store.store(record("alice"));
        assert_eq!(store.records_of("alice"), vec![a1, a2]);
        assert!(store.records_of("carol").is_empty());
    }

    #[test]
    fn tampering_replaces_known_records_only() {
        let store = RecordStore::new();
        let id = store.store(record("alice"));
        assert!(store.tamper(id, record("mallory")));
        assert_eq!(store.fetch(id).unwrap().user_id, "mallory");
        assert!(!store.tamper(RecordId(999), record("mallory")));
    }

    #[test]
    fn store_is_usable_across_threads() {
        let store = std::sync::Arc::new(RecordStore::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        store.store(record(&format!("user{i}")));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(store.len(), 400);
    }

    #[test]
    fn record_id_fields_round_trip() {
        for (shard, count, seq) in [
            (0usize, 1usize, 0u64),
            (0, 1, RecordId::MAX_SEQUENCE),
            (7, 8, 12345),
            (255, 256, 1),
        ] {
            let id = RecordId::compose(shard, count, seq);
            assert_eq!(id.shard(), shard);
            assert_eq!(id.shard_count(), count);
            assert_eq!(id.sequence(), seq);
        }
    }

    #[test]
    #[should_panic(expected = "shard 3 >= count 2")]
    fn compose_rejects_out_of_range_shard() {
        RecordId::compose(3, 2, 0);
    }

    #[test]
    fn sharded_store_routes_by_user_and_round_trips() {
        let store = RecordStore::with_shards(8);
        let a1 = store.store(record("alice"));
        let b1 = store.store(record("bob"));
        let a2 = store.store(record("alice"));
        // Same user → same shard, consecutive sequence numbers.
        assert_eq!(a1.shard(), a2.shard());
        assert_eq!(a1.shard(), crate::shard::shard_index("alice", 8));
        assert_eq!(b1.shard(), crate::shard::shard_index("bob", 8));
        assert_eq!(a2.sequence(), a1.sequence() + 1);
        // Fetch, listing, and tamper all resolve through the encoding.
        assert_eq!(store.fetch(a1).unwrap().user_id, "alice");
        assert_eq!(store.fetch(b1).unwrap().user_id, "bob");
        assert_eq!(store.records_of("alice"), vec![a1, a2]);
        assert!(store.tamper(b1, record("mallory")));
        assert_eq!(store.fetch(b1).unwrap().user_id, "mallory");
        assert_eq!(store.records_of("mallory"), vec![b1]);
        assert_eq!(store.len(), 3);
        assert_eq!(store.shard_lens().iter().sum::<usize>(), 3);
    }

    #[test]
    fn foreign_layout_ids_fail_closed() {
        // Mint ids under an 8-way layout, present them to a 2-way store
        // that has a record at every (shard, sequence) a foreign id could
        // alias — none may resolve, none may panic.
        let eight = RecordStore::with_shards(8);
        let two = RecordStore::with_shards(2);
        let foreign: Vec<RecordId> = (0..16)
            .map(|i| eight.store(record(&format!("user-{i}"))))
            .collect();
        for i in 0..16 {
            two.store(record(&format!("user-{i}")));
        }
        assert!(!two.is_empty());
        for id in foreign {
            assert!(
                two.fetch(id).is_none(),
                "{id:?} minted by an 8-shard store must not resolve in a 2-shard store"
            );
            assert!(!two.tamper(id, record("mallory")));
        }
        // Same in the other direction, including a shard index that is
        // simply out of range for the small store.
        let native = two.store(record("alice"));
        assert!(eight.fetch(native).is_none());
        let out_of_range = RecordId::compose(5, 8, 0);
        assert!(two.fetch(out_of_range).is_none());
    }

    #[derive(Debug, Default)]
    struct CountingJournal {
        stored: AtomicU64,
        tampered: AtomicU64,
    }

    impl RecordJournal for CountingJournal {
        fn record_stored(&self, _id: RecordId, _record: &StoredRecord) {
            self.stored.fetch_add(1, Ordering::Relaxed);
        }
        fn record_tampered(&self, _id: RecordId, _record: &StoredRecord) {
            self.tampered.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn journal_sees_stores_and_tampers_but_not_restores() {
        let journal = Arc::new(CountingJournal::default());
        let mut store = RecordStore::with_shards(4);
        store.set_journal(journal.clone());
        let id = store.store(record("alice"));
        assert!(store.tamper(id, record("mallory")));
        // Tampering an unknown id journals nothing (nothing changed).
        assert!(!store.tamper(RecordId::compose(0, 4, 999), record("x")));
        store.restore(RecordId::compose(id.shard(), 4, 7), record("bob"));
        assert_eq!(journal.stored.load(Ordering::Relaxed), 1);
        assert_eq!(journal.tampered.load(Ordering::Relaxed), 1);
        // The allocator jumped past the restored sequence, so the next
        // store on that shard cannot collide with it.
        let next = store.store(record("alice"));
        assert_eq!(next.sequence(), 8);
        assert_eq!(journal.stored.load(Ordering::Relaxed), 2);
    }

    #[test]
    #[should_panic(expected = "restore of")]
    fn restore_rejects_foreign_layout_ids() {
        let store = RecordStore::with_shards(2);
        store.restore(RecordId::compose(3, 8, 0), record("alice"));
    }

    #[test]
    fn sharded_store_is_usable_across_threads() {
        let store = std::sync::Arc::new(RecordStore::with_shards(8));
        std::thread::scope(|scope| {
            for i in 0..8 {
                let store = &store;
                scope.spawn(move || {
                    for _ in 0..50 {
                        store.store(record(&format!("user{i}")));
                    }
                });
            }
        });
        assert_eq!(store.len(), 400);
        for i in 0..8 {
            assert_eq!(store.records_of(&format!("user{i}")).len(), 50);
        }
    }
}
