//! Cloud record storage.
//!
//! "The diagnostic information can be returned to a patient or stored in
//! cloud for a later access by the patient's practitioner" (Sec. II).
//! Records are keyed by the cyto-coded identifier's owner and store only
//! ciphertext-side artifacts: the peak report and the signature that binds it
//! to an identity. Thread-safe via `parking_lot::RwLock`, since the analysis
//! service and practitioner fetches run concurrently.

use crate::api::PeakReport;
use crate::auth::BeadSignature;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An opaque record identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId(pub u64);

/// One stored (still encrypted) diagnostic record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredRecord {
    /// The user the record was filed under.
    pub user_id: String,
    /// The analysis result (encrypted-domain peak statistics).
    pub report: PeakReport,
    /// The bead signature recovered at submission time (integrity anchor).
    pub signature: BeadSignature,
}

/// A concurrent record store.
#[derive(Debug, Default)]
pub struct RecordStore {
    records: RwLock<HashMap<RecordId, StoredRecord>>,
    next_id: RwLock<u64>,
}

impl RecordStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a record, returning its id.
    pub fn store(&self, record: StoredRecord) -> RecordId {
        let mut next = self.next_id.write();
        let id = RecordId(*next);
        *next += 1;
        self.records.write().insert(id, record);
        id
    }

    /// Fetches a record by id.
    pub fn fetch(&self, id: RecordId) -> Option<StoredRecord> {
        self.records.read().get(&id).cloned()
    }

    /// All record ids filed under a user, in id order.
    pub fn records_of(&self, user_id: &str) -> Vec<RecordId> {
        let mut ids: Vec<RecordId> = self
            .records
            .read()
            .iter()
            .filter(|(_, r)| r.user_id == user_id)
            .map(|(&id, _)| id)
            .collect();
        ids.sort();
        ids
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }

    /// Overwrites a record in place (models a tampering cloud insider for
    /// the integrity-check experiments). Returns `false` if the id is
    /// unknown.
    pub fn tamper(&self, id: RecordId, record: StoredRecord) -> bool {
        let mut records = self.records.write();
        if let std::collections::hash_map::Entry::Occupied(mut e) = records.entry(id) {
            e.insert(record);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_microfluidics::ParticleKind;

    fn record(user: &str) -> StoredRecord {
        StoredRecord {
            user_id: user.into(),
            report: PeakReport {
                peaks: vec![],
                carriers_hz: vec![5e5],
                sample_rate_hz: 450.0,
                duration_s: 1.0,
                noise_sigma: 3.0e-4,
            },
            signature: BeadSignature::from_counts(&[(ParticleKind::Bead358, 100)]),
        }
    }

    #[test]
    fn store_and_fetch_round_trip() {
        let store = RecordStore::new();
        let id = store.store(record("alice"));
        let fetched = store.fetch(id).expect("stored record");
        assert_eq!(fetched.user_id, "alice");
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn unknown_id_fetches_none() {
        let store = RecordStore::new();
        assert!(store.fetch(RecordId(42)).is_none());
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let store = RecordStore::new();
        let a = store.store(record("alice"));
        let b = store.store(record("bob"));
        assert_ne!(a, b);
        assert!(b.0 > a.0);
    }

    #[test]
    fn per_user_listing() {
        let store = RecordStore::new();
        let a1 = store.store(record("alice"));
        let _b = store.store(record("bob"));
        let a2 = store.store(record("alice"));
        assert_eq!(store.records_of("alice"), vec![a1, a2]);
        assert!(store.records_of("carol").is_empty());
    }

    #[test]
    fn tampering_replaces_known_records_only() {
        let store = RecordStore::new();
        let id = store.store(record("alice"));
        assert!(store.tamper(id, record("mallory")));
        assert_eq!(store.fetch(id).unwrap().user_id, "mallory");
        assert!(!store.tamper(RecordId(999), record("mallory")));
    }

    #[test]
    fn store_is_usable_across_threads() {
        let store = std::sync::Arc::new(RecordStore::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        store.store(record(&format!("user{i}")));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(store.len(), 400);
    }
}
