//! The Fig. 3 equivalent circuit of a co-planar electrode pair.
//!
//! "The sensing electrode pair in the microfluidic channel can be modeled as
//! a series of capacitors and resistors": the electrode–electrolyte interface
//! forms a double-layer capacitance at each electrode, in series with the
//! resistance of the fluid column between the electrodes. At low frequency
//! (< 10 kHz) the capacitive reactance dominates and the measured impedance
//! is in the MΩ range; above ~100 kHz the capacitors short out and the
//! (particle-sensitive) ionic resistance dominates — which is why the paper
//! operates its carriers at 500 kHz and above.

use medsen_units::{Farads, Hertz, Micrometers, Ohms};
use serde::{Deserialize, Serialize};

/// Which circuit element dominates the measured impedance at a frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regime {
    /// Reactance of the double layer dominates (low frequency, MΩ scale).
    CapacitanceDominated,
    /// Ionic solution resistance dominates (high frequency) — the operating
    /// regime for particle detection.
    ResistanceDominated,
}

/// Series R–C model of one electrode pair bridged by electrolyte.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectrodeCircuit {
    /// Ionic resistance of the fluid between the electrodes.
    pub solution_resistance: Ohms,
    /// Effective series double-layer capacitance (two interfaces in series).
    pub double_layer: Farads,
}

impl ElectrodeCircuit {
    /// Parameters representative of the paper's 20 µm gold electrodes in
    /// PBS 0.9 %: ≈ 50 kΩ solution resistance, ≈ 0.15 nF effective
    /// double-layer capacitance. These put the regime crossover near 21 kHz,
    /// consistent with the paper's "< 10 kHz capacitive / > 100 kHz
    /// resistive" description.
    pub fn paper_default() -> Self {
        Self {
            solution_resistance: Ohms::new(50_000.0),
            double_layer: Farads::from_nanofarads(0.15),
        }
    }

    /// Impedance magnitude |Z| = √(R² + (1/ωC)²) at frequency `f`.
    pub fn impedance_at(&self, f: Hertz) -> Ohms {
        let xc = self.double_layer.reactance_at(f).value();
        let r = self.solution_resistance.value();
        Ohms::new((r * r + xc * xc).sqrt())
    }

    /// The dominating element at frequency `f`.
    pub fn regime_at(&self, f: Hertz) -> Regime {
        if self.double_layer.reactance_at(f).value() > self.solution_resistance.value() {
            Regime::CapacitanceDominated
        } else {
            Regime::ResistanceDominated
        }
    }

    /// Crossover frequency where reactance equals resistance.
    pub fn crossover(&self) -> Hertz {
        Hertz::new(
            1.0 / (2.0
                * core::f64::consts::PI
                * self.solution_resistance.value()
                * self.double_layer.value()),
        )
    }

    /// Relative resistance perturbation ΔR/R caused by an insulating sphere
    /// of diameter `d` occluding a pore of the given cross-section and
    /// sensing length (Maxwell's approximation: ΔR/R ≈ d³ / (A·L)).
    pub fn occlusion_contrast(
        &self,
        d: Micrometers,
        pore_width: Micrometers,
        pore_height: Micrometers,
        sensing_length: Micrometers,
    ) -> f64 {
        let volume = d.value().powi(3);
        let sensed_volume = pore_width.area(pore_height) * sensing_length.value();
        volume / sensed_volume
    }

    /// Fraction of the excitation voltage change visible at the lock-in for
    /// a resistance perturbation ΔR/R at carrier frequency `f`. In the
    /// resistive regime this approaches ΔR/R; deep in the capacitive regime
    /// the perturbation is hidden behind the reactance.
    pub fn sensitivity_at(&self, f: Hertz) -> f64 {
        let r = self.solution_resistance.value();
        let z = self.impedance_at(f).value();
        (r / z).powi(2)
    }
}

impl Default for ElectrodeCircuit {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_frequency_is_capacitive_and_megaohm_scale() {
        let c = ElectrodeCircuit::paper_default();
        let f = Hertz::from_khz(1.0);
        assert_eq!(c.regime_at(f), Regime::CapacitanceDominated);
        assert!(c.impedance_at(f).to_megaohms() > 1.0);
    }

    #[test]
    fn high_frequency_is_resistive() {
        let c = ElectrodeCircuit::paper_default();
        let f = Hertz::from_khz(500.0);
        assert_eq!(c.regime_at(f), Regime::ResistanceDominated);
        // |Z| collapses to ≈ R.
        let z = c.impedance_at(f).value();
        assert!((z - 50_000.0) / 50_000.0 < 0.01);
    }

    #[test]
    fn crossover_sits_between_10_and_100_khz() {
        // Matches the paper's "<10 kHz capacitive, >100 kHz resistive" bands.
        let c = ElectrodeCircuit::paper_default();
        let fx = c.crossover().value();
        assert!(fx > 1.0e4 && fx < 1.0e5, "crossover {fx}");
    }

    #[test]
    fn impedance_decreases_with_frequency() {
        let c = ElectrodeCircuit::paper_default();
        let freqs = [1e3, 1e4, 1e5, 1e6, 4e6];
        let zs: Vec<f64> = freqs
            .iter()
            .map(|&f| c.impedance_at(Hertz::new(f)).value())
            .collect();
        assert!(zs.windows(2).all(|w| w[1] < w[0]), "{zs:?}");
    }

    #[test]
    fn occlusion_contrast_scales_with_volume() {
        let c = ElectrodeCircuit::paper_default();
        let w = Micrometers::new(30.0);
        let h = Micrometers::new(20.0);
        let l = Micrometers::new(45.0);
        let small = c.occlusion_contrast(Micrometers::new(3.58), w, h, l);
        let big = c.occlusion_contrast(Micrometers::new(7.8), w, h, l);
        let expected = (7.8f64 / 3.58).powi(3);
        assert!((big / small - expected).abs() < 1e-9);
    }

    #[test]
    fn occlusion_contrast_is_sub_percent_for_beads() {
        // A 7.8 µm bead in the paper's pore perturbs R by ~1–2 %.
        let c = ElectrodeCircuit::paper_default();
        let contrast = c.occlusion_contrast(
            Micrometers::new(7.8),
            Micrometers::new(30.0),
            Micrometers::new(20.0),
            Micrometers::new(45.0),
        );
        assert!(contrast > 0.005 && contrast < 0.03, "contrast {contrast}");
    }

    #[test]
    fn sensitivity_saturates_at_high_frequency() {
        let c = ElectrodeCircuit::paper_default();
        let s_low = c.sensitivity_at(Hertz::from_khz(1.0));
        let s_mid = c.sensitivity_at(Hertz::from_khz(100.0));
        let s_high = c.sensitivity_at(Hertz::from_mhz(2.0));
        assert!(s_low < s_mid && s_mid < s_high);
        assert!(s_high > 0.99);
        assert!(s_low < 0.01);
    }
}
