//! Renders a pulse plan into a realistic multi-channel acquisition.
//!
//! The synthesiser works at baseband: every demodulated channel starts as a
//! flat unit baseline, each [`PulseSpec`] subtracts its Gaussian dip(s)
//! (optionally with per-channel gain, which is how particle dispersion and
//! the cipher's electrode gains enter), then baseline drift multiplies the
//! signal, white noise is added, and the lock-in output filter band-limits
//! the result. [`LockInAmplifier::demodulate`]'s tests validate that this
//! shortcut matches true mix-and-filter demodulation.

use crate::excitation::ExcitationConfig;
use crate::lockin::LockInAmplifier;
use crate::noise::{BaselineDrift, NoiseModel};
use crate::pulse::PulseSpec;
use crate::trace::{Channel, SignalComponent, SignalTrace};
use medsen_units::{Hertz, Seconds};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A pulse with an explicit per-channel gain vector.
///
/// `channel_gains[i]` multiplies the pulse depth on carrier `i`. This is the
/// hook through which both physics (a blood cell's high-frequency roll-off)
/// and the cipher (the random electrode gains `G(t)`) reach the signal. In
/// phase-sensitive (I/Q) mode, `quadrature_gains[i]` sets the dip depth on
/// carrier `i`'s quadrature channel (zero for phase-neutral particles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiChannelPulse {
    /// The base pulse geometry and reference depth.
    pub spec: PulseSpec,
    /// Per-carrier depth multipliers (must match the carrier count).
    pub channel_gains: Vec<f64>,
    /// Per-carrier quadrature multipliers (only used in I/Q mode; when
    /// empty, quadrature channels see no dip from this pulse).
    #[serde(default)]
    pub quadrature_gains: Vec<f64>,
}

impl MultiChannelPulse {
    /// A pulse with unit gain on every one of `n_channels` carriers (no
    /// quadrature contribution).
    pub fn uniform(spec: PulseSpec, n_channels: usize) -> Self {
        Self {
            spec,
            channel_gains: vec![1.0; n_channels],
            quadrature_gains: Vec::new(),
        }
    }
}

/// Baseband trace synthesiser.
#[derive(Debug, Clone)]
pub struct TraceSynthesizer {
    /// Excitation / acquisition settings.
    pub excitation: ExcitationConfig,
    /// Output filter stage.
    pub lockin: LockInAmplifier,
    /// White-noise model.
    pub noise: NoiseModel,
    /// Baseline drift model.
    pub drift: BaselineDrift,
    seed: u64,
    renders: u64,
    iq: bool,
}

impl TraceSynthesizer {
    /// A synthesiser with the paper's excitation, filter, noise and drift.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            excitation: ExcitationConfig::paper_default(),
            lockin: LockInAmplifier::paper_default(),
            noise: NoiseModel::paper_default(),
            drift: BaselineDrift::paper_default(),
            seed,
            renders: 0,
            iq: false,
        }
    }

    /// A noiseless, drift-free synthesiser for deterministic tests.
    pub fn clean(seed: u64) -> Self {
        Self {
            excitation: ExcitationConfig::paper_default(),
            lockin: LockInAmplifier::paper_default(),
            noise: NoiseModel::none(),
            drift: BaselineDrift::none(),
            seed,
            renders: 0,
            iq: false,
        }
    }

    /// Enables phase-sensitive acquisition: each carrier gains a quadrature
    /// channel (baseline 1.0, dips per `quadrature_gains`). The prototype's
    /// single-output acquisition corresponds to `iq = false`.
    pub fn with_iq(mut self, iq: bool) -> Self {
        self.iq = iq;
        self
    }

    /// Whether phase-sensitive acquisition is enabled.
    pub fn is_iq(&self) -> bool {
        self.iq
    }

    /// Replaces the excitation configuration (builder style).
    pub fn with_excitation(mut self, excitation: ExcitationConfig) -> Self {
        self.excitation = excitation;
        self
    }

    /// Renders pulses applied identically to every carrier channel.
    pub fn render(&mut self, pulses: &[PulseSpec], duration: Seconds) -> SignalTrace {
        let n = self.excitation.carriers().len();
        let mc: Vec<MultiChannelPulse> = pulses
            .iter()
            .map(|&spec| MultiChannelPulse::uniform(spec, n))
            .collect();
        self.render_multichannel(&mc, duration)
    }

    /// Renders pulses with per-channel gains.
    ///
    /// # Panics
    ///
    /// Panics if any pulse's gain vector length differs from the carrier
    /// count.
    pub fn render_multichannel(
        &mut self,
        pulses: &[MultiChannelPulse],
        duration: Seconds,
    ) -> SignalTrace {
        let carriers = self.excitation.carriers().to_vec();
        for p in pulses {
            assert_eq!(
                p.channel_gains.len(),
                carriers.len(),
                "gain vector must match carrier count"
            );
            assert!(
                p.quadrature_gains.is_empty() || p.quadrature_gains.len() == carriers.len(),
                "quadrature gain vector must be empty or match carrier count"
            );
        }
        let rate = self.excitation.sample_rate;
        let n_samples = duration.samples_at(rate);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(self.renders));
        self.renders += 1;

        // Channel plan: all in-phase channels, then (in IQ mode) all
        // quadrature channels.
        let mut plan: Vec<(Hertz, SignalComponent)> = carriers
            .iter()
            .map(|&c| (c, SignalComponent::InPhase))
            .collect();
        if self.iq {
            plan.extend(carriers.iter().map(|&c| (c, SignalComponent::Quadrature)));
        }

        let channels = plan
            .into_iter()
            .enumerate()
            .map(|(slot, (carrier, component))| {
                let ci = slot % carriers.len();
                let mut samples = vec![1.0f64; n_samples];
                // Add pulses over their ±4σ support only.
                for p in pulses {
                    let gain = match component {
                        SignalComponent::InPhase => p.channel_gains[ci],
                        SignalComponent::Quadrature => {
                            p.quadrature_gains.get(ci).copied().unwrap_or(0.0)
                        }
                    };
                    if gain == 0.0 {
                        continue;
                    }
                    let i0 = ((p.spec.support_start().value() * rate.value()).floor() as i64).max(0)
                        as usize;
                    let i1 = ((p.spec.support_end().value() * rate.value()).ceil() as i64).max(0)
                        as usize;
                    for (i, s) in samples
                        .iter_mut()
                        .enumerate()
                        .take(i1.min(n_samples.saturating_sub(1)) + 1)
                        .skip(i0.min(n_samples))
                    {
                        let t = i as f64 / rate.value();
                        *s += gain * p.spec.evaluate(t);
                    }
                }
                // Drift multiplies, noise adds.
                for (i, s) in samples.iter_mut().enumerate() {
                    let t = Seconds::new(i as f64 / rate.value());
                    *s *= self.drift.evaluate(t);
                    *s += self.noise.sample(&mut rng);
                }
                // Band-limit like the instrument.
                self.lockin.filter(&mut samples);
                Channel {
                    carrier,
                    samples,
                    component,
                }
            })
            .collect();

        SignalTrace::new(rate, channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_units::Hertz;

    #[test]
    fn clean_render_has_unit_baseline() {
        let mut s = TraceSynthesizer::clean(1);
        let t = s.render(&[], Seconds::new(1.0));
        let c = &t.channels()[0];
        assert!(c.samples.iter().all(|&v| (v - 1.0).abs() < 1e-9));
        assert_eq!(t.len(), 450);
    }

    #[test]
    fn single_pulse_produces_single_dip() {
        let mut s = TraceSynthesizer::clean(1);
        let p = PulseSpec::unipolar(Seconds::new(0.5), Seconds::new(0.02), 0.01);
        let t = s.render(&[p], Seconds::new(1.0));
        let c = t.channel_at(Hertz::from_khz(500.0)).unwrap();
        let min = c.min().unwrap();
        assert!(min < 0.995, "dip {min}");
        // Dip is centred near 0.5 s.
        let argmin = c
            .samples
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let t_min = argmin as f64 / 450.0;
        assert!((t_min - 0.5).abs() < 0.01, "dip at {t_min}");
    }

    #[test]
    fn channel_gains_scale_dips_independently() {
        let mut s = TraceSynthesizer::clean(1);
        let spec = PulseSpec::unipolar(Seconds::new(0.5), Seconds::new(0.02), 0.01);
        let n = s.excitation.carriers().len();
        let mut gains = vec![1.0; n];
        gains[0] = 1.0;
        gains[n - 1] = 0.25;
        let mc = MultiChannelPulse {
            spec,
            channel_gains: gains,
            quadrature_gains: Vec::new(),
        };
        let t = s.render_multichannel(&[mc], Seconds::new(1.0));
        let dip0 = 1.0 - t.channels()[0].min().unwrap();
        let dip7 = 1.0 - t.channels()[n - 1].min().unwrap();
        assert!((dip7 / dip0 - 0.25).abs() < 0.02, "ratio {}", dip7 / dip0);
    }

    #[test]
    fn zero_gain_channel_sees_no_pulse() {
        let mut s = TraceSynthesizer::clean(1);
        let spec = PulseSpec::unipolar(Seconds::new(0.5), Seconds::new(0.02), 0.01);
        let n = s.excitation.carriers().len();
        let mut gains = vec![0.0; n];
        gains[0] = 1.0;
        let t = s.render_multichannel(
            &[MultiChannelPulse {
                spec,
                channel_gains: gains,
                quadrature_gains: Vec::new(),
            }],
            Seconds::new(1.0),
        );
        assert!(t.channels()[1].min().unwrap() > 0.9999);
        assert!(t.channels()[0].min().unwrap() < 0.995);
    }

    #[test]
    fn noisy_render_varies_between_calls_but_is_seed_deterministic() {
        let mut a = TraceSynthesizer::paper_default(9);
        let t1 = a.render(&[], Seconds::new(0.5));
        let t2 = a.render(&[], Seconds::new(0.5));
        assert_ne!(t1, t2, "consecutive renders should use fresh noise");

        let mut b = TraceSynthesizer::paper_default(9);
        let t1b = b.render(&[], Seconds::new(0.5));
        assert_eq!(t1, t1b, "same seed + same render index must reproduce");
    }

    #[test]
    fn drift_moves_the_baseline() {
        let mut s = TraceSynthesizer::clean(1);
        s.drift = BaselineDrift::paper_default();
        let t = s.render(&[], Seconds::new(60.0));
        let c = &t.channels()[0];
        let spread = c.max().unwrap() - c.min().unwrap();
        assert!(spread > 1e-3, "drift spread {spread}");
    }

    #[test]
    #[should_panic(expected = "gain vector must match carrier count")]
    fn wrong_gain_length_panics() {
        let mut s = TraceSynthesizer::clean(1);
        let mc = MultiChannelPulse {
            spec: PulseSpec::unipolar(Seconds::new(0.1), Seconds::new(0.02), 0.01),
            channel_gains: vec![1.0; 3],
            quadrature_gains: Vec::new(),
        };
        let _ = s.render_multichannel(&[mc], Seconds::new(0.5));
    }

    #[test]
    fn iq_mode_adds_quadrature_channels() {
        let mut s = TraceSynthesizer::clean(1).with_iq(true);
        let n = s.excitation.carriers().len();
        let spec = PulseSpec::unipolar(Seconds::new(0.5), Seconds::new(0.02), 0.01);
        let mc = MultiChannelPulse {
            spec,
            channel_gains: vec![1.0; n],
            quadrature_gains: vec![0.5; n],
        };
        let t = s.render_multichannel(&[mc], Seconds::new(1.0));
        assert_eq!(t.channels().len(), 2 * n);
        let i_dip = 1.0 - t.channel_at(Hertz::from_khz(500.0)).unwrap().min().unwrap();
        let q_dip = 1.0
            - t.quadrature_at(Hertz::from_khz(500.0))
                .unwrap()
                .min()
                .unwrap();
        assert!(
            (q_dip / i_dip - 0.5).abs() < 0.05,
            "ratio {}",
            q_dip / i_dip
        );
    }

    #[test]
    fn non_iq_mode_has_no_quadrature_channels() {
        let mut s = TraceSynthesizer::clean(2);
        let t = s.render(&[], Seconds::new(0.5));
        assert!(t.quadrature_at(Hertz::from_khz(500.0)).is_none());
    }

    #[test]
    fn overlapping_pulses_superpose() {
        let mut s = TraceSynthesizer::clean(1);
        let p1 = PulseSpec::unipolar(Seconds::new(0.5), Seconds::new(0.02), 0.004);
        let p2 = PulseSpec::unipolar(Seconds::new(0.5), Seconds::new(0.02), 0.004);
        let t = s.render(&[p1, p2], Seconds::new(1.0));
        let dip = 1.0 - t.channels()[0].min().unwrap();
        assert!((dip - 0.008).abs() < 0.001, "superposed dip {dip}");
    }
}
