//! The sampled, demodulated, multi-channel output signal.
//!
//! The HF2IS demodulates each carrier independently, so one acquisition
//! yields one time series per carrier ("MedSen outputs the measurement from
//! eight channels corresponding to the carrier frequencies"). Samples are
//! normalized amplitudes: baseline ≈ 1.0, with particles producing dips.

use medsen_units::{Hertz, Seconds};
use medsen_wire::{Reader, Wire, WireError, Writer};
use serde::{Deserialize, Serialize};

/// Which lock-in output a channel carries. The single-channel (magnitude)
/// acquisition of the prototype uses only [`SignalComponent::InPhase`];
/// phase-sensitive acquisitions add one quadrature channel per carrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SignalComponent {
    /// The in-phase (X, or magnitude R in single-output mode) component.
    #[default]
    InPhase,
    /// The quadrature (Y) component.
    Quadrature,
}

impl SignalComponent {
    /// One-letter label used in CSV headers ("I"/"Q").
    pub fn label(self) -> &'static str {
        match self {
            SignalComponent::InPhase => "I",
            SignalComponent::Quadrature => "Q",
        }
    }
}

/// One demodulated carrier channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// The carrier frequency this channel was demodulated at.
    pub carrier: Hertz,
    /// Normalized samples (baseline ≈ 1.0).
    pub samples: Vec<f64>,
    /// Which lock-in output this channel carries.
    #[serde(default)]
    pub component: SignalComponent,
}

impl Channel {
    /// Creates an empty in-phase channel for a carrier.
    pub fn new(carrier: Hertz) -> Self {
        Self {
            carrier,
            samples: Vec::new(),
            component: SignalComponent::InPhase,
        }
    }

    /// Minimum sample value (the deepest dip).
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Maximum sample value.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

/// A complete multi-channel acquisition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalTrace {
    /// Output sampling rate (paper: 450 Hz).
    pub sample_rate: Hertz,
    channels: Vec<Channel>,
}

impl SignalTrace {
    /// Creates a trace with pre-filled channels.
    ///
    /// # Panics
    ///
    /// Panics if the channels have differing lengths.
    pub fn new(sample_rate: Hertz, channels: Vec<Channel>) -> Self {
        if let Some(first) = channels.first() {
            assert!(
                channels
                    .iter()
                    .all(|c| c.samples.len() == first.samples.len()),
                "all channels must have equal length"
            );
        }
        Self {
            sample_rate,
            channels,
        }
    }

    /// All channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The in-phase channel demodulated at (nearest to) `carrier` (falls
    /// back to any component if no in-phase channel exists).
    pub fn channel_at(&self, carrier: Hertz) -> Option<&Channel> {
        fn nearest<'c>(
            channels: impl Iterator<Item = &'c Channel>,
            carrier: Hertz,
        ) -> Option<&'c Channel> {
            channels.min_by(|a, b| {
                (a.carrier.value() - carrier.value())
                    .abs()
                    .partial_cmp(&(b.carrier.value() - carrier.value()).abs())
                    .expect("finite carrier frequencies")
            })
        }
        let in_phase = self
            .channels
            .iter()
            .filter(|c| c.component == SignalComponent::InPhase);
        nearest(in_phase, carrier).or_else(|| nearest(self.channels.iter(), carrier))
    }

    /// The quadrature channel nearest `carrier`, if the trace carries one.
    pub fn quadrature_at(&self, carrier: Hertz) -> Option<&Channel> {
        self.channels
            .iter()
            .filter(|c| c.component == SignalComponent::Quadrature)
            .min_by(|a, b| {
                (a.carrier.value() - carrier.value())
                    .abs()
                    .partial_cmp(&(b.carrier.value() - carrier.value()).abs())
                    .expect("finite carrier frequencies")
            })
    }

    /// Samples per channel.
    pub fn len(&self) -> usize {
        self.channels.first().map_or(0, |c| c.samples.len())
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Acquisition duration.
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.len() as f64 / self.sample_rate.value())
    }

    /// The timestamp of sample `i`.
    pub fn time_of(&self, i: usize) -> Seconds {
        Seconds::new(i as f64 / self.sample_rate.value())
    }

    /// The sample index closest to time `t` (clamped to the trace).
    pub fn index_of(&self, t: Seconds) -> usize {
        let i = (t.value() * self.sample_rate.value()).round();
        (i.max(0.0) as usize).min(self.len().saturating_sub(1))
    }

    /// Total stored samples across all channels.
    pub fn total_samples(&self) -> usize {
        self.channels.iter().map(|c| c.samples.len()).sum()
    }

    /// Rough in-memory size of the raw sample data, in bytes.
    pub fn raw_size_bytes(&self) -> usize {
        self.total_samples() * core::mem::size_of::<f64>()
    }

    /// Extracts the sub-trace covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn slice(&self, start: Seconds, end: Seconds) -> SignalTrace {
        assert!(start.value() <= end.value(), "start must not exceed end");
        let i0 = self.index_of(start);
        let i1 = self.index_of(end);
        let channels = self
            .channels
            .iter()
            .map(|c| Channel {
                carrier: c.carrier,
                samples: c.samples[i0..=i1.min(c.samples.len().saturating_sub(1))].to_vec(),
                component: c.component,
            })
            .collect();
        SignalTrace::new(self.sample_rate, channels)
    }
}

impl Wire for SignalComponent {
    fn wire_encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            SignalComponent::InPhase => 0,
            SignalComponent::Quadrature => 1,
        });
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(SignalComponent::InPhase),
            1 => Ok(SignalComponent::Quadrature),
            tag => Err(WireError::BadTag {
                what: "signal component",
                tag,
            }),
        }
    }
}

impl Wire for Channel {
    fn wire_encode(&self, w: &mut Writer) {
        w.put_f64(self.carrier.value());
        self.samples.wire_encode(w);
        self.component.wire_encode(w);
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Channel {
            carrier: Hertz::new(r.get_f64()?),
            samples: Vec::wire_decode(r)?,
            component: SignalComponent::wire_decode(r)?,
        })
    }
}

impl Wire for SignalTrace {
    fn wire_encode(&self, w: &mut Writer) {
        w.put_f64(self.sample_rate.value());
        self.channels.wire_encode(w);
    }
    fn wire_decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let sample_rate = Hertz::new(r.get_f64()?);
        let channels = Vec::<Channel>::wire_decode(r)?;
        // `SignalTrace::new` panics on ragged channels; a decoder must
        // reject them instead, because these bytes cross a trust boundary.
        if let Some(first) = channels.first() {
            if channels
                .iter()
                .any(|c| c.samples.len() != first.samples.len())
            {
                return Err(WireError::Invalid("trace channels have unequal lengths"));
            }
        }
        Ok(SignalTrace {
            sample_rate,
            channels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: usize) -> SignalTrace {
        let mk = |f: f64| Channel {
            carrier: Hertz::from_khz(f),
            samples: (0..n).map(|i| 1.0 + i as f64 * 1e-6).collect(),
            component: SignalComponent::InPhase,
        };
        SignalTrace::new(Hertz::new(450.0), vec![mk(500.0), mk(2000.0)])
    }

    #[test]
    fn wire_round_trip_preserves_the_trace() {
        let t = trace(64);
        let mut w = Writer::new();
        t.wire_encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = SignalTrace::wire_decode(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        assert_eq!(back, t);
    }

    #[test]
    fn wire_decode_rejects_ragged_channels_without_panicking() {
        // Hand-encode a trace whose channels disagree on length — the
        // constructor would panic on this, the decoder must error.
        let mut w = Writer::new();
        w.put_f64(450.0);
        w.put_u32(2);
        for samples in [2u32, 3u32] {
            w.put_f64(500_000.0);
            w.put_u32(samples);
            for _ in 0..samples {
                w.put_f64(1.0);
            }
            w.put_u8(0);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            SignalTrace::wire_decode(&mut r),
            Err(WireError::Invalid("trace channels have unequal lengths"))
        );
    }

    #[test]
    fn duration_follows_sample_rate() {
        let t = trace(900);
        assert!((t.duration().value() - 2.0).abs() < 1e-12);
        assert_eq!(t.len(), 900);
        assert!(!t.is_empty());
    }

    #[test]
    fn time_index_roundtrip() {
        let t = trace(4500);
        let idx = t.index_of(Seconds::new(3.0));
        assert_eq!(idx, 1350);
        assert!((t.time_of(idx).value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn index_of_clamps_to_trace() {
        let t = trace(100);
        assert_eq!(t.index_of(Seconds::new(1e9)), 99);
        assert_eq!(t.index_of(Seconds::new(-5.0)), 0);
    }

    #[test]
    fn channel_lookup_finds_nearest_carrier() {
        let t = trace(10);
        let c = t.channel_at(Hertz::from_khz(1900.0)).unwrap();
        assert_eq!(c.carrier.value(), 2.0e6);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_channel_lengths_panic() {
        let a = Channel {
            carrier: Hertz::from_khz(500.0),
            samples: vec![1.0; 5],
            component: SignalComponent::InPhase,
        };
        let b = Channel {
            carrier: Hertz::from_khz(800.0),
            samples: vec![1.0; 6],
            component: SignalComponent::InPhase,
        };
        let _ = SignalTrace::new(Hertz::new(450.0), vec![a, b]);
    }

    #[test]
    fn slice_extracts_window() {
        let t = trace(4500); // 10 s
        let s = t.slice(Seconds::new(2.0), Seconds::new(4.0));
        assert!((s.duration().value() - 2.0).abs() < 0.01);
        assert_eq!(s.channels().len(), 2);
    }

    #[test]
    fn raw_size_counts_all_channels() {
        let t = trace(1000);
        assert_eq!(t.total_samples(), 2000);
        assert_eq!(t.raw_size_bytes(), 2000 * 8);
    }

    #[test]
    fn channel_at_prefers_in_phase_and_quadrature_lookup_works() {
        let i_ch = Channel {
            carrier: Hertz::from_khz(500.0),
            samples: vec![1.0; 4],
            component: SignalComponent::InPhase,
        };
        let q_ch = Channel {
            carrier: Hertz::from_khz(500.0),
            samples: vec![1.0; 4],
            component: SignalComponent::Quadrature,
        };
        let t = SignalTrace::new(Hertz::new(450.0), vec![q_ch, i_ch]);
        assert_eq!(
            t.channel_at(Hertz::from_khz(500.0)).unwrap().component,
            SignalComponent::InPhase
        );
        assert_eq!(
            t.quadrature_at(Hertz::from_khz(500.0)).unwrap().component,
            SignalComponent::Quadrature
        );
    }

    #[test]
    fn channel_statistics() {
        let c = Channel {
            carrier: Hertz::from_khz(500.0),
            samples: vec![1.0, 0.5, 1.5],
            component: SignalComponent::InPhase,
        };
        assert_eq!(c.min(), Some(0.5));
        assert_eq!(c.max(), Some(1.5));
        assert!((c.mean() - 1.0).abs() < 1e-12);
        assert_eq!(Channel::new(Hertz::new(1.0)).min(), None);
    }
}
