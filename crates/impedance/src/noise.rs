//! Measurement noise and baseline drift.
//!
//! Section VI-C: "in the long succession of data acquisition, the measured
//! signal changes in the baseline measurement. These changes can be caused by
//! many conditions such as the change in fluid concentration over long
//! acquisition time and the temperature drift of the fluid." The cloud-side
//! detrending exists precisely to remove this wander, so the synthesiser must
//! generate it.

use medsen_units::Seconds;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// White measurement noise at the lock-in output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// 1 σ of additive white noise, in normalized-amplitude units.
    pub sigma: f64,
}

impl NoiseModel {
    /// Noise floor calibrated so the smallest bead (≈ 0.25 % dip) has SNR ≈ 8
    /// while platelets sit near the detection threshold, as in the prototype.
    pub fn paper_default() -> Self {
        Self { sigma: 3.0e-4 }
    }

    /// A noiseless model for deterministic tests.
    pub fn none() -> Self {
        Self { sigma: 0.0 }
    }

    /// Draws one noise sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            0.0
        } else {
            medsen_microfluidics::stochastic::sample_normal(rng, 0.0, self.sigma)
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Deterministic slow baseline drift: linear + quadratic + slow sinusoid.
///
/// The quadratic term models temperature drift; the sinusoid models slow
/// concentration cycling. Parameters are per-run constants (drawn once by
/// the synthesiser) so the drift is smooth, as in real acquisitions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineDrift {
    /// Linear slope per second (normalized units).
    pub linear: f64,
    /// Quadratic coefficient per second².
    pub quadratic: f64,
    /// Amplitude of the slow sinusoidal component.
    pub wave_amplitude: f64,
    /// Period of the sinusoidal component.
    pub wave_period: Seconds,
    /// Phase offset of the sinusoid (radians).
    pub wave_phase: f64,
}

impl BaselineDrift {
    /// No drift at all.
    pub fn none() -> Self {
        Self {
            linear: 0.0,
            quadratic: 0.0,
            wave_amplitude: 0.0,
            wave_period: Seconds::new(1.0),
            wave_phase: 0.0,
        }
    }

    /// Drift magnitudes typical of a minutes-long acquisition: ~1 % wander
    /// over 100 s — large compared with the 0.25–1.5 % particle dips, which
    /// is why naive fixed-threshold detection fails without detrending.
    pub fn paper_default() -> Self {
        Self {
            linear: 4.0e-5,
            quadratic: -1.5e-7,
            wave_amplitude: 2.0e-3,
            wave_period: Seconds::new(60.0),
            wave_phase: 0.7,
        }
    }

    /// Randomises the drift constants for one run (keeps magnitudes in the
    /// paper_default envelope).
    pub fn randomized<R: Rng + ?Sized>(rng: &mut R) -> Self {
        use medsen_microfluidics::stochastic::sample_normal;
        let base = Self::paper_default();
        Self {
            linear: sample_normal(rng, 0.0, base.linear.abs()),
            quadratic: sample_normal(rng, 0.0, base.quadratic.abs()),
            wave_amplitude: sample_normal(rng, base.wave_amplitude, base.wave_amplitude / 4.0)
                .abs(),
            wave_period: Seconds::new(sample_normal(rng, base.wave_period.value(), 10.0).max(20.0)),
            wave_phase: sample_normal(rng, 0.0, 2.0),
        }
    }

    /// Baseline multiplier at time `t` (≈ 1.0 ± ~1 %).
    pub fn evaluate(&self, t: Seconds) -> f64 {
        let x = t.value();
        1.0 + self.linear * x
            + self.quadratic * x * x
            + self.wave_amplitude
                * (2.0 * core::f64::consts::PI * x / self.wave_period.value() + self.wave_phase)
                    .sin()
    }
}

impl Default for BaselineDrift {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_drift_is_unity() {
        let d = BaselineDrift::none();
        for t in [0.0, 1.0, 100.0, 10_000.0] {
            assert_eq!(d.evaluate(Seconds::new(t)), 1.0);
        }
    }

    #[test]
    fn paper_drift_wanders_but_stays_near_unity() {
        let d = BaselineDrift::paper_default();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for i in 0..10_000 {
            let v = d.evaluate(Seconds::new(i as f64 * 0.03));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(max - min > 1.0e-3, "drift too small: {}", max - min);
        assert!((0.97..=1.03).contains(&min) && (0.97..=1.03).contains(&max));
    }

    #[test]
    fn drift_is_smooth_over_one_sample() {
        let d = BaselineDrift::paper_default();
        let dt = 1.0 / 450.0;
        for i in 0..5_000 {
            let t = i as f64 * dt;
            let step = (d.evaluate(Seconds::new(t + dt)) - d.evaluate(Seconds::new(t))).abs();
            assert!(step < 5.0e-5, "drift step {step} at t={t}");
        }
    }

    #[test]
    fn noiseless_model_returns_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(NoiseModel::none().sample(&mut rng), 0.0);
    }

    #[test]
    fn noise_sigma_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = NoiseModel::paper_default();
        let n = 50_000;
        let var: f64 = (0..n).map(|_| m.sample(&mut rng).powi(2)).sum::<f64>() / n as f64;
        let sigma = var.sqrt();
        assert!((sigma - 3.0e-4).abs() < 2.0e-5, "sigma {sigma}");
    }

    #[test]
    fn randomized_drift_is_reproducible_per_seed() {
        let a = BaselineDrift::randomized(&mut StdRng::seed_from_u64(3));
        let b = BaselineDrift::randomized(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
