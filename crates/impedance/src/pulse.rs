//! Particle-transit pulse shapes.
//!
//! A particle between an electrode pair partially occludes the ion path, so
//! the lock-in output voltage *drops* for the duration of the transit
//! (Fig. 7). On the multi-electrode sensor, the lead electrode produces a
//! single dip per particle while every other output electrode — flanked by
//! excitation electrodes on both sides — produces a characteristic *double*
//! dip (Sec. III-B, Fig. 5).

use medsen_units::Seconds;
use serde::{Deserialize, Serialize};

/// Whether a pulse is a single dip or the double-dip signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Polarity {
    /// Single dip — the lead electrode's response.
    Single,
    /// Double dip — non-lead output electrodes.
    Double,
}

/// One rendered pulse in normalized-amplitude units.
///
/// Amplitudes are fractions of the baseline: `depth = 0.004` means the
/// normalized signal dips to 0.996 at the pulse centre, matching the scale of
/// Fig. 15's normalized plots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PulseSpec {
    /// Pulse centre time.
    pub center: Seconds,
    /// Full width at half maximum of each dip.
    pub fwhm: Seconds,
    /// Fractional dip depth at the (first) centre.
    pub depth: f64,
    /// Single or double dip.
    pub polarity: Polarity,
    /// For double dips: separation between the two dip centres.
    pub separation: Seconds,
}

impl PulseSpec {
    /// A single-dip pulse.
    pub fn unipolar(center: Seconds, fwhm: Seconds, depth: f64) -> Self {
        Self {
            center,
            fwhm,
            depth,
            polarity: Polarity::Single,
            separation: Seconds::ZERO,
        }
    }

    /// A double-dip pulse with the given centre-to-centre separation.
    pub fn double(center: Seconds, fwhm: Seconds, depth: f64, separation: Seconds) -> Self {
        Self {
            center,
            fwhm,
            depth,
            polarity: Polarity::Double,
            separation,
        }
    }

    /// Gaussian σ corresponding to the FWHM.
    pub fn sigma(&self) -> f64 {
        self.fwhm.value() / (2.0 * (2.0 * core::f64::consts::LN_2).sqrt())
    }

    /// Number of individual dips this pulse contributes to the trace.
    pub fn dip_count(&self) -> usize {
        match self.polarity {
            Polarity::Single => 1,
            Polarity::Double => 2,
        }
    }

    /// The (first dip's) earliest time at which the pulse meaningfully
    /// affects the signal (±4σ support).
    pub fn support_start(&self) -> Seconds {
        Seconds::new(self.center.value() - 4.0 * self.sigma())
    }

    /// The latest time at which the pulse meaningfully affects the signal.
    pub fn support_end(&self) -> Seconds {
        let last_center = match self.polarity {
            Polarity::Single => self.center.value(),
            Polarity::Double => self.center.value() + self.separation.value(),
        };
        Seconds::new(last_center + 4.0 * self.sigma())
    }

    /// Signed contribution of this pulse to the normalized signal at time
    /// `t` (always ≤ 0: particles only *add* impedance).
    pub fn evaluate(&self, t: f64) -> f64 {
        let sigma = self.sigma();
        let gauss = |c: f64| {
            let dt = t - c;
            (-dt * dt / (2.0 * sigma * sigma)).exp()
        };
        let first = gauss(self.center.value());
        let total = match self.polarity {
            Polarity::Single => first,
            Polarity::Double => first + gauss(self.center.value() + self.separation.value()),
        };
        -self.depth * total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pulse_dips_to_depth_at_center() {
        let p = PulseSpec::unipolar(Seconds::new(1.0), Seconds::new(0.02), 0.005);
        assert!((p.evaluate(1.0) + 0.005).abs() < 1e-12);
    }

    #[test]
    fn pulse_is_negligible_outside_support() {
        let p = PulseSpec::unipolar(Seconds::new(1.0), Seconds::new(0.02), 0.005);
        assert!(p.evaluate(p.support_start().value() - 0.01).abs() < 1e-5 * 0.005);
        assert!(p.evaluate(p.support_end().value() + 0.01).abs() < 1e-5 * 0.005);
    }

    #[test]
    fn fwhm_is_respected() {
        let p = PulseSpec::unipolar(Seconds::new(0.0), Seconds::new(0.02), 0.01);
        // At ±FWHM/2 the dip should be at half depth.
        let half = p.evaluate(0.01);
        assert!((half + 0.005).abs() < 1e-9, "half-depth was {half}");
    }

    #[test]
    fn double_pulse_has_two_minima() {
        let p = PulseSpec::double(
            Seconds::new(1.0),
            Seconds::new(0.01),
            0.004,
            Seconds::new(0.05),
        );
        let at_first = p.evaluate(1.0);
        let at_second = p.evaluate(1.05);
        let between = p.evaluate(1.025);
        assert!(at_first < between && at_second < between);
        assert!((at_first - at_second).abs() < 1e-9);
        assert_eq!(p.dip_count(), 2);
    }

    #[test]
    fn double_pulse_support_covers_both_dips() {
        let p = PulseSpec::double(
            Seconds::new(1.0),
            Seconds::new(0.01),
            0.004,
            Seconds::new(0.05),
        );
        assert!(p.support_end().value() > 1.05);
    }

    #[test]
    fn pulses_never_go_positive() {
        let p = PulseSpec::double(
            Seconds::new(0.5),
            Seconds::new(0.02),
            0.003,
            Seconds::new(0.03),
        );
        for i in 0..200 {
            let t = i as f64 * 0.005;
            assert!(p.evaluate(t) <= 0.0);
        }
    }
}
