//! Lock-in amplifier model (HF2IS + HF2TA).
//!
//! The instrument multiplies the measured current by each excitation carrier,
//! low-pass filters the product to recover the impedance envelope, and
//! decimates to 450 Hz. The trace synthesiser works directly at baseband for
//! efficiency, but applies this module's low-pass filter so rendered pulses
//! carry the same bandwidth limits as the real instrument — and
//! [`LockInAmplifier::demodulate`] implements the genuine mix-and-filter
//! operation, used in tests to validate the baseband shortcut.

use medsen_units::Hertz;
use serde::{Deserialize, Serialize};

/// A single-carrier lock-in channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LockInAmplifier {
    /// Low-pass cut-off of the output filter (paper: 120 Hz).
    pub cutoff: Hertz,
    /// Output sampling rate (paper: 450 Hz).
    pub sample_rate: Hertz,
}

impl LockInAmplifier {
    /// The paper's output stage: 120 Hz cut-off, 450 Hz sampling.
    pub fn paper_default() -> Self {
        Self {
            cutoff: Hertz::new(120.0),
            sample_rate: Hertz::new(450.0),
        }
    }

    /// Creates a lock-in stage.
    ///
    /// # Panics
    ///
    /// Panics if the cut-off violates Nyquist for the output rate.
    pub fn new(cutoff: Hertz, sample_rate: Hertz) -> Self {
        assert!(
            cutoff.value() < sample_rate.value() / 2.0,
            "cut-off must be below Nyquist"
        );
        Self {
            cutoff,
            sample_rate,
        }
    }

    /// Single-pole IIR smoothing coefficient for a given processing rate.
    fn alpha(&self, rate: Hertz) -> f64 {
        let dt = 1.0 / rate.value();
        let rc = 1.0 / (2.0 * core::f64::consts::PI * self.cutoff.value());
        dt / (rc + dt)
    }

    /// Applies the output low-pass filter in place at the output rate.
    ///
    /// Uses a forward+backward pass (zero-phase) so filtered peaks stay
    /// centred on their true transit times, as the instrument's symmetric
    /// FIR decimation filters do.
    pub fn filter(&self, samples: &mut [f64]) {
        self.filter_at_rate(samples, self.sample_rate);
    }

    /// Applies the low-pass filter in place for data sampled at `rate`.
    pub fn filter_at_rate(&self, samples: &mut [f64], rate: Hertz) {
        if samples.is_empty() {
            return;
        }
        let alpha = self.alpha(rate);
        // Forward pass.
        let mut y = samples[0];
        for s in samples.iter_mut() {
            y += alpha * (*s - y);
            *s = y;
        }
        // Backward pass (zero phase).
        let mut y = *samples.last().expect("non-empty");
        for s in samples.iter_mut().rev() {
            y += alpha * (*s - y);
            *s = y;
        }
    }

    /// Full demodulation: mixes a raw modulated waveform (sampled at
    /// `raw_rate`) with the `carrier`, low-pass filters the product, and
    /// decimates to the output rate. Returns the recovered envelope,
    /// normalized so a constant unit envelope demodulates to ≈ 1.0.
    ///
    /// # Panics
    ///
    /// Panics if the carrier is not well below the raw Nyquist rate.
    pub fn demodulate(&self, raw: &[f64], raw_rate: Hertz, carrier: Hertz) -> Vec<f64> {
        assert!(
            carrier.value() * 2.5 < raw_rate.value(),
            "carrier must be well below the raw Nyquist rate"
        );
        // Mix: multiply by the in-phase carrier; the DC term of the product
        // is envelope/2, so scale by 2.
        let mut mixed: Vec<f64> = raw
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let t = i as f64 / raw_rate.value();
                2.0 * s * (carrier.angular() * t).sin()
            })
            .collect();
        // Filter at the raw rate (removes the 2f image), twice for stronger
        // image rejection.
        self.filter_at_rate(&mut mixed, raw_rate);
        self.filter_at_rate(&mut mixed, raw_rate);
        // Decimate to the output rate.
        let step = (raw_rate.value() / self.sample_rate.value())
            .round()
            .max(1.0) as usize;
        mixed.iter().step_by(step).copied().collect()
    }
}

impl Default for LockInAmplifier {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_preserves_dc() {
        let li = LockInAmplifier::paper_default();
        let mut x = vec![1.0; 500];
        li.filter(&mut x);
        assert!(x.iter().all(|&v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn filter_attenuates_fast_wiggle_more_than_slow() {
        let li = LockInAmplifier::paper_default();
        let rate = 450.0;
        let amp_after = |f: f64| {
            let mut x: Vec<f64> = (0..2000)
                .map(|i| (2.0 * core::f64::consts::PI * f * i as f64 / rate).sin())
                .collect();
            li.filter(&mut x);
            x[500..1500].iter().fold(0.0f64, |m, &v| m.max(v.abs()))
        };
        let slow = amp_after(10.0);
        let fast = amp_after(200.0);
        assert!(slow > 0.9, "slow {slow}");
        assert!(fast < 0.55 * slow, "fast {fast}, slow {slow}");
    }

    #[test]
    fn filter_widens_sharp_pulse_to_lpf_limit() {
        let li = LockInAmplifier::paper_default();
        let mut x = vec![0.0; 450];
        x[225] = 1.0; // one-sample impulse
        li.filter(&mut x);
        // Energy spreads over ≈ 1/(2·120 Hz) ≈ 4 ms ≈ 2 samples each side.
        let above: usize = x.iter().filter(|&&v| v > 0.05).count();
        assert!(above >= 2, "impulse did not spread: {above}");
        assert!(x[225] < 1.0);
    }

    #[test]
    fn demodulate_recovers_constant_envelope() {
        let li = LockInAmplifier::paper_default();
        let raw_rate = Hertz::from_khz(90.0);
        let carrier = Hertz::from_khz(20.0);
        let raw: Vec<f64> = (0..9000)
            .map(|i| {
                let t = i as f64 / raw_rate.value();
                (carrier.angular() * t).sin()
            })
            .collect();
        let env = li.demodulate(&raw, raw_rate, carrier);
        let mid = &env[env.len() / 4..3 * env.len() / 4];
        let mean = mid.iter().sum::<f64>() / mid.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean envelope {mean}");
    }

    #[test]
    fn demodulate_tracks_amplitude_dip() {
        // A 20 % dip in carrier amplitude must appear in the demodulated
        // envelope — this validates the synthesiser's baseband shortcut.
        let li = LockInAmplifier::paper_default();
        let raw_rate = Hertz::from_khz(90.0);
        let carrier = Hertz::from_khz(20.0);
        let n = 18_000; // 0.2 s
        let raw: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / raw_rate.value();
                let envelope = if (0.08..0.12).contains(&t) { 0.8 } else { 1.0 };
                envelope * (carrier.angular() * t).sin()
            })
            .collect();
        let env = li.demodulate(&raw, raw_rate, carrier);
        let dip = env
            .iter()
            .skip(10)
            .take(env.len() - 20)
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(dip < 0.9, "dip {dip}");
        assert!(dip > 0.7, "dip {dip}");
    }

    #[test]
    #[should_panic(expected = "below Nyquist")]
    fn rejects_cutoff_above_nyquist() {
        let _ = LockInAmplifier::new(Hertz::new(300.0), Hertz::new(450.0));
    }

    #[test]
    fn filter_handles_empty_input() {
        let li = LockInAmplifier::paper_default();
        let mut x: Vec<f64> = vec![];
        li.filter(&mut x);
        assert!(x.is_empty());
    }
}
