//! Electrical substrate for the MedSen reproduction: the impedance-cytometry
//! signal chain.
//!
//! The paper measures the electrical impedance across a microfluidic channel
//! with co-planar electrode pairs excited by multi-frequency AC carriers and
//! demodulated by a Zurich Instruments HF2IS lock-in amplifier. This crate
//! models that chain end to end:
//!
//! * [`ElectrodeCircuit`] — the Fig. 3 equivalent circuit (double-layer
//!   capacitance in series with solution resistance) and its
//!   capacitive/resistive regimes;
//! * [`ExcitationConfig`] — the 8-carrier excitation
//!   (500–4000 kHz, 1 V) from Sec. VI-D;
//! * [`PulseSpec`]/[`pulse`] — the voltage-dip transients particles produce;
//! * [`LockInAmplifier`] — demodulation, 120 Hz low-pass, 450 Hz sampling;
//! * [`NoiseModel`]/[`BaselineDrift`] — measurement noise and the slow
//!   baseline wander the cloud-side detrending must remove;
//! * [`SignalTrace`] — the multi-channel sampled output;
//! * [`TraceSynthesizer`] — renders a pulse plan into a noisy, drifting trace.
//!
//! # Examples
//!
//! ```
//! use medsen_impedance::{ExcitationConfig, TraceSynthesizer, PulseSpec};
//! use medsen_units::Seconds;
//!
//! let mut synth = TraceSynthesizer::paper_default(7);
//! let pulses = vec![PulseSpec::unipolar(Seconds::new(0.5), Seconds::new(0.02), 0.004)];
//! let trace = synth.render(&pulses, Seconds::new(1.0));
//! assert_eq!(trace.channels().len(), ExcitationConfig::paper_default().carriers().len());
//! ```

pub mod circuit;
pub mod excitation;
pub mod lockin;
pub mod noise;
pub mod pulse;
pub mod synth;
pub mod trace;

pub use circuit::{ElectrodeCircuit, Regime};
pub use excitation::ExcitationConfig;
pub use lockin::LockInAmplifier;
pub use noise::{BaselineDrift, NoiseModel};
pub use pulse::{Polarity, PulseSpec};
pub use synth::TraceSynthesizer;
pub use trace::{Channel, SignalComponent, SignalTrace};
