//! Multi-carrier AC excitation (Sec. VI-D).
//!
//! "The input electrode of the microfluidic channel is excited with a
//! combination of [500, 800, 1000, 1200, 1400, 2000, 3000, 4000] kHz carrier
//! frequencies. Excitation voltage is at 1 V per excitation signal. The
//! recovered signal is sampled at 450 Hz. The recovering low pass filter is
//! set to have cut off frequency at 120 Hz."

use medsen_units::{Hertz, Volts};
use serde::{Deserialize, Serialize};

/// The excitation and acquisition settings of the impedance spectroscope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExcitationConfig {
    carriers: Vec<Hertz>,
    /// Excitation amplitude per carrier.
    pub amplitude: Volts,
    /// Output (demodulated) sampling rate.
    pub sample_rate: Hertz,
    /// Low-pass cut-off of the recovery filter.
    pub lpf_cutoff: Hertz,
}

impl ExcitationConfig {
    /// Maximum simultaneous carriers of the HF2IS instrument.
    pub const MAX_CARRIERS: usize = 8;

    /// The paper's exact configuration.
    pub fn paper_default() -> Self {
        Self {
            carriers: [500.0, 800.0, 1000.0, 1200.0, 1400.0, 2000.0, 3000.0, 4000.0]
                .iter()
                .map(|&khz| Hertz::from_khz(khz))
                .collect(),
            amplitude: Volts::new(1.0),
            sample_rate: Hertz::new(450.0),
            lpf_cutoff: Hertz::new(120.0),
        }
    }

    /// The reduced carrier set shown in Fig. 15 (500/1000/2000/2500/3000 kHz).
    pub fn figure15() -> Self {
        let mut cfg = Self::paper_default();
        cfg.carriers = [500.0, 1000.0, 2000.0, 2500.0, 3000.0]
            .iter()
            .map(|&khz| Hertz::from_khz(khz))
            .collect();
        cfg
    }

    /// Builds a custom configuration.
    ///
    /// # Errors
    ///
    /// Fails when the carrier list is empty, exceeds [`Self::MAX_CARRIERS`],
    /// contains a duplicate or non-positive carrier, or when the LPF cut-off
    /// does not respect Nyquist (`lpf_cutoff < sample_rate / 2`).
    pub fn new(
        carriers: Vec<Hertz>,
        amplitude: Volts,
        sample_rate: Hertz,
        lpf_cutoff: Hertz,
    ) -> Result<Self, String> {
        if carriers.is_empty() {
            return Err("at least one carrier frequency is required".into());
        }
        if carriers.len() > Self::MAX_CARRIERS {
            return Err(format!(
                "HF2IS supports at most {} simultaneous carriers",
                Self::MAX_CARRIERS
            ));
        }
        if carriers.iter().any(|f| f.value() <= 0.0) {
            return Err("carrier frequencies must be positive".into());
        }
        for (i, a) in carriers.iter().enumerate() {
            if carriers[i + 1..].iter().any(|b| b == a) {
                return Err("carrier frequencies must be distinct".into());
            }
        }
        if lpf_cutoff.value() >= sample_rate.value() / 2.0 {
            return Err("LPF cut-off must be below the Nyquist frequency".into());
        }
        Ok(Self {
            carriers,
            amplitude,
            sample_rate,
            lpf_cutoff,
        })
    }

    /// The carrier frequencies.
    pub fn carriers(&self) -> &[Hertz] {
        &self.carriers
    }

    /// Index of the carrier closest to `f`, if any carrier is configured.
    pub fn carrier_index(&self, f: Hertz) -> Option<usize> {
        self.carriers
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                (a.value() - f.value())
                    .abs()
                    .partial_cmp(&(b.value() - f.value()).abs())
                    .expect("frequencies are finite")
            })
            .map(|(i, _)| i)
    }

    /// Minimum resolvable peak width: the LPF smears any transient to at
    /// least ~1/(2·f_c) wide.
    pub fn min_peak_width_s(&self) -> f64 {
        1.0 / (2.0 * self.lpf_cutoff.value())
    }
}

impl Default for ExcitationConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_eight_carriers_at_1v() {
        let cfg = ExcitationConfig::paper_default();
        assert_eq!(cfg.carriers().len(), 8);
        assert_eq!(cfg.amplitude.value(), 1.0);
        assert_eq!(cfg.sample_rate.value(), 450.0);
        assert_eq!(cfg.lpf_cutoff.value(), 120.0);
        assert_eq!(cfg.carriers()[0].value(), 5.0e5);
        assert_eq!(cfg.carriers()[7].value(), 4.0e6);
    }

    #[test]
    fn rejects_too_many_carriers() {
        let carriers: Vec<Hertz> = (1..=9).map(|i| Hertz::from_khz(i as f64 * 100.0)).collect();
        let err = ExcitationConfig::new(
            carriers,
            Volts::new(1.0),
            Hertz::new(450.0),
            Hertz::new(120.0),
        )
        .unwrap_err();
        assert!(err.contains("at most 8"));
    }

    #[test]
    fn rejects_duplicate_carriers() {
        let err = ExcitationConfig::new(
            vec![Hertz::from_khz(500.0), Hertz::from_khz(500.0)],
            Volts::new(1.0),
            Hertz::new(450.0),
            Hertz::new(120.0),
        )
        .unwrap_err();
        assert!(err.contains("distinct"));
    }

    #[test]
    fn rejects_empty_and_nyquist_violation() {
        assert!(ExcitationConfig::new(
            vec![],
            Volts::new(1.0),
            Hertz::new(450.0),
            Hertz::new(120.0)
        )
        .is_err());
        assert!(ExcitationConfig::new(
            vec![Hertz::from_khz(500.0)],
            Volts::new(1.0),
            Hertz::new(200.0),
            Hertz::new(120.0)
        )
        .is_err());
    }

    #[test]
    fn carrier_index_finds_nearest() {
        let cfg = ExcitationConfig::paper_default();
        assert_eq!(cfg.carrier_index(Hertz::from_khz(2000.0)), Some(5));
        assert_eq!(cfg.carrier_index(Hertz::from_khz(1900.0)), Some(5));
        assert_eq!(cfg.carrier_index(Hertz::from_khz(490.0)), Some(0));
    }

    #[test]
    fn min_peak_width_follows_lpf() {
        let cfg = ExcitationConfig::paper_default();
        assert!((cfg.min_peak_width_s() - 1.0 / 240.0).abs() < 1e-12);
    }

    #[test]
    fn figure15_carrier_set() {
        let cfg = ExcitationConfig::figure15();
        assert_eq!(cfg.carriers().len(), 5);
        assert_eq!(cfg.carriers()[3].value(), 2.5e6);
    }
}
