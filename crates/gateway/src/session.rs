//! Per-dongle session lifecycle: connect → stream → drain → close.
//!
//! A [`DongleSession`] models one point-of-care dongle+phone pair talking
//! to the clinic gateway. Each request is encoded in the session's
//! [`WireFormat`] (compact binary by default, JSON for debugging and
//! legacy clients), framed by [`crate::wire`], and pushed across a
//! simulated phone uplink
//! ([`NetworkLink`]) that can be made flaky; transmission failures retry
//! with exponential backoff, and backpressure sheds retry after the
//! gateway's hint — all against a per-request **simulated** deadline, so
//! tests are deterministic regardless of host scheduling.

use crate::gateway::{
    Gateway, PendingReply, ReplyError, SubmitError, SymbolIngest, SymbolSubmitError,
};
use medsen_cloud::auth::BeadSignature;
use medsen_cloud::service::{Request, Response};
use medsen_impedance::SignalTrace;
use medsen_phone::{LinkError, NetworkLink, OneWayUploader, SymbolBudget};
use medsen_telemetry::{ActiveTrace, Stage};
use medsen_units::Seconds;
use medsen_wire::WireFormat;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

/// Exponential backoff schedule for flaky-link retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum transmission attempts per request (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Seconds,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
}

impl RetryPolicy {
    /// Five attempts, 100 ms initial backoff, doubling.
    pub fn paper_default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff: Seconds::from_millis(100.0),
            multiplier: 2.0,
        }
    }

    /// Backoff before retry number `retry` (0-based).
    pub fn backoff(&self, retry: u32) -> Seconds {
        self.base_backoff * self.multiplier.powi(retry as i32)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// How a session pushes requests across the uplink.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum UplinkMode {
    /// Two-way: transmit the framed upload, retry on failure with
    /// exponential backoff (requires a downlink for the implicit ACK).
    #[default]
    Retry,
    /// One-way (data diode): compress and fountain-encode the request,
    /// stream budgeted coded symbols with no retry and no ACK. Dropped
    /// symbols are simply lost; the budget's redundancy covers them.
    Fountain {
        /// How much redundancy the phone front-loads.
        budget: SymbolBudget,
    },
}

/// Per-session link and deadline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// The simulated phone→cloud uplink.
    pub link: NetworkLink,
    /// Probability in `[0, 1)` that one transmission attempt fails.
    pub link_failure_rate: f64,
    /// Seed for the session's failure RNG (deterministic per session).
    pub seed: u64,
    /// Simulated time budget per request, covering transfer time, retry
    /// backoff, and shed retry-after waits.
    pub deadline: Seconds,
    /// Flaky-link retry schedule (two-way mode only).
    pub retry: RetryPolicy,
    /// Two-way retry or one-way fountain streaming.
    pub uplink: UplinkMode,
    /// How request bodies are encoded on the wire: compact binary
    /// (default) or JSON for debugging and legacy clients. The gateway
    /// replies in kind.
    pub wire: WireFormat,
}

impl SessionConfig {
    /// A perfectly reliable LTE uplink with a generous deadline.
    pub fn reliable() -> Self {
        Self {
            link: NetworkLink::lte_uplink(),
            link_failure_rate: 0.0,
            seed: 0,
            deadline: Seconds::new(600.0),
            retry: RetryPolicy::paper_default(),
            uplink: UplinkMode::Retry,
            wire: WireFormat::Binary,
        }
    }

    /// The same configuration with an explicit wire format.
    pub fn with_wire(self, wire: WireFormat) -> Self {
        Self { wire, ..self }
    }

    /// A flaky uplink: each transmission attempt fails with probability
    /// `rate`, drawn from an RNG seeded with `seed`.
    pub fn flaky(rate: f64, seed: u64) -> Self {
        Self {
            link_failure_rate: rate,
            seed,
            ..Self::reliable()
        }
    }

    /// A one-way session over the same flaky link: no retries, no ACKs —
    /// each request streams as fountain symbols under `budget`.
    pub fn fountain(rate: f64, seed: u64, budget: SymbolBudget) -> Self {
        Self {
            uplink: UplinkMode::Fountain { budget },
            ..Self::flaky(rate, seed)
        }
    }
}

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Connected, nothing in flight.
    Ready,
    /// At least one request submitted and not yet drained.
    Streaming,
    /// All submitted requests have been awaited.
    Drained,
    /// Closed; no further requests possible.
    Closed,
}

/// Why a session operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The session's link cannot model a transfer at all.
    Link(LinkError),
    /// The request could not be encoded in the session's wire format.
    Encode {
        /// Encoder diagnostics.
        reason: String,
    },
    /// The simulated time budget ran out before the request was accepted.
    DeadlineExceeded {
        /// Simulated seconds spent on this request.
        spent: Seconds,
        /// The configured budget.
        deadline: Seconds,
    },
    /// Every transmission attempt failed.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
    },
    /// A one-way stream emitted its whole symbol budget without the
    /// gateway completing the block (symbol loss exceeded the budget's
    /// redundancy).
    SymbolBudgetExhausted {
        /// Coded symbols emitted before giving up.
        emitted: u64,
    },
    /// The gateway refused a one-way upload for a reason streaming more
    /// symbols cannot fix (corrupt reassembly, stream mismatch, or a
    /// shed dispatch).
    OneWayRejected {
        /// The gateway's diagnostic.
        reason: String,
    },
    /// The gateway has shut down.
    GatewayClosed,
    /// The gateway accepted the request but never replied.
    Reply(ReplyError),
    /// The session was already closed.
    SessionClosed,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Link(e) => write!(f, "link error: {e}"),
            SessionError::Encode { reason } => write!(f, "request encode failed: {reason}"),
            SessionError::DeadlineExceeded { spent, deadline } => {
                write!(f, "deadline exceeded: spent {spent} of {deadline}")
            }
            SessionError::RetriesExhausted { attempts } => {
                write!(f, "uplink failed after {attempts} attempts")
            }
            SessionError::SymbolBudgetExhausted { emitted } => {
                write!(f, "one-way upload incomplete after {emitted} symbols")
            }
            SessionError::OneWayRejected { reason } => {
                write!(f, "one-way upload rejected: {reason}")
            }
            SessionError::GatewayClosed => write!(f, "gateway is shut down"),
            SessionError::Reply(e) => write!(f, "reply error: {e}"),
            SessionError::SessionClosed => write!(f, "session already closed"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ReplyError> for SessionError {
    fn from(e: ReplyError) -> Self {
        SessionError::Reply(e)
    }
}

/// Counters a session accumulates over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SessionStats {
    /// Requests accepted by the gateway.
    pub requests: u64,
    /// Transmission attempts repeated after a simulated link failure.
    pub link_retries: u64,
    /// Resubmissions after a backpressure rejection.
    pub shed_retries: u64,
    /// Fountain symbols pushed onto the link (one-way mode).
    pub symbols_emitted: u64,
    /// Fountain symbols the link (or the rate limiter) swallowed.
    pub symbols_dropped: u64,
    /// Total simulated uplink time (transfers + backoffs + shed waits).
    pub sim_uplink: Seconds,
}

/// Final report returned by [`DongleSession::close`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The gateway-assigned session id.
    pub session_id: u64,
    /// Lifetime counters.
    pub stats: SessionStats,
    /// Responses that were still pending at close time, in submit order.
    pub responses: Vec<Response>,
}

/// One connected dongle+phone pair.
pub struct DongleSession<'g> {
    gateway: &'g Gateway,
    id: u64,
    config: SessionConfig,
    rng: rand::rngs::StdRng,
    state: SessionState,
    pending: VecDeque<PendingReply>,
    stats: SessionStats,
    /// One-way uploads encoded so far; seeds each request's distinct
    /// fountain stream (see [`medsen_phone::stream_seed_for`]).
    upload_seq: u64,
}

impl<'g> DongleSession<'g> {
    pub(crate) fn connect(gateway: &'g Gateway, config: SessionConfig) -> Self {
        let id = gateway.allocate_session_id();
        Self {
            gateway,
            id,
            rng: rand::rngs::StdRng::seed_from_u64(config.seed ^ id),
            config,
            state: SessionState::Ready,
            pending: VecDeque::new(),
            stats: SessionStats::default(),
            upload_seq: 0,
        }
    }

    /// The gateway-assigned session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Submits a request without waiting for its response (pipelined
    /// streaming). Responses arrive in submit order via [`drain`].
    ///
    /// [`drain`]: DongleSession::drain
    pub fn submit(&mut self, request: &Request) -> Result<(), SessionError> {
        let reply = self.transmit(request)?;
        self.pending.push_back(reply);
        self.state = SessionState::Streaming;
        Ok(())
    }

    /// Submits a request and blocks for its response. Any previously
    /// pipelined responses stay queued.
    pub fn request(&mut self, request: &Request) -> Result<Response, SessionError> {
        let reply = self.transmit(request)?;
        Ok(reply.wait()?)
    }

    /// Convenience: enroll `identifier` with its expected bead signature.
    pub fn enroll(
        &mut self,
        identifier: &str,
        signature: BeadSignature,
    ) -> Result<Response, SessionError> {
        self.request(&Request::Enroll {
            identifier: identifier.to_string(),
            signature,
        })
    }

    /// Convenience: stream one trace for analysis (pipelined).
    pub fn submit_analyze(
        &mut self,
        trace: SignalTrace,
        authenticate: bool,
    ) -> Result<(), SessionError> {
        self.submit(&Request::Analyze {
            trace,
            authenticate,
        })
    }

    /// Convenience: analyze one trace synchronously.
    pub fn analyze(
        &mut self,
        trace: SignalTrace,
        authenticate: bool,
    ) -> Result<Response, SessionError> {
        self.request(&Request::Analyze {
            trace,
            authenticate,
        })
    }

    /// Waits for every pipelined response, in submit order.
    pub fn drain(&mut self) -> Result<Vec<Response>, SessionError> {
        let mut responses = Vec::with_capacity(self.pending.len());
        while let Some(reply) = self.pending.pop_front() {
            responses.push(reply.wait()?);
        }
        if self.state == SessionState::Streaming {
            self.state = SessionState::Drained;
        }
        Ok(responses)
    }

    /// Drains any remaining responses and closes the session.
    pub fn close(mut self) -> Result<SessionReport, SessionError> {
        let responses = self.drain()?;
        self.state = SessionState::Closed;
        Ok(SessionReport {
            session_id: self.id,
            stats: self.stats,
            responses,
        })
    }

    /// Encodes and transmits one request across the simulated uplink.
    /// Two-way ([`UplinkMode::Retry`]) transmissions retry flaky-link
    /// drops and shed rejections; one-way ([`UplinkMode::Fountain`])
    /// transmissions stream budgeted coded symbols with no retry at all.
    /// Both run against the per-request simulated deadline.
    fn transmit(&mut self, request: &Request) -> Result<PendingReply, SessionError> {
        if self.state == SessionState::Closed {
            return Err(SessionError::SessionClosed);
        }
        // The *phone* mints the trace: the id rides both inside the
        // request body's traced envelope and in the upload header, so
        // every tier downstream — admission, queue, shards, WAL,
        // replication — joins this chain instead of starting its own.
        let trace = self.gateway.phone_trace();
        let trace_raw = trace.as_ref().map_or(0, |t| t.id.get());
        let encode_started = Instant::now();
        let body = medsen_cloud::wire::encode_request_traced(self.config.wire, request, trace_raw)
            .map_err(|e| SessionError::Encode {
                reason: e.to_string(),
            })?;
        let upload = crate::wire::encode_upload_traced(self.id, self.config.wire, &body, trace_raw);
        if let Some(trace) = &trace {
            trace.record(
                Stage::PhoneEncode,
                self.id as u32,
                encode_started,
                Instant::now(),
            );
        }
        match self.config.uplink {
            UplinkMode::Retry => self.transmit_retry(request, upload, trace),
            UplinkMode::Fountain { budget } => self.transmit_fountain(&upload, budget, trace),
        }
    }

    /// The two-way path: framed upload, flaky-link retries with backoff,
    /// then the gateway queue with shed retries.
    fn transmit_retry(
        &mut self,
        request: &Request,
        mut upload: Vec<u8>,
        trace: Option<ActiveTrace>,
    ) -> Result<PendingReply, SessionError> {
        // Enrollments route by the identifier's shard hash so writes to
        // the same auth shard queue on the same lane (with lanes == shards
        // each lane's worker group owns one shard's write lock); all other
        // traffic spreads by session id.
        let route_key = match request {
            Request::Enroll { identifier, .. } => medsen_cloud::identity_hash(identifier),
            _ => self.id,
        };
        let metrics = self.gateway.metrics_handle();
        let deadline = self.config.deadline;
        let mut spent = Seconds::ZERO;

        // Phase 1: push the bytes across the flaky uplink.
        let uplink_started = Instant::now();
        let mut attempts = 0u32;
        loop {
            let transfer = self
                .config
                .link
                .try_transfer_time(upload.len())
                .map_err(SessionError::Link)?;
            spent += transfer;
            attempts += 1;
            if spent.value() > deadline.value() {
                metrics.on_failed();
                self.stats.sim_uplink += spent;
                return Err(SessionError::DeadlineExceeded { spent, deadline });
            }
            let dropped = self.config.link_failure_rate > 0.0
                && self.rng.random::<f64>() < self.config.link_failure_rate;
            if !dropped {
                break;
            }
            if attempts >= self.config.retry.max_attempts {
                metrics.on_failed();
                self.stats.sim_uplink += spent;
                return Err(SessionError::RetriesExhausted { attempts });
            }
            let backoff = self.config.retry.backoff(attempts - 1);
            spent += backoff;
            self.stats.link_retries += 1;
            metrics.on_retried();
            // Park on the gateway's compressed timer wheel so retries pace
            // the real queue without burning real backoff seconds.
            self.gateway.pace(backoff);
        }
        metrics.uplink_time.record_seconds(spent.value());
        if let Some(trace) = &trace {
            trace.record(
                Stage::Uplink,
                self.id as u32,
                uplink_started,
                Instant::now(),
            );
        }

        // Phase 2: enter the gateway queue, honoring the shed policy.
        loop {
            match self.gateway.submit_keyed(upload, route_key) {
                Ok(reply) => {
                    self.stats.requests += 1;
                    self.stats.sim_uplink += spent;
                    return Ok(reply);
                }
                Err(
                    SubmitError::Busy {
                        retry_after,
                        upload: returned,
                    }
                    | SubmitError::RateLimited {
                        retry_after,
                        upload: returned,
                    },
                ) => {
                    upload = returned;
                    spent += retry_after;
                    if spent.value() > deadline.value() {
                        metrics.on_failed();
                        self.stats.sim_uplink += spent;
                        return Err(SessionError::DeadlineExceeded { spent, deadline });
                    }
                    self.stats.shed_retries += 1;
                    metrics.on_retried();
                    // Unlike the modeled uplink, the queue is real: the
                    // retry-after hint becomes a wait on the gateway's
                    // time-compressed timer wheel, so workers still drain
                    // between resubmissions but the session parks for
                    // milliseconds of real time instead of the full hint.
                    self.gateway.pace(retry_after);
                }
                Err(SubmitError::Closed { .. }) => {
                    metrics.on_failed();
                    return Err(SessionError::GatewayClosed);
                }
            }
        }
    }

    /// The one-way path: compress + fountain-encode the complete framed
    /// upload, then push each coded symbol across the link exactly once.
    /// A dropped symbol is gone — there is no ACK to miss and no retry.
    /// The stream ends when the gateway reports the block complete or
    /// the budget runs out. (A real diode phone emits its whole budget
    /// blind; stopping at completion is an in-process shortcut that
    /// changes test time, not semantics — the gateway treats stragglers
    /// as redundant.)
    fn transmit_fountain(
        &mut self,
        framed: &[u8],
        budget: SymbolBudget,
        trace: Option<ActiveTrace>,
    ) -> Result<PendingReply, SessionError> {
        let seq = self.upload_seq;
        self.upload_seq += 1;
        let upload = OneWayUploader::with_budget(budget)
            .encode_numbered(self.id, seq, framed)
            .map_err(|e| SessionError::Encode {
                reason: e.to_string(),
            })?;
        let metrics = self.gateway.metrics_handle();
        let deadline = self.config.deadline;
        let mut spent = Seconds::ZERO;
        let uplink_started = Instant::now();
        for wire in &upload.frames {
            let transfer = self
                .config
                .link
                .try_transfer_time(wire.len())
                .map_err(SessionError::Link)?;
            spent += transfer;
            self.stats.symbols_emitted += 1;
            if spent.value() > deadline.value() {
                metrics.on_failed();
                self.stats.sim_uplink += spent;
                return Err(SessionError::DeadlineExceeded { spent, deadline });
            }
            let dropped = self.config.link_failure_rate > 0.0
                && self.rng.random::<f64>() < self.config.link_failure_rate;
            if dropped {
                self.stats.symbols_dropped += 1;
                continue;
            }
            match self.gateway.ingest_symbol(wire) {
                Ok(SymbolIngest::Complete { reply, .. }) => {
                    metrics.uplink_time.record_seconds(spent.value());
                    if let Some(trace) = &trace {
                        trace.record(
                            Stage::Uplink,
                            self.id as u32,
                            uplink_started,
                            Instant::now(),
                        );
                    }
                    self.stats.requests += 1;
                    self.stats.sim_uplink += spent;
                    return Ok(reply);
                }
                Ok(_) => {}
                // A rate-limited symbol on a one-way link is just another
                // lost symbol: the phone can't be told, the budget covers it.
                Err(SymbolSubmitError::RateLimited { .. }) => {
                    self.stats.symbols_dropped += 1;
                }
                Err(SymbolSubmitError::Closed) => {
                    metrics.on_failed();
                    self.stats.sim_uplink += spent;
                    return Err(SessionError::GatewayClosed);
                }
                Err(e) => {
                    metrics.on_failed();
                    self.stats.sim_uplink += spent;
                    return Err(SessionError::OneWayRejected {
                        reason: e.to_string(),
                    });
                }
            }
        }
        metrics.on_failed();
        self.stats.sim_uplink += spent;
        Err(SessionError::SymbolBudgetExhausted {
            emitted: self.stats.symbols_emitted,
        })
    }
}

impl fmt::Debug for DongleSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DongleSession")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Gateway {
    /// Connects a new dongle session with the given link configuration.
    pub fn connect(&self, config: SessionConfig) -> DongleSession<'_> {
        DongleSession::connect(self, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::{GatewayConfig, ShedPolicy};
    use medsen_cloud::service::CloudService;

    fn gateway(workers: usize, capacity: usize) -> Gateway {
        Gateway::new(
            CloudService::new(),
            GatewayConfig {
                queue_capacity: capacity,
                workers,
                shed_policy: ShedPolicy::Reject {
                    retry_after: Seconds::from_millis(10.0),
                },
            },
        )
    }

    #[test]
    fn lifecycle_ready_streaming_drained_closed() {
        let gw = gateway(1, 8);
        let mut session = gw.connect(SessionConfig::reliable());
        assert_eq!(session.state(), SessionState::Ready);
        session.submit(&Request::Ping).expect("submits");
        assert_eq!(session.state(), SessionState::Streaming);
        let responses = session.drain().expect("drains");
        assert_eq!(responses, vec![Response::Pong]);
        assert_eq!(session.state(), SessionState::Drained);
        let report = session.close().expect("closes");
        assert_eq!(report.stats.requests, 1);
        assert!(report.responses.is_empty());
        gw.shutdown();
    }

    #[test]
    fn synchronous_request_round_trips() {
        let gw = gateway(2, 8);
        let mut session = gw.connect(SessionConfig::reliable());
        assert_eq!(
            session.request(&Request::Ping).expect("pong"),
            Response::Pong
        );
        let stats = session.stats();
        assert_eq!(stats.requests, 1);
        assert!(stats.sim_uplink.value() > 0.0, "uplink time accrues");
        gw.shutdown();
    }

    #[test]
    fn flaky_link_retries_are_deterministic_and_counted() {
        let gw = gateway(1, 8);
        // 60% failure rate: retries are near-certain over a few requests.
        let mut session = gw.connect(SessionConfig::flaky(0.6, 7));
        let mut retried = 0;
        for _ in 0..8 {
            match session.request(&Request::Ping) {
                Ok(Response::Pong) => {}
                Ok(other) => panic!("unexpected {other:?}"),
                Err(SessionError::RetriesExhausted { .. }) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
            retried = session.stats().link_retries;
        }
        assert!(retried > 0, "a 60% flaky link must retry");
        // Replaying the same seed reproduces the same retry count.
        let gw2 = gateway(1, 8);
        let mut replay = gw2.connect(SessionConfig::flaky(0.6, 7));
        // Session ids differ across gateways only if allocation differs;
        // both gateways allocate id 1, so the RNG stream matches.
        assert_eq!(replay.id(), session.id());
        for _ in 0..8 {
            let _ = replay.request(&Request::Ping);
        }
        assert_eq!(replay.stats().link_retries, retried);
        gw.shutdown();
        gw2.shutdown();
    }

    #[test]
    fn dead_link_reports_retries_exhausted() {
        let gw = gateway(1, 8);
        let mut session = gw.connect(SessionConfig::flaky(1.0, 3));
        match session.request(&Request::Ping) {
            Err(SessionError::RetriesExhausted { attempts }) => {
                assert_eq!(attempts, RetryPolicy::paper_default().max_attempts);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(gw.metrics().failed >= 1);
        gw.shutdown();
    }

    #[test]
    fn tight_deadline_fails_before_transmission() {
        let gw = gateway(1, 8);
        let mut config = SessionConfig::reliable();
        config.deadline = Seconds::from_millis(1.0); // < one LTE latency
        let mut session = gw.connect(config);
        match session.request(&Request::Ping) {
            Err(SessionError::DeadlineExceeded { spent, deadline }) => {
                assert!(spent.value() > deadline.value());
            }
            other => panic!("unexpected {other:?}"),
        }
        gw.shutdown();
    }

    #[test]
    fn misconfigured_link_surfaces_link_error() {
        let gw = gateway(1, 8);
        let mut config = SessionConfig::reliable();
        config.link.bandwidth_mbps = 0.0;
        let mut session = gw.connect(config);
        assert!(matches!(
            session.request(&Request::Ping),
            Err(SessionError::Link(LinkError::NonPositiveBandwidth { .. }))
        ));
        gw.shutdown();
    }

    #[test]
    fn close_with_no_traffic_reports_zero_requests() {
        let gw = gateway(1, 8);
        let session = gw.connect(SessionConfig::reliable());
        let report = session.close().expect("closes clean");
        assert_eq!(report.stats.requests, 0);
        assert!(report.responses.is_empty());
        gw.shutdown();
    }

    #[test]
    fn json_wire_sessions_round_trip_like_binary() {
        let gw = gateway(1, 8);
        for format in [WireFormat::Binary, WireFormat::Json] {
            let mut session = gw.connect(SessionConfig::reliable().with_wire(format));
            assert_eq!(
                session.request(&Request::Ping).expect("pong"),
                Response::Pong,
                "{format}"
            );
        }
        gw.shutdown();
    }

    #[test]
    fn backoff_schedule_grows_geometrically() {
        let p = RetryPolicy::paper_default();
        assert!((p.backoff(0).value() - 0.1).abs() < 1e-12);
        assert!((p.backoff(1).value() - 0.2).abs() < 1e-12);
        assert!((p.backoff(3).value() - 0.8).abs() < 1e-12);
    }
}
