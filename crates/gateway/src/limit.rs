//! Per-session token-bucket rate limiting.
//!
//! One noisy dongle — a bug-looping app, or a fountain session spraying
//! symbols far past its budget — must not starve every other session's
//! place in the queue. Each session gets its own bucket: `burst` tokens
//! of headroom, refilled at `refill_per_sec`. A submission (or symbol)
//! that finds the bucket empty is refused with a retry-after hint and
//! counted under `gateway.rate_limited`; well-behaved sessions never
//! notice the limiter exists.
//!
//! Buckets are tracked in real time (not the compressed simulation
//! clock) because the limiter protects the real queue from real arrival
//! rates.

use medsen_units::Seconds;
use std::collections::HashMap;
use std::time::Instant;

/// Cap on tracked buckets: beyond this, full (idle) buckets are pruned —
/// a full bucket is indistinguishable from a fresh one.
const MAX_TRACKED_SESSIONS: usize = 8192;

/// Token-bucket parameters applied per session id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Tokens a silent session accumulates — the burst it may spend
    /// instantly. Must be at least 1.0 to ever admit anything.
    pub burst: f64,
    /// Steady-state tokens per real second.
    pub refill_per_sec: f64,
}

impl RateLimitConfig {
    /// A limit of `refill_per_sec` sustained submissions per session with
    /// `burst` of instantaneous headroom.
    pub fn per_session(burst: f64, refill_per_sec: f64) -> Self {
        Self {
            burst: burst.max(1.0),
            refill_per_sec: refill_per_sec.max(0.0),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// The per-session bucket table. Lives behind the gateway's mutex; all
/// methods take `&mut self`.
#[derive(Debug)]
pub(crate) struct RateLimiter {
    config: RateLimitConfig,
    buckets: HashMap<u64, Bucket>,
}

impl RateLimiter {
    pub(crate) fn new(config: RateLimitConfig) -> Self {
        Self {
            config,
            buckets: HashMap::new(),
        }
    }

    /// Spend one token from `session`'s bucket. `Err` carries the real
    /// time until a token will be available.
    pub(crate) fn try_take(&mut self, session: u64, now: Instant) -> Result<(), Seconds> {
        if self.buckets.len() >= MAX_TRACKED_SESSIONS && !self.buckets.contains_key(&session) {
            let burst = self.config.burst;
            let refill = self.config.refill_per_sec;
            // Apply refill as of `now` before judging fullness: stored
            // token counts are stale until a bucket's next access.
            self.buckets.retain(|_, b| {
                let idle = now.saturating_duration_since(b.refilled).as_secs_f64();
                b.tokens + idle * refill < burst
            });
        }
        let bucket = self.buckets.entry(session).or_insert(Bucket {
            tokens: self.config.burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens =
            (bucket.tokens + elapsed * self.config.refill_per_sec).min(self.config.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else if self.config.refill_per_sec > 0.0 {
            Err(Seconds::new(
                (1.0 - bucket.tokens) / self.config.refill_per_sec,
            ))
        } else {
            // No refill configured: the burst is a hard cap. Hint one
            // second so paced retry loops stay bounded instead of spinning.
            Err(Seconds::new(1.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_spends_then_refuses() {
        let mut rl = RateLimiter::new(RateLimitConfig::per_session(3.0, 0.0));
        let now = Instant::now();
        for _ in 0..3 {
            assert!(rl.try_take(1, now).is_ok());
        }
        let wait = rl.try_take(1, now).expect_err("bucket empty");
        assert!(wait.value() > 0.0);
    }

    #[test]
    fn refill_restores_tokens_over_time() {
        let mut rl = RateLimiter::new(RateLimitConfig::per_session(1.0, 10.0));
        let t0 = Instant::now();
        assert!(rl.try_take(7, t0).is_ok());
        let wait = rl.try_take(7, t0).expect_err("spent");
        assert!(wait.value() <= 0.1 + 1e-9, "10/s refill → ≤100ms wait");
        // 150ms later one token has accrued.
        assert!(rl.try_take(7, t0 + Duration::from_millis(150)).is_ok());
    }

    #[test]
    fn sessions_have_independent_buckets() {
        let mut rl = RateLimiter::new(RateLimitConfig::per_session(2.0, 0.0));
        let now = Instant::now();
        assert!(rl.try_take(1, now).is_ok());
        assert!(rl.try_take(1, now).is_ok());
        assert!(rl.try_take(1, now).is_err(), "session 1 exhausted");
        assert!(rl.try_take(2, now).is_ok(), "session 2 unaffected");
    }

    #[test]
    fn tokens_never_exceed_burst() {
        let mut rl = RateLimiter::new(RateLimitConfig::per_session(2.0, 100.0));
        let t0 = Instant::now();
        assert!(rl.try_take(5, t0).is_ok());
        // A long idle period must not bank unlimited tokens.
        let later = t0 + Duration::from_secs(60);
        assert!(rl.try_take(5, later).is_ok());
        assert!(rl.try_take(5, later).is_ok());
        assert!(rl.try_take(5, later).is_err(), "capped at burst=2");
    }

    #[test]
    fn bucket_table_prunes_idle_sessions_at_capacity() {
        let mut rl = RateLimiter::new(RateLimitConfig::per_session(1.0, 1000.0));
        let t0 = Instant::now();
        for s in 0..MAX_TRACKED_SESSIONS as u64 {
            let _ = rl.try_take(s, t0);
        }
        assert_eq!(rl.buckets.len(), MAX_TRACKED_SESSIONS);
        // All buckets refill to full by +1s; the next new session prunes.
        let _ = rl.try_take(u64::MAX, t0 + Duration::from_secs(1));
        assert!(rl.buckets.len() < MAX_TRACKED_SESSIONS);
    }

    #[test]
    fn config_clamps_degenerate_values() {
        let c = RateLimitConfig::per_session(0.0, -5.0);
        assert_eq!(c.burst, 1.0);
        assert_eq!(c.refill_per_sec, 0.0);
    }
}
