//! Gateway observability: lock-free counters and latency histograms.
//!
//! The instruments themselves live in `medsen-telemetry` — the gateway
//! holds `Arc` handles ([`Counter`], [`Gauge`], [`LatencyHistogram`])
//! that workers and sessions mutate concurrently through relaxed atomics
//! (the counters are independent monotone tallies — no cross-counter
//! invariant needs a stronger ordering). Built through
//! [`GatewayMetrics::registered`], the same handles are registered in a
//! unified [`Registry`] under stable dotted names (`gateway.accepted`,
//! `gateway.lane.0.routed`, `gateway.queue_wait`, …), so one text
//! exposition covers every counter this module tracks.
//! [`GatewayMetrics::with_lanes`] still builds free-standing instruments
//! for callers that want counters without a registry.

use medsen_telemetry::{Counter, Gauge, Registry};
use std::sync::Arc;

pub use medsen_telemetry::{LatencyHistogram, LatencySnapshot};

/// Per-lane counters for the gateway's sharded worker groups.
#[derive(Debug)]
struct LaneMetrics {
    routed: Arc<Counter>,
    high_water: Arc<Gauge>,
}

impl LaneMetrics {
    fn standalone() -> Self {
        Self {
            routed: Arc::new(Counter::new()),
            high_water: Arc::new(Gauge::new()),
        }
    }

    fn registered(lane: usize, registry: &Registry) -> Self {
        Self {
            routed: registry.counter(&format!("gateway.lane.{lane}.routed")),
            high_water: registry.gauge(&format!("gateway.lane.{lane}.depth_high_water")),
        }
    }
}

/// Shared counters for the whole gateway.
#[derive(Debug)]
pub struct GatewayMetrics {
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
    rate_limited: Arc<Counter>,
    retried: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    queue_high_water: Arc<Gauge>,
    lanes: Vec<LaneMetrics>,
    /// Real time spent by accepted work items waiting in the queue.
    pub queue_wait: Arc<LatencyHistogram>,
    /// Real time spent by the worker handling one request.
    pub service_time: Arc<LatencyHistogram>,
    /// Simulated uplink time per successfully transmitted request.
    pub uplink_time: Arc<LatencyHistogram>,
}

impl Default for GatewayMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl GatewayMetrics {
    /// Fresh all-zero metrics with a single lane.
    pub fn new() -> Self {
        Self::with_lanes(1)
    }

    /// Fresh all-zero metrics tracking `lanes` per-shard worker lanes,
    /// with free-standing instruments (not visible in any registry).
    pub fn with_lanes(lanes: usize) -> Self {
        Self {
            accepted: Arc::new(Counter::new()),
            rejected: Arc::new(Counter::new()),
            rate_limited: Arc::new(Counter::new()),
            retried: Arc::new(Counter::new()),
            completed: Arc::new(Counter::new()),
            failed: Arc::new(Counter::new()),
            queue_high_water: Arc::new(Gauge::new()),
            lanes: (0..lanes.max(1))
                .map(|_| LaneMetrics::standalone())
                .collect(),
            queue_wait: Arc::new(LatencyHistogram::new()),
            service_time: Arc::new(LatencyHistogram::new()),
            uplink_time: Arc::new(LatencyHistogram::new()),
        }
    }

    /// Fresh metrics whose instruments are registered in `registry` under
    /// the gateway's dotted names: `gateway.accepted`, `gateway.rejected`,
    /// `gateway.retried`, `gateway.completed`, `gateway.failed`,
    /// `gateway.queue_high_water`, `gateway.lane.<i>.routed`,
    /// `gateway.lane.<i>.depth_high_water`, and the `gateway.queue_wait` /
    /// `gateway.service_time` / `gateway.uplink_time` histograms. The
    /// returned handles and the registry's are the same instruments.
    pub fn registered(lanes: usize, registry: &Registry) -> Self {
        Self {
            accepted: registry.counter("gateway.accepted"),
            rejected: registry.counter("gateway.rejected"),
            rate_limited: registry.counter("gateway.rate_limited"),
            retried: registry.counter("gateway.retried"),
            completed: registry.counter("gateway.completed"),
            failed: registry.counter("gateway.failed"),
            queue_high_water: registry.gauge("gateway.queue_high_water"),
            lanes: (0..lanes.max(1))
                .map(|i| LaneMetrics::registered(i, registry))
                .collect(),
            queue_wait: registry.histogram("gateway.queue_wait"),
            service_time: registry.histogram("gateway.service_time"),
            uplink_time: registry.histogram("gateway.uplink_time"),
        }
    }

    /// Number of tracked lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Counts a request accepted into the queue and routed onto `lane`;
    /// `lane_depth` is that lane's queue depth right after the enqueue,
    /// feeding both the lane's and the gateway's high-water marks. One
    /// call, one depth probe: the submit path stays O(1) in the lane
    /// count. An out-of-range `lane` still counts globally but is ignored
    /// per-lane, never a panic.
    pub fn on_accepted(&self, lane: usize, lane_depth: usize) {
        self.accepted.incr();
        self.queue_high_water.record_max(lane_depth as u64);
        if let Some(metrics) = self.lanes.get(lane) {
            metrics.routed.incr();
            metrics.high_water.record_max(lane_depth as u64);
        }
    }

    /// Counts a request shed by the backpressure policy.
    pub fn on_rejected(&self) {
        self.rejected.incr();
    }

    /// Counts a submission refused by the per-session token-bucket rate
    /// limit (a noisy dongle being held back, not queue pressure).
    pub fn on_rate_limited(&self) {
        self.rate_limited.incr();
    }

    /// Total refusals so far — shed plus rate-limited. The adaptive span
    /// sampler's overload signal: any growth here means the gateway is
    /// turning work away and span volume should back off.
    pub fn refusals(&self) -> u64 {
        self.rejected.get() + self.rate_limited.get()
    }

    /// Counts one retry (link failure backoff or resubmission after shed).
    pub fn on_retried(&self) {
        self.retried.incr();
    }

    /// Counts a request fully served by a worker.
    pub fn on_completed(&self) {
        self.completed.incr();
    }

    /// Counts a request abandoned client-side (deadline or retry budget).
    pub fn on_failed(&self) {
        self.failed.incr();
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: self.accepted.get(),
            rejected: self.rejected.get(),
            rate_limited: self.rate_limited.get(),
            retried: self.retried.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            queue_high_water: self.queue_high_water.get(),
            shard_routed: self.lanes.iter().map(|l| l.routed.get()).collect(),
            shard_depth: self.lanes.iter().map(|l| l.high_water.get()).collect(),
            shard_contention: Vec::new(),
            wal_appends: 0,
            wal_fsyncs: 0,
            wal_bytes: 0,
            wal_recovered_entries: 0,
            wal_truncated_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
            drained: false,
            queue_wait: self.queue_wait.snapshot(),
            service_time: self.service_time.snapshot(),
            uplink_time: self.uplink_time.snapshot(),
        }
    }
}

/// An immutable copy of [`GatewayMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the work queue.
    pub accepted: u64,
    /// Requests shed with retry-after by the backpressure policy.
    pub rejected: u64,
    /// Submissions refused by the per-session token-bucket rate limit.
    /// Distinct from `rejected`: this is one session being too loud, not
    /// the queue being full.
    pub rate_limited: u64,
    /// Retries: link-failure backoffs plus resubmissions after shed.
    pub retried: u64,
    /// Requests fully served by workers.
    pub completed: u64,
    /// Requests abandoned client-side (deadline exceeded / retries spent).
    pub failed: u64,
    /// Deepest any worker lane ever got (post-enqueue). With one lane
    /// this is the classic whole-queue high-water mark; with several it
    /// is the worst single lane, which is what backpressure tuning needs.
    pub queue_high_water: u64,
    /// Requests routed to each worker lane, in lane order.
    pub shard_routed: Vec<u64>,
    /// Per-lane queue-depth high-water marks, in lane order.
    pub shard_depth: Vec<u64>,
    /// Contended enrollment-lock writes per *cloud* shard, in shard
    /// order. Filled by the gateway from
    /// [`CloudService::shard_stats`](medsen_cloud::service::CloudService::shard_stats)
    /// at snapshot time; empty on a bare [`GatewayMetrics::snapshot`].
    pub shard_contention: Vec<u64>,
    /// Write-ahead-log frames appended by the cloud tier. Zero on a bare
    /// [`GatewayMetrics::snapshot`] or a memory-only service; filled by
    /// the gateway from the service's storage stats, like
    /// [`MetricsSnapshot::shard_contention`].
    pub wal_appends: u64,
    /// Fsyncs issued by the write-ahead log (group commit batches many
    /// appends into one).
    pub wal_fsyncs: u64,
    /// Frame bytes written to the write-ahead log.
    pub wal_bytes: u64,
    /// Log entries replayed when the service recovered from disk.
    pub wal_recovered_entries: u64,
    /// Torn-tail bytes the recovery discarded.
    pub wal_truncated_bytes: u64,
    /// Analysis responses served from the cloud tier's content-addressed
    /// cache. Zero on a bare [`GatewayMetrics::snapshot`]; filled by the
    /// gateway from [`CloudService::cache_stats`](medsen_cloud::service::CloudService::cache_stats).
    pub cache_hits: u64,
    /// Analysis requests that ran the full DSP pipeline (cache misses).
    pub cache_misses: u64,
    /// Whether the gateway has been [drained](crate::Gateway::drain):
    /// no longer admitting sessions, in-flight work finished, final WAL
    /// flush forced.
    pub drained: bool,
    /// Queue-wait latency distribution.
    pub queue_wait: LatencySnapshot,
    /// Worker service-time distribution.
    pub service_time: LatencySnapshot,
    /// Simulated uplink-time distribution.
    pub uplink_time: LatencySnapshot,
}

impl MetricsSnapshot {
    /// Accepted requests not yet completed. Zero once the fleet has
    /// drained: nothing accepted into the queue was dropped.
    pub fn lost(&self) -> u64 {
        self.accepted.saturating_sub(self.completed)
    }
}

/// Every field, every time: operators diff snapshots across runs, and a
/// line that appears only when its counters are non-zero makes "is the
/// WAL idle or is the WAL missing?" ambiguous. The format is pinned by a
/// golden test below — extend it deliberately.
impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "accepted {} | rejected {} | rate-limited {} | retried {} | completed {} | failed {}",
            self.accepted,
            self.rejected,
            self.rate_limited,
            self.retried,
            self.completed,
            self.failed
        )?;
        writeln!(f, "queue high-water: {}", self.queue_high_water)?;
        writeln!(
            f,
            "shard lanes: routed {:?} depth-hw {:?} | lock contention {:?}",
            self.shard_routed, self.shard_depth, self.shard_contention
        )?;
        writeln!(
            f,
            "wal: appends {} | fsyncs {} | bytes {} | recovered {} (truncated {} B)",
            self.wal_appends,
            self.wal_fsyncs,
            self.wal_bytes,
            self.wal_recovered_entries,
            self.wal_truncated_bytes,
        )?;
        writeln!(
            f,
            "cache: hits {} | misses {} | drained {}",
            self.cache_hits,
            self.cache_misses,
            if self.drained { "yes" } else { "no" }
        )?;
        writeln!(
            f,
            "queue wait:   n={} mean={:.1}µs p99≤{}µs max={}µs",
            self.queue_wait.count,
            self.queue_wait.mean_us(),
            self.queue_wait.percentile_us(0.99),
            self.queue_wait.max_us
        )?;
        writeln!(
            f,
            "service time: n={} mean={:.1}µs p99≤{}µs max={}µs",
            self.service_time.count,
            self.service_time.mean_us(),
            self.service_time.percentile_us(0.99),
            self.service_time.max_us
        )?;
        write!(
            f,
            "uplink time:  n={} mean={:.1}µs p99≤{}µs max={}µs (simulated)",
            self.uplink_time.count,
            self.uplink_time.mean_us(),
            self.uplink_time.percentile_us(0.99),
            self.uplink_time.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_and_high_water() {
        let m = GatewayMetrics::new();
        m.on_accepted(0, 3);
        m.on_accepted(0, 7);
        m.on_accepted(0, 5);
        m.on_rejected();
        m.on_rate_limited();
        m.on_rate_limited();
        m.on_retried();
        m.on_completed();
        m.on_failed();
        let s = m.snapshot();
        assert_eq!(
            (s.accepted, s.rejected, s.retried, s.completed, s.failed),
            (3, 1, 1, 1, 1)
        );
        assert_eq!(s.rate_limited, 2);
        assert_eq!(s.queue_high_water, 7);
        assert_eq!(s.lost(), 2);
    }

    #[test]
    fn metrics_snapshot_round_trips_through_clone_and_eq() {
        let m = GatewayMetrics::new();
        m.on_accepted(0, 2);
        m.on_rejected();
        m.on_retried();
        m.on_completed();
        m.queue_wait.record(Duration::from_micros(17));
        m.service_time.record_seconds(0.002);
        m.uplink_time.record_seconds(0.05);
        let a = m.snapshot();
        let b = a.clone();
        assert_eq!(a, b, "snapshot is a value type: clone compares equal");
        // A later snapshot of the same live metrics also matches: snapshots
        // are coherent copies, not views.
        assert_eq!(a, m.snapshot());
        m.on_failed();
        assert_ne!(a, m.snapshot(), "new activity diverges from the copy");
        assert_eq!(a.lost(), 0, "one accepted, one completed");
        assert!(a.to_string().contains("accepted 1"));
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let s = GatewayMetrics::new().snapshot();
        assert_eq!(s.lost(), 0);
        assert_eq!(s.queue_wait.mean_us(), 0.0);
        assert_eq!(s.queue_wait.percentile_us(0.99), 0);
        assert_eq!(s.shard_routed, vec![0]);
        assert_eq!(s.shard_depth, vec![0]);
        assert!(s.shard_contention.is_empty());
        assert_eq!((s.cache_hits, s.cache_misses), (0, 0));
        let _ = s.to_string();
    }

    #[test]
    fn lane_counters_track_routing_and_depth() {
        let m = GatewayMetrics::with_lanes(4);
        assert_eq!(m.lane_count(), 4);
        m.on_accepted(0, 1);
        m.on_accepted(2, 3);
        m.on_accepted(2, 1);
        m.on_accepted(99, 7); // out-of-range lane: counted globally only
        let s = m.snapshot();
        assert_eq!(s.accepted, 4);
        assert_eq!(s.shard_routed, vec![1, 0, 2, 0]);
        assert_eq!(s.shard_depth, vec![1, 0, 3, 0]);
        assert_eq!(s.queue_high_water, 7, "global mark tracks every accept");
        assert!(s.to_string().contains("shard lanes"));
    }

    #[test]
    fn zero_lanes_clamps_to_one() {
        let m = GatewayMetrics::with_lanes(0);
        assert_eq!(m.lane_count(), 1);
        m.on_accepted(0, 5);
        assert_eq!(m.snapshot().shard_depth, vec![5]);
    }

    #[test]
    fn registered_metrics_share_instruments_with_the_registry() {
        let registry = Registry::new();
        let m = GatewayMetrics::registered(2, &registry);
        m.on_accepted(1, 4);
        m.on_completed();
        m.queue_wait.record(Duration::from_micros(10));
        let snap = registry.snapshot();
        assert_eq!(snap.scalar("gateway.accepted"), Some(1));
        assert_eq!(snap.scalar("gateway.completed"), Some(1));
        assert_eq!(snap.scalar("gateway.queue_high_water"), Some(4));
        assert_eq!(snap.scalar("gateway.lane.0.routed"), Some(0));
        assert_eq!(snap.scalar("gateway.lane.1.routed"), Some(1));
        assert_eq!(snap.scalar("gateway.lane.1.depth_high_water"), Some(4));
        assert!(matches!(
            snap.get("gateway.queue_wait"),
            Some(medsen_telemetry::MetricValue::Histogram(h)) if h.count == 1
        ));
        // Every legacy counter has a registered dotted name.
        for name in [
            "gateway.accepted",
            "gateway.rejected",
            "gateway.rate_limited",
            "gateway.retried",
            "gateway.completed",
            "gateway.failed",
            "gateway.queue_high_water",
            "gateway.queue_wait",
            "gateway.service_time",
            "gateway.uplink_time",
        ] {
            assert!(registry.names().iter().any(|n| n == name), "missing {name}");
        }
    }

    /// Golden format: the Display output includes every field
    /// unconditionally — an all-zero WAL still prints its line, an
    /// undrained gateway still says so.
    #[test]
    fn display_includes_every_field_unconditionally() {
        let m = GatewayMetrics::new();
        let empty = m.snapshot().to_string();
        for needle in [
            "accepted 0 | rejected 0 | rate-limited 0 | retried 0 | completed 0 | failed 0",
            "queue high-water: 0",
            "shard lanes: routed [0] depth-hw [0] | lock contention []",
            "wal: appends 0 | fsyncs 0 | bytes 0 | recovered 0 (truncated 0 B)",
            "cache: hits 0 | misses 0 | drained no",
            "queue wait:   n=0 mean=0.0µs p99≤0µs max=0µs",
            "service time: n=0 mean=0.0µs p99≤0µs max=0µs",
            "uplink time:  n=0 mean=0.0µs p99≤0µs max=0µs (simulated)",
        ] {
            assert!(empty.contains(needle), "missing {needle:?} in:\n{empty}");
        }

        // Pin the exact full rendering for a populated snapshot.
        let mut s = m.snapshot();
        s.accepted = 5;
        s.rejected = 1;
        s.rate_limited = 3;
        s.retried = 2;
        s.completed = 4;
        s.failed = 1;
        s.queue_high_water = 3;
        s.shard_routed = vec![3, 2];
        s.shard_depth = vec![2, 3];
        s.shard_contention = vec![0, 1];
        s.wal_appends = 7;
        s.wal_fsyncs = 2;
        s.wal_bytes = 512;
        s.wal_recovered_entries = 1;
        s.wal_truncated_bytes = 9;
        s.cache_hits = 6;
        s.cache_misses = 4;
        s.drained = true;
        let golden =
            "accepted 5 | rejected 1 | rate-limited 3 | retried 2 | completed 4 | failed 1\n\
                      queue high-water: 3\n\
                      shard lanes: routed [3, 2] depth-hw [2, 3] | lock contention [0, 1]\n\
                      wal: appends 7 | fsyncs 2 | bytes 512 | recovered 1 (truncated 9 B)\n\
                      cache: hits 6 | misses 4 | drained yes\n\
                      queue wait:   n=0 mean=0.0µs p99≤0µs max=0µs\n\
                      service time: n=0 mean=0.0µs p99≤0µs max=0µs\n\
                      uplink time:  n=0 mean=0.0µs p99≤0µs max=0µs (simulated)";
        assert_eq!(s.to_string(), golden);
    }
}
