//! Gateway observability: lock-free counters and latency histograms.
//!
//! Workers and sessions update [`GatewayMetrics`] concurrently through
//! relaxed atomics (the counters are independent monotone tallies — no
//! cross-counter invariant needs a stronger ordering), and tests/benches
//! take a coherent-enough [`MetricsSnapshot`] after quiescing the fleet.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: 1 µs up to ~1.1 hours.
const BUCKETS: usize = 32;

/// A histogram of durations in power-of-two microsecond buckets.
///
/// Bucket `i` counts samples with `duration_us < 2^i` (that were not
/// already counted by a smaller bucket); the last bucket absorbs overflow.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one wall-clock duration.
    pub fn record(&self, duration: Duration) {
        self.record_us(duration.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one simulated duration expressed in seconds.
    pub fn record_seconds(&self, seconds: f64) {
        let us = if seconds.is_finite() && seconds > 0.0 {
            (seconds * 1e6).min(u64::MAX as f64) as u64
        } else {
            0
        };
        self.record_us(us);
    }

    fn record_us(&self, us: u64) {
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    buckets: [u64; BUCKETS],
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, in microseconds.
    pub total_us: u64,
    /// Largest sample, in microseconds.
    pub max_us: u64,
}

impl LatencySnapshot {
    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// Upper bound (µs) of the bucket containing the `p`-th percentile
    /// (`0.0..=1.0`); 0 when empty. Resolution is the bucket width, which
    /// is all queue-tuning needs.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Non-empty `(bucket_upper_bound_us, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (1u64 << i, n))
            .collect()
    }
}

/// Per-lane counters for the gateway's sharded worker groups.
#[derive(Debug, Default)]
struct LaneMetrics {
    routed: AtomicU64,
    high_water: AtomicU64,
}

/// Shared counters for the whole gateway.
#[derive(Debug)]
pub struct GatewayMetrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    retried: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    queue_high_water: AtomicU64,
    lanes: Vec<LaneMetrics>,
    /// Real time spent by accepted work items waiting in the queue.
    pub queue_wait: LatencyHistogram,
    /// Real time spent by the worker handling one request.
    pub service_time: LatencyHistogram,
    /// Simulated uplink time per successfully transmitted request.
    pub uplink_time: LatencyHistogram,
}

impl Default for GatewayMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl GatewayMetrics {
    /// Fresh all-zero metrics with a single lane.
    pub fn new() -> Self {
        Self::with_lanes(1)
    }

    /// Fresh all-zero metrics tracking `lanes` per-shard worker lanes.
    pub fn with_lanes(lanes: usize) -> Self {
        Self {
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            lanes: (0..lanes.max(1)).map(|_| LaneMetrics::default()).collect(),
            queue_wait: LatencyHistogram::new(),
            service_time: LatencyHistogram::new(),
            uplink_time: LatencyHistogram::new(),
        }
    }

    /// Number of tracked lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Counts a request accepted into the queue and routed onto `lane`;
    /// `lane_depth` is that lane's queue depth right after the enqueue,
    /// feeding both the lane's and the gateway's high-water marks. One
    /// call, one depth probe: the submit path stays O(1) in the lane
    /// count. An out-of-range `lane` still counts globally but is ignored
    /// per-lane, never a panic.
    pub fn on_accepted(&self, lane: usize, lane_depth: usize) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.queue_high_water
            .fetch_max(lane_depth as u64, Ordering::Relaxed);
        if let Some(metrics) = self.lanes.get(lane) {
            metrics.routed.fetch_add(1, Ordering::Relaxed);
            metrics
                .high_water
                .fetch_max(lane_depth as u64, Ordering::Relaxed);
        }
    }

    /// Counts a request shed by the backpressure policy.
    pub fn on_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one retry (link failure backoff or resubmission after shed).
    pub fn on_retried(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request fully served by a worker.
    pub fn on_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request abandoned client-side (deadline or retry budget).
    pub fn on_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            shard_routed: self
                .lanes
                .iter()
                .map(|l| l.routed.load(Ordering::Relaxed))
                .collect(),
            shard_depth: self
                .lanes
                .iter()
                .map(|l| l.high_water.load(Ordering::Relaxed))
                .collect(),
            shard_contention: Vec::new(),
            wal_appends: 0,
            wal_fsyncs: 0,
            wal_bytes: 0,
            wal_recovered_entries: 0,
            wal_truncated_bytes: 0,
            drained: false,
            queue_wait: self.queue_wait.snapshot(),
            service_time: self.service_time.snapshot(),
            uplink_time: self.uplink_time.snapshot(),
        }
    }
}

/// An immutable copy of [`GatewayMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the work queue.
    pub accepted: u64,
    /// Requests shed with retry-after by the backpressure policy.
    pub rejected: u64,
    /// Retries: link-failure backoffs plus resubmissions after shed.
    pub retried: u64,
    /// Requests fully served by workers.
    pub completed: u64,
    /// Requests abandoned client-side (deadline exceeded / retries spent).
    pub failed: u64,
    /// Deepest any worker lane ever got (post-enqueue). With one lane
    /// this is the classic whole-queue high-water mark; with several it
    /// is the worst single lane, which is what backpressure tuning needs.
    pub queue_high_water: u64,
    /// Requests routed to each worker lane, in lane order.
    pub shard_routed: Vec<u64>,
    /// Per-lane queue-depth high-water marks, in lane order.
    pub shard_depth: Vec<u64>,
    /// Contended enrollment-lock writes per *cloud* shard, in shard
    /// order. Filled by the gateway from
    /// [`CloudService::shard_stats`](medsen_cloud::service::CloudService::shard_stats)
    /// at snapshot time; empty on a bare [`GatewayMetrics::snapshot`].
    pub shard_contention: Vec<u64>,
    /// Write-ahead-log frames appended by the cloud tier. Zero on a bare
    /// [`GatewayMetrics::snapshot`] or a memory-only service; filled by
    /// the gateway from the service's storage stats, like
    /// [`MetricsSnapshot::shard_contention`].
    pub wal_appends: u64,
    /// Fsyncs issued by the write-ahead log (group commit batches many
    /// appends into one).
    pub wal_fsyncs: u64,
    /// Frame bytes written to the write-ahead log.
    pub wal_bytes: u64,
    /// Log entries replayed when the service recovered from disk.
    pub wal_recovered_entries: u64,
    /// Torn-tail bytes the recovery discarded.
    pub wal_truncated_bytes: u64,
    /// Whether the gateway has been [drained](crate::Gateway::drain):
    /// no longer admitting sessions, in-flight work finished, final WAL
    /// flush forced.
    pub drained: bool,
    /// Queue-wait latency distribution.
    pub queue_wait: LatencySnapshot,
    /// Worker service-time distribution.
    pub service_time: LatencySnapshot,
    /// Simulated uplink-time distribution.
    pub uplink_time: LatencySnapshot,
}

impl MetricsSnapshot {
    /// Accepted requests not yet completed. Zero once the fleet has
    /// drained: nothing accepted into the queue was dropped.
    pub fn lost(&self) -> u64 {
        self.accepted.saturating_sub(self.completed)
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "accepted {} | rejected {} | retried {} | completed {} | failed {}",
            self.accepted, self.rejected, self.retried, self.completed, self.failed
        )?;
        writeln!(f, "queue high-water: {}", self.queue_high_water)?;
        if self.shard_routed.len() > 1 || !self.shard_contention.is_empty() {
            writeln!(
                f,
                "shard lanes: routed {:?} depth-hw {:?} | lock contention {:?}",
                self.shard_routed, self.shard_depth, self.shard_contention
            )?;
        }
        if self.wal_appends > 0 || self.wal_recovered_entries > 0 || self.drained {
            writeln!(
                f,
                "wal: appends {} | fsyncs {} | bytes {} | recovered {} (truncated {} B){}",
                self.wal_appends,
                self.wal_fsyncs,
                self.wal_bytes,
                self.wal_recovered_entries,
                self.wal_truncated_bytes,
                if self.drained { " | drained" } else { "" }
            )?;
        }
        writeln!(
            f,
            "queue wait:   n={} mean={:.1}µs p99≤{}µs max={}µs",
            self.queue_wait.count,
            self.queue_wait.mean_us(),
            self.queue_wait.percentile_us(0.99),
            self.queue_wait.max_us
        )?;
        writeln!(
            f,
            "service time: n={} mean={:.1}µs p99≤{}µs max={}µs",
            self.service_time.count,
            self.service_time.mean_us(),
            self.service_time.percentile_us(0.99),
            self.service_time.max_us
        )?;
        write!(
            f,
            "uplink time:  n={} mean={:.1}µs p99≤{}µs max={}µs (simulated)",
            self.uplink_time.count,
            self.uplink_time.mean_us(),
            self.uplink_time.percentile_us(0.99),
            self.uplink_time.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::new();
        for us in [1u64, 2, 3, 100, 1000, 1_000_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.max_us, 1_000_000);
        assert_eq!(s.total_us, 1 + 2 + 3 + 100 + 1000 + 1_000_000);
        // p50 of 6 samples is the 3rd smallest (3 µs → bucket ≤ 4 µs).
        assert_eq!(s.percentile_us(0.5), 4);
        assert!(s.percentile_us(1.0) >= 1_000_000);
        assert!(!s.nonzero_buckets().is_empty());
    }

    #[test]
    fn simulated_seconds_are_recorded_as_microseconds() {
        let h = LatencyHistogram::new();
        h.record_seconds(0.05);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.total_us, 50_000);
    }

    #[test]
    fn counters_and_high_water() {
        let m = GatewayMetrics::new();
        m.on_accepted(0, 3);
        m.on_accepted(0, 7);
        m.on_accepted(0, 5);
        m.on_rejected();
        m.on_retried();
        m.on_completed();
        m.on_failed();
        let s = m.snapshot();
        assert_eq!(
            (s.accepted, s.rejected, s.retried, s.completed, s.failed),
            (3, 1, 1, 1, 1)
        );
        assert_eq!(s.queue_high_water, 7);
        assert_eq!(s.lost(), 2);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero_everywhere() {
        let s = LatencyHistogram::new().snapshot();
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile_us(p), 0, "p={p}");
        }
        assert_eq!(s.count, 0);
        assert_eq!(s.max_us, 0);
        assert_eq!(s.mean_us(), 0.0);
        assert!(s.nonzero_buckets().is_empty());
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let h = LatencyHistogram::new();
        for us in [1u64, 10, 100] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        // p ≤ 0 clamps to 0.0, whose rank still floors at the 1st sample.
        assert_eq!(s.percentile_us(0.0), s.percentile_us(-3.0));
        assert_eq!(s.percentile_us(0.0), 2, "1 µs lands in the ≤2 µs bucket");
        // p ≥ 1 clamps to 1.0: the bucket holding the maximum sample.
        assert_eq!(s.percentile_us(1.0), s.percentile_us(42.0));
        assert_eq!(s.percentile_us(1.0), 128, "100 µs lands in ≤128 µs");
        // NaN degenerates to rank 1 (the clamp's floor), never a panic.
        assert_eq!(s.percentile_us(f64::NAN), 2);
    }

    #[test]
    fn nonpositive_and_nonfinite_seconds_record_as_zero() {
        let h = LatencyHistogram::new();
        h.record_seconds(-1.0);
        h.record_seconds(f64::NAN);
        h.record_seconds(f64::INFINITY);
        let s = h.snapshot();
        // None of them is a finite positive duration, so all clamp to 0
        // instead of wrapping or poisoning the totals.
        assert_eq!(s.count, 3);
        assert_eq!(s.max_us, 0);
        assert_eq!(s.total_us, 0);
        assert_eq!(s.buckets[0], 3, "all three clamp to the 0 bucket");
    }

    #[test]
    fn metrics_snapshot_round_trips_through_clone_and_eq() {
        let m = GatewayMetrics::new();
        m.on_accepted(0, 2);
        m.on_rejected();
        m.on_retried();
        m.on_completed();
        m.queue_wait.record(Duration::from_micros(17));
        m.service_time.record_seconds(0.002);
        m.uplink_time.record_seconds(0.05);
        let a = m.snapshot();
        let b = a.clone();
        assert_eq!(a, b, "snapshot is a value type: clone compares equal");
        // A later snapshot of the same live metrics also matches: snapshots
        // are coherent copies, not views.
        assert_eq!(a, m.snapshot());
        m.on_failed();
        assert_ne!(a, m.snapshot(), "new activity diverges from the copy");
        assert_eq!(a.lost(), 0, "one accepted, one completed");
        assert!(a.to_string().contains("accepted 1"));
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let s = GatewayMetrics::new().snapshot();
        assert_eq!(s.lost(), 0);
        assert_eq!(s.queue_wait.mean_us(), 0.0);
        assert_eq!(s.queue_wait.percentile_us(0.99), 0);
        assert_eq!(s.shard_routed, vec![0]);
        assert_eq!(s.shard_depth, vec![0]);
        assert!(s.shard_contention.is_empty());
        let _ = s.to_string();
    }

    #[test]
    fn lane_counters_track_routing_and_depth() {
        let m = GatewayMetrics::with_lanes(4);
        assert_eq!(m.lane_count(), 4);
        m.on_accepted(0, 1);
        m.on_accepted(2, 3);
        m.on_accepted(2, 1);
        m.on_accepted(99, 7); // out-of-range lane: counted globally only
        let s = m.snapshot();
        assert_eq!(s.accepted, 4);
        assert_eq!(s.shard_routed, vec![1, 0, 2, 0]);
        assert_eq!(s.shard_depth, vec![1, 0, 3, 0]);
        assert_eq!(s.queue_high_water, 7, "global mark tracks every accept");
        // Multi-lane snapshots surface the per-lane line in Display.
        assert!(s.to_string().contains("shard lanes"));
    }

    #[test]
    fn zero_lanes_clamps_to_one() {
        let m = GatewayMetrics::with_lanes(0);
        assert_eq!(m.lane_count(), 1);
        m.on_accepted(0, 5);
        assert_eq!(m.snapshot().shard_depth, vec![5]);
    }
}
