//! The clinic fleet gateway: concurrent multi-session ingestion in front
//! of the cloud service.
//!
//! The paper's prototype serves one dongle at a time — a Matlab process on
//! "a powerful server" fed by a single phone. A deployable point-of-care
//! system faces a clinic: dozens of dongle+phone pairs uploading framed,
//! encrypted traces at once. This crate adds that serving layer without
//! touching the science:
//!
//! * [`Gateway`] (`gateway` module) — a bounded work queue in front of a
//!   worker pool, each worker driving the shared
//!   [`CloudService`](medsen_cloud::service::CloudService) through its
//!   thread-safe `handle_wire_shared` entry point in whichever
//!   [`WireFormat`](medsen_wire::WireFormat) the upload's header names
//!   (compact binary by default, JSON for debugging). When the queue fills,
//!   an explicit [`ShedPolicy`] either blocks the submitter or rejects
//!   with a retry-after hint. Two engines implement the pool, selected by
//!   [`RuntimeKind`]: worker *tasks* on the `medsen-runtime` async
//!   executor (the default — idle sessions cost a task, not a thread), or
//!   the original OS-thread-per-worker baseline. The queue is split into
//!   per-shard *lanes* (`shards.min(workers).max(1)`, sharing the total
//!   `queue_capacity`): enrollments route by
//!   [`identity_hash`](medsen_cloud::identity_hash) of the identifier so
//!   same-shard writes serialize on one lane's worker group, other
//!   traffic spreads by session id ([`Gateway::submit_keyed`]). Admin
//!   states: [`Gateway::drain`] (refuse new work, finish the old) and
//!   [`Gateway::pause`] (admit new work, hold it until resume). A
//!   gateway built with [`Gateway::with_replicas`] fronts a
//!   warm-standby [`ReplicatedCloud`](medsen_cloud::ReplicatedCloud)
//!   pair instead of a single service: every dispatch routes to the
//!   pair's current serving node, so a primary death fails the fleet
//!   over to the promoted standby mid-stream, and the `replica.*`
//!   ship/lag/promotion counters join the exposition.
//! * [`DongleSession`] (`session` module) — the per-device lifecycle
//!   (connect → enroll/analyze stream → drain → close). Uploads ride the
//!   phone's frame format ([`wire`]) across a simulated
//!   [`NetworkLink`](medsen_phone::NetworkLink) that can be made flaky;
//!   failed transmissions retry with exponential backoff against a
//!   per-request **simulated** deadline, so behavior is deterministic
//!   under any host scheduling.
//! * [`GatewayMetrics`] (`metrics` module) — accepted / rejected /
//!   retried / completed / failed counters, a queue-depth high-water
//!   mark, per-stage latency histograms, and per-lane routing/depth
//!   counters; [`MetricsSnapshot`] additionally carries the cloud tier's
//!   per-shard write-lock contention so one snapshot answers "is the
//!   shard split buying anything?". Every instrument is registered in a
//!   `medsen-telemetry` registry under stable dotted names, and the
//!   gateway exposes the whole stack as text
//!   ([`Gateway::telemetry_text`]), JSON-lines span dumps
//!   ([`Gateway::spans_json`]), and K-worst slow-trace exemplars
//!   ([`Gateway::slow_traces`]). Per-request spans (admission → queue →
//!   service → shard lock → WAL → analysis) ride a minted
//!   `TraceId` through every layer; [`TelemetryConfig`] sizes or
//!   disables the span machinery.
//!
//! The load-bearing invariant, proven by the workspace's `gateway_fleet`
//! integration test: running N sessions concurrently through the gateway
//! yields exactly the per-session analysis reports and authentication
//! decisions that N sequential direct calls produce, with zero accepted
//! requests lost even when an undersized queue forces shedding.

pub mod fountain;
pub mod gateway;
pub mod limit;
pub mod metrics;
pub mod session;
pub mod soak;
pub mod wire;

pub use fountain::{FountainConfig, FountainIngestError};
pub use gateway::{
    Gateway, GatewayConfig, PendingReply, ReplyError, RuntimeKind, ShedPolicy, SubmitError,
    SymbolIngest, SymbolSubmitError, TelemetryConfig,
};
pub use limit::RateLimitConfig;
pub use metrics::{GatewayMetrics, LatencyHistogram, LatencySnapshot, MetricsSnapshot};
pub use session::{
    DongleSession, RetryPolicy, SessionConfig, SessionError, SessionReport, SessionState,
    SessionStats, UplinkMode,
};
pub use soak::{SoakConfig, SoakReport};
// The sampler mode is `TelemetryConfig`'s vocabulary; re-export it so
// gateway embedders configure sampling without a telemetry dependency.
pub use medsen_telemetry::SamplerMode;
pub use wire::{decode_upload, encode_upload, encode_upload_wire, peek_format, UploadError};
