//! Reconciling overload soak: a scaled-clock storm that drives every
//! refusal path the gateway has — queue shed, per-session rate limiting,
//! fountain session eviction, and one primary failover — and then proves
//! the books balance *exactly*.
//!
//! The harness is an accounting exercise, not a benchmark. The driver
//! keeps its own ledger from submission results alone (every attempt ends
//! in exactly one of completed / shed / rate-limited / evicted), then
//! checks it against the exposition's overload counters:
//!
//! * `completed + shed + rate_limited + evicted == submitted` — the
//!   driver's ledger is total;
//! * `gateway.rejected == shed + evicted` — fountain evictions
//!   intentionally double-count into the queue's shed counter (one
//!   counter answers "are we turning work away?"), so the exposition
//!   must agree with the sum;
//! * `gateway.rate_limited == rate_limited` and
//!   `fountain.sessions_evicted == evicted` — each refusal class maps to
//!   its own instrument with nothing lost or invented;
//! * `telemetry.spans_recorded + telemetry.spans_sampled_out ==
//!   telemetry.spans_admitted` — the adaptive sampler's ledger stays
//!   exact through the whole storm (the [`Sampler`](medsen_telemetry::Sampler)
//!   contract), while overload pressure visibly drags
//!   `telemetry.sampler_permille` below 1000.
//!
//! "Scaled clock" means shed retry-after hints park on the gateway's
//! time-compressed timer wheel (see `TIME_COMPRESSION`), so a storm that
//! would pace out over minutes of simulated time runs in real seconds —
//! which is what lets the standard preset push ≥10⁶ requests through a
//! debug-profile test run.

use crate::fountain::FountainConfig;
use crate::gateway::{
    Gateway, GatewayConfig, PendingReply, RuntimeKind, ShedPolicy, SubmitError, SymbolIngest,
    TelemetryConfig,
};
use crate::limit::RateLimitConfig;
use medsen_cloud::service::{CloudService, Request};
use medsen_cloud::{FlushPolicy, StorageConfig};
use medsen_phone::{OneWayUploader, SymbolBudget};
use medsen_units::Seconds;
use medsen_wire::WireFormat;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Session id the rate-limit storm hammers (one noisy device).
const STORM_SESSION: u64 = 0xBAD;
/// Session id the shed storm routes on (pins one lane).
const SHED_SESSION: u64 = 0xF00D;
/// First session id of the fountain eviction phase.
const FOUNTAIN_SESSION_BASE: u64 = 0x4000;
/// First session id of the failover phase.
const FAILOVER_SESSION_BASE: u64 = 0x8000;
/// Pace the shed storm onto the compressed timer wheel every this many
/// refusals — enough to exercise the wheel without serializing the storm
/// on it.
const SHED_PACE_STRIDE: u64 = 256;

/// Phase sizing for one soak run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakConfig {
    /// Requests served end to end before any overload is induced.
    pub normal_requests: u64,
    /// Submission attempts thrown against an exhausted token bucket.
    pub rate_limit_storm: u64,
    /// Submission attempts thrown against a paused (never-draining) full
    /// queue.
    pub shed_storm: u64,
    /// Fountain decoder table capacity for the eviction phase; the phase
    /// strands this many half-decoded sessions and completes this many
    /// more, evicting every stranded one.
    pub fountain_capacity: usize,
    /// Requests served after the primary is killed (across the failover).
    pub failover_requests: u64,
    /// Gateway worker count.
    pub workers: usize,
    /// Gateway total queue capacity.
    pub queue_capacity: usize,
}

impl SoakConfig {
    /// The acceptance preset: ≥ 10⁶ total submission attempts, the bulk
    /// of them cheap rate-limit refusals so the run fits a debug-profile
    /// test budget.
    pub fn standard() -> Self {
        Self {
            normal_requests: 4_096,
            rate_limit_storm: 1_000_000,
            shed_storm: 4_096,
            fountain_capacity: 64,
            failover_requests: 512,
            workers: 4,
            queue_capacity: 64,
        }
    }

    /// A seconds-scale preset for CI smoke runs and `medsen soak --quick`.
    pub fn quick() -> Self {
        Self {
            normal_requests: 256,
            rate_limit_storm: 20_000,
            shed_storm: 512,
            fountain_capacity: 16,
            failover_requests: 64,
            workers: 4,
            queue_capacity: 32,
        }
    }

    /// Total submission attempts the run will make (every one lands in
    /// exactly one ledger bucket).
    pub fn total_attempts(&self) -> u64 {
        self.normal_requests
            + self.rate_limit_storm
            + 1 // the storm's single admitted bucket token
            + self.shed_storm // shed attempts (the fill is extra, counted at run time)
            + 2 * self.fountain_capacity as u64
            + self.failover_requests
    }
}

/// The driver's ledger plus the exposition counters it must reconcile
/// against, captured after the final drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakReport {
    /// Every submission attempt (two-way submits + one-way streams).
    pub submitted: u64,
    /// Attempts that produced a reply the driver then received.
    pub completed: u64,
    /// Attempts refused by the full queue ([`SubmitError::Busy`]).
    pub shed: u64,
    /// Attempts refused by the token bucket ([`SubmitError::RateLimited`]).
    pub rate_limited: u64,
    /// One-way streams stranded half-decoded and capacity-evicted.
    pub evicted: u64,
    /// `gateway.rejected` from the exposition.
    pub exp_rejected: u64,
    /// `gateway.rate_limited` from the exposition.
    pub exp_rate_limited: u64,
    /// `fountain.sessions_evicted` from the exposition.
    pub exp_evicted: u64,
    /// `replica.promotions` from the exposition (the failover count).
    pub promotions: u64,
    /// `telemetry.spans_admitted` — spans offered to the sampler funnel.
    pub spans_admitted: u64,
    /// `telemetry.spans_recorded` — spans that reached the ring.
    pub spans_recorded: u64,
    /// `telemetry.spans_sampled_out` — spans the funnel dropped.
    pub spans_sampled_out: u64,
    /// `telemetry.sampler_permille` after the storm (1000 = keep all).
    pub sampler_permille: u64,
    /// Wall-clock duration of the run, in milliseconds.
    pub elapsed_ms: u64,
}

impl SoakReport {
    /// Checks every reconciliation invariant, returning the violated ones.
    pub fn reconcile(&self) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        let accounted = self.completed + self.shed + self.rate_limited + self.evicted;
        if accounted != self.submitted {
            errors.push(format!(
                "ledger leak: completed {} + shed {} + rate_limited {} + evicted {} = {} != submitted {}",
                self.completed, self.shed, self.rate_limited, self.evicted, accounted, self.submitted
            ));
        }
        if self.exp_rejected != self.shed + self.evicted {
            errors.push(format!(
                "gateway.rejected {} != shed {} + evicted {}",
                self.exp_rejected, self.shed, self.evicted
            ));
        }
        if self.exp_rate_limited != self.rate_limited {
            errors.push(format!(
                "gateway.rate_limited {} != rate_limited {}",
                self.exp_rate_limited, self.rate_limited
            ));
        }
        if self.exp_evicted != self.evicted {
            errors.push(format!(
                "fountain.sessions_evicted {} != evicted {}",
                self.exp_evicted, self.evicted
            ));
        }
        if self.promotions != 1 {
            errors.push(format!(
                "expected exactly one failover, saw {}",
                self.promotions
            ));
        }
        if self.spans_recorded + self.spans_sampled_out != self.spans_admitted {
            errors.push(format!(
                "sampler ledger: recorded {} + sampled_out {} != admitted {}",
                self.spans_recorded, self.spans_sampled_out, self.spans_admitted
            ));
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

impl fmt::Display for SoakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "soak: {} attempts in {} ms",
            self.submitted, self.elapsed_ms
        )?;
        writeln!(
            f,
            "  ledger     completed {} | shed {} | rate-limited {} | evicted {}",
            self.completed, self.shed, self.rate_limited, self.evicted
        )?;
        writeln!(
            f,
            "  exposition gateway.rejected {} | gateway.rate_limited {} | fountain.sessions_evicted {} | replica.promotions {}",
            self.exp_rejected, self.exp_rate_limited, self.exp_evicted, self.promotions
        )?;
        writeln!(
            f,
            "  sampler    admitted {} | recorded {} | sampled-out {} | keep {}‰",
            self.spans_admitted, self.spans_recorded, self.spans_sampled_out, self.sampler_permille
        )?;
        match self.reconcile() {
            Ok(()) => write!(f, "  reconciled exactly"),
            Err(errors) => {
                for e in &errors {
                    writeln!(f, "  VIOLATION: {e}")?;
                }
                write!(f, "  reconciliation FAILED ({} invariants)", errors.len())
            }
        }
    }
}

/// Monotonic run counter so concurrent soaks in one process get distinct
/// storage directories without consulting the wall clock.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

fn storage_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "medsen-soak-{}-{}-{tag}",
        std::process::id(),
        RUN_SEQ.load(Ordering::Relaxed),
    ))
}

fn ping_upload(session: u64) -> Vec<u8> {
    let body = medsen_cloud::wire::encode_request(WireFormat::Binary, &Request::Ping)
        .expect("ping encodes");
    crate::wire::encode_upload_wire(session, WireFormat::Binary, &body)
}

/// Runs one soak and captures the reconciliation report. The run drives
/// a replicated durable pair through an adaptive-sampled gateway; every
/// phase's submission results feed the driver's ledger.
pub fn run(config: &SoakConfig) -> SoakReport {
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let dirs = [
        storage_dir(&format!("{seq}-p")),
        storage_dir(&format!("{seq}-s")),
    ];
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    let [primary, standby] = dirs.each_ref().map(|dir| {
        CloudService::with_storage_config(
            // Batched flushing: the soak's few writes need durability
            // plumbing present, not per-write fsync latency.
            StorageConfig::new(dir).flush(FlushPolicy::EveryN(64)),
            2,
        )
        .expect("soak storage opens")
    });
    let pair = primary.with_replication(standby).expect("pair wires up");
    let gateway = Gateway::with_replicas(
        std::sync::Arc::clone(&pair),
        GatewayConfig {
            queue_capacity: config.queue_capacity,
            workers: config.workers,
            shed_policy: ShedPolicy::Reject {
                retry_after: Seconds::from_millis(5.0),
            },
        },
        RuntimeKind::Async,
        TelemetryConfig::adaptive(),
    );

    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut rate_limited = 0u64;

    let wait_all = |replies: Vec<PendingReply>, completed: &mut u64| {
        for reply in replies {
            reply.wait().expect("soak reply resolves");
            *completed += 1;
        }
    };

    // --- Phase 1: normal traffic, batches bounded well under the queue
    // so nothing sheds. ---
    let batch = (config.queue_capacity / 4).max(1) as u64;
    let mut replies = Vec::with_capacity(batch as usize);
    let mut sent = 0;
    while sent < config.normal_requests {
        for i in 0..batch.min(config.normal_requests - sent) {
            let session = sent + i + 1;
            match gateway.submit(ping_upload(session)) {
                Ok(reply) => replies.push(reply),
                // A full lane is still a counted attempt; the ledger and
                // the rejected counter move together.
                Err(SubmitError::Busy { .. }) => shed += 1,
                Err(e) => panic!("normal phase refused: {e}"),
            }
            submitted += 1;
        }
        sent += batch.min(config.normal_requests - sent);
        wait_all(std::mem::take(&mut replies), &mut completed);
    }

    // --- Phase 2: rate-limit storm. One noisy session with a one-token
    // bucket and no refill: the first attempt is admitted, every other
    // attempt is a cheap counted refusal. ---
    gateway.set_rate_limit(RateLimitConfig::per_session(1.0, 0.0));
    let storm_upload = ping_upload(STORM_SESSION);
    let mut storm_replies = Vec::new();
    for _ in 0..config.rate_limit_storm + 1 {
        match gateway.submit(storm_upload.clone()) {
            Ok(reply) => storm_replies.push(reply),
            Err(SubmitError::RateLimited { .. }) => rate_limited += 1,
            Err(e) => panic!("storm phase refused unexpectedly: {e}"),
        }
        submitted += 1;
    }
    gateway.clear_rate_limit();
    wait_all(storm_replies, &mut completed);

    // --- Phase 3: shed storm. Pause the workers, fill one lane to its
    // brim, then bounce attempts off it; resume and let the fill drain. ---
    gateway.pause();
    let mut fill_replies = Vec::new();
    loop {
        match gateway.submit(ping_upload(SHED_SESSION)) {
            Ok(reply) => {
                fill_replies.push(reply);
                submitted += 1;
            }
            Err(SubmitError::Busy { .. }) => {
                // The lane is full; the probe is the storm's first shed.
                submitted += 1;
                shed += 1;
                break;
            }
            Err(e) => panic!("fill phase refused unexpectedly: {e}"),
        }
    }
    for i in 0..config.shed_storm {
        match gateway.submit(ping_upload(SHED_SESSION)) {
            Ok(reply) => fill_replies.push(reply), // racing drain; still counted
            Err(SubmitError::Busy { retry_after, .. }) => {
                shed += 1;
                if i.is_multiple_of(SHED_PACE_STRIDE) {
                    // Park on the compressed wheel like a real session
                    // honoring the hint — the "scaled clock" in action.
                    gateway.pace(retry_after);
                }
            }
            Err(e) => panic!("shed storm refused unexpectedly: {e}"),
        }
        submitted += 1;
    }
    gateway.resume();
    wait_all(fill_replies, &mut completed);

    // --- Phase 4: fountain eviction. Strand `fountain_capacity` one-way
    // streams half-decoded, then push the same number of complete streams
    // through: each new stream capacity-evicts the stalest stranded one. ---
    gateway.set_fountain_config(FountainConfig {
        max_sessions: config.fountain_capacity,
        max_buffered_symbols: 1 << 16,
        session_timeout: Duration::from_secs(3_600),
    });
    let one_way = |session: u64| {
        let framed = ping_upload(session);
        // Tiny symbols force k ≥ 2 source symbols even for a ping, so
        // one buffered symbol provably leaves the stream half-decoded.
        let upload = OneWayUploader {
            symbol_bytes: 8,
            budget: SymbolBudget::paper_default(),
        }
        .encode_numbered(session, 0, &framed)
        .expect("one-way encode");
        assert!(
            upload.stats.encoder.source_symbols >= 2,
            "stranding requires a multi-symbol block"
        );
        upload
    };
    let evicted = config.fountain_capacity as u64;
    for i in 0..config.fountain_capacity as u64 {
        let upload = one_way(FOUNTAIN_SESSION_BASE + i);
        // One symbol only: the stream is now stranded half-decoded.
        match gateway.ingest_symbol(&upload.frames[0]) {
            Ok(SymbolIngest::Progress { .. }) => {}
            other => panic!("stranded stream should report progress, got {other:?}"),
        }
        submitted += 1;
    }
    let mut fountain_replies = Vec::new();
    for i in 0..config.fountain_capacity as u64 {
        let upload = one_way(FOUNTAIN_SESSION_BASE + 0x1000 + i);
        let mut reply = None;
        for frame in &upload.frames {
            match gateway.ingest_symbol(frame) {
                Ok(SymbolIngest::Complete { reply: r, .. }) => {
                    reply = Some(r);
                    break;
                }
                Ok(_) => {}
                Err(e) => panic!("completing stream refused: {e}"),
            }
        }
        fountain_replies.push(reply.expect("budgeted stream completes"));
        submitted += 1;
    }
    wait_all(fountain_replies, &mut completed);

    // --- Phase 5: kill the primary mid-fleet; traffic must fail over to
    // the promoted standby without the driver doing anything. ---
    pair.kill_primary();
    let mut failover_replies = Vec::new();
    for i in 0..config.failover_requests {
        match gateway.submit(ping_upload(FAILOVER_SESSION_BASE + i)) {
            Ok(reply) => failover_replies.push(reply),
            Err(SubmitError::Busy { .. }) => shed += 1,
            Err(e) => panic!("failover phase refused: {e}"),
        }
        submitted += 1;
        if failover_replies.len() >= (config.queue_capacity / 4).max(1) {
            wait_all(std::mem::take(&mut failover_replies), &mut completed);
        }
    }
    wait_all(failover_replies, &mut completed);

    // --- Drain and reconcile. ---
    gateway.drain();
    let snap = gateway.registry_snapshot();
    let scalar = |name: &str| snap.scalar(name).unwrap_or(0);
    let report = SoakReport {
        submitted,
        completed,
        shed,
        rate_limited,
        evicted,
        exp_rejected: scalar("gateway.rejected"),
        exp_rate_limited: scalar("gateway.rate_limited"),
        exp_evicted: scalar("fountain.sessions_evicted"),
        promotions: scalar("replica.promotions"),
        spans_admitted: scalar("telemetry.spans_admitted"),
        spans_recorded: scalar("telemetry.spans_recorded"),
        spans_sampled_out: scalar("telemetry.spans_sampled_out"),
        sampler_permille: scalar("telemetry.sampler_permille"),
        elapsed_ms: started.elapsed().as_millis() as u64,
    };
    gateway.shutdown();
    drop(pair);
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick preset reconciles exactly — the full-size run lives in
    /// `tests/soak_overload.rs`.
    #[test]
    fn quick_soak_reconciles_exactly() {
        let report = run(&SoakConfig::quick());
        println!("{report}");
        if let Err(errors) = report.reconcile() {
            panic!("soak failed to reconcile:\n{}", errors.join("\n"));
        }
        let config = SoakConfig::quick();
        assert!(report.rate_limited >= 19_000, "storm mostly refused");
        // Workers already parked in `recv()` before `pause()` can each
        // steal one queued item mid-storm, so up to `workers` storm
        // attempts may be admitted instead of shed.
        assert!(
            report.shed >= config.shed_storm - config.workers as u64,
            "shed storm counted, got {}",
            report.shed
        );
        assert_eq!(report.evicted, 16);
        assert_eq!(report.promotions, 1);
        assert!(
            report.sampler_permille < 1000,
            "overload must drag the keep probability down, got {}",
            report.sampler_permille
        );
    }
}
