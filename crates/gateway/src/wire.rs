//! The gateway's upload wire format.
//!
//! A dongle session ships one request as a burst of phone-style frames
//! (the same [`medsen_phone::frame`] encoding the accessory link uses):
//!
//! ```text
//! StartTest  { session_id: u64 BE, body_len: u32 BE, format: u8 }
//! StartTest  { session_id: u64 BE, body_len: u32 BE, format: u8, trace: u64 BE }
//! DataChunk  { body bytes ... }          (repeated)
//! ```
//!
//! The `StartTest` header declares exactly how many body bytes follow, so
//! the gateway can reassemble without an end-of-stream sentinel and can
//! reject short or oversized uploads before touching the codec layer.
//! The trailing `format` byte is the [`WireFormat`] tag: it names the
//! encoding of the body (binary frame or JSON text), so one gateway can
//! serve a mixed fleet of binary-speaking dongles and JSON debug clients
//! on the same ingest path.
//!
//! Two header sizes are legal: the original 13-byte header, and the
//! 21-byte traced header that appends the phone-minted trace id after
//! the existing fields (their offsets are unchanged). The 13-byte form
//! is what every pre-trace-context dongle sends — the gateway accepts
//! it forever and simply mints a gateway-local trace. Any *other*
//! header size is still [`UploadError::MalformedHeader`].

use medsen_phone::frame::{chunk_data, Frame, FrameError, MessageType};
use medsen_wire::WireFormat;
use std::fmt;

/// Frame payload cap per chunk — small enough to exercise reassembly in
/// tests, large enough to keep header overhead negligible.
pub const CHUNK_SIZE: usize = 4096;

/// Hard cap on a declared upload body, guarding the reassembly buffer.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Size of the `StartTest` header payload: session id + body length +
/// wire-format tag.
pub const HEADER_BYTES: usize = 13;

/// Size of a trace-context-bearing `StartTest` header payload:
/// [`HEADER_BYTES`] plus the appended trace id (u64 BE).
pub const TRACED_HEADER_BYTES: usize = HEADER_BYTES + 8;

/// Why an upload could not be reassembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UploadError {
    /// A frame failed to decode.
    Frame(FrameError),
    /// The first frame was not a `StartTest` header.
    MissingHeader,
    /// The header payload had the wrong size.
    MalformedHeader,
    /// The header's wire-format tag named no known encoding.
    UnknownFormat {
        /// The unrecognized format byte.
        tag: u8,
    },
    /// The declared body length exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge {
        /// Declared body length in bytes.
        declared: usize,
    },
    /// The frames carried fewer body bytes than the header declared.
    ShortBody {
        /// Declared body length in bytes.
        declared: usize,
        /// Bytes actually received.
        received: usize,
    },
    /// The frames carried *more* body bytes than the header declared.
    /// Truncating to the declared length would silently drop data, so
    /// the mismatch is rejected instead.
    OversizedBody {
        /// Declared body length in bytes.
        declared: usize,
        /// Bytes actually received.
        received: usize,
    },
    /// Bytes remained on the wire after the declared body completed.
    /// Accepting the upload would silently discard them.
    TrailingData {
        /// Unconsumed bytes after the final body chunk.
        trailing: usize,
    },
    /// A JSON-format request body was not valid UTF-8.
    BodyNotUtf8,
}

impl fmt::Display for UploadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UploadError::Frame(e) => write!(f, "frame error: {e:?}"),
            UploadError::MissingHeader => write!(f, "upload does not start with a StartTest frame"),
            UploadError::MalformedHeader => write!(f, "StartTest header has the wrong size"),
            UploadError::UnknownFormat { tag } => {
                write!(f, "unknown wire-format tag {tag:#04x} in upload header")
            }
            UploadError::BodyTooLarge { declared } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds {MAX_BODY_BYTES}"
                )
            }
            UploadError::ShortBody { declared, received } => {
                write!(
                    f,
                    "body truncated: declared {declared} bytes, received {received}"
                )
            }
            UploadError::OversizedBody { declared, received } => {
                write!(
                    f,
                    "body overflow: declared {declared} bytes, received {received}"
                )
            }
            UploadError::TrailingData { trailing } => {
                write!(f, "{trailing} bytes of trailing data after the body")
            }
            UploadError::BodyNotUtf8 => write!(f, "JSON request body is not valid UTF-8"),
        }
    }
}

impl std::error::Error for UploadError {}

impl From<FrameError> for UploadError {
    fn from(e: FrameError) -> Self {
        UploadError::Frame(e)
    }
}

/// Encodes one request body as a framed upload for `session_id`, in the
/// given wire format.
pub fn encode_upload_wire(session_id: u64, format: WireFormat, body: &[u8]) -> Vec<u8> {
    encode_upload_traced(session_id, format, body, 0)
}

/// Encodes one request body as a framed upload carrying the
/// phone-minted trace id in the 21-byte header. A zero `trace` (the
/// reserved "no trace" value) produces the legacy 13-byte header,
/// byte-identical to every pre-trace-context release.
pub fn encode_upload_traced(
    session_id: u64,
    format: WireFormat,
    body: &[u8],
    trace: u64,
) -> Vec<u8> {
    let mut header = Vec::with_capacity(TRACED_HEADER_BYTES);
    header.extend_from_slice(&session_id.to_be_bytes());
    header.extend_from_slice(&(body.len() as u32).to_be_bytes());
    header.push(format.tag());
    if trace != 0 {
        header.extend_from_slice(&trace.to_be_bytes());
    }
    let mut out = Frame::new(MessageType::StartTest, header).encode().to_vec();
    for frame in chunk_data(body, CHUNK_SIZE) {
        out.extend_from_slice(&frame.encode());
    }
    out
}

/// Encodes one JSON request body as a framed upload for `session_id`.
/// Convenience wrapper over [`encode_upload_wire`] for the debug/compat
/// path and the many tests that speak JSON directly.
pub fn encode_upload(session_id: u64, body: &str) -> Vec<u8> {
    encode_upload_wire(session_id, WireFormat::Json, body.as_bytes())
}

fn peek_header(wire: &[u8]) -> Option<(u64, WireFormat, u64)> {
    let (header, _) = Frame::decode(wire).ok()?;
    if header.msg_type != MessageType::StartTest
        || !matches!(header.payload.len(), HEADER_BYTES | TRACED_HEADER_BYTES)
    {
        return None;
    }
    let session_id = u64::from_be_bytes(header.payload[..8].try_into().ok()?);
    let format = WireFormat::from_tag(header.payload[12])?;
    let trace = match header.payload.get(HEADER_BYTES..TRACED_HEADER_BYTES) {
        Some(raw) => u64::from_be_bytes(raw.try_into().ok()?),
        None => 0,
    };
    Some((session_id, format, trace))
}

/// Reads just the session id from a framed upload's `StartTest` header
/// without reassembling the body. The gateway uses this to pick a shard
/// lane for un-keyed submissions; any malformed upload yields `None` and
/// the caller falls back to a default lane (the full decode on the worker
/// side still reports the precise [`UploadError`]).
pub fn peek_session_id(wire: &[u8]) -> Option<u64> {
    peek_header(wire).map(|(session_id, _, _)| session_id)
}

/// Reads just the wire format from a framed upload's `StartTest` header.
/// The gateway uses this at submit time to know what encoding the reply
/// must carry; malformed uploads yield `None` and the reply falls back
/// to JSON (matching the worker-side error path).
pub fn peek_format(wire: &[u8]) -> Option<WireFormat> {
    peek_header(wire).map(|(_, format, _)| format)
}

/// Reads the phone-minted trace id from a framed upload's traced
/// `StartTest` header. `None` for malformed uploads *and* for legacy
/// 13-byte headers — either way the gateway mints its own trace.
pub fn peek_trace(wire: &[u8]) -> Option<u64> {
    peek_header(wire).and_then(|(_, _, trace)| (trace != 0).then_some(trace))
}

/// Reassembles a framed upload back into
/// `(session_id, wire_format, body)`. JSON-format bodies are verified
/// to be UTF-8 here (the typed [`UploadError::BodyNotUtf8`]); binary
/// bodies are opaque at this layer and validated by the message codec.
pub fn decode_upload(wire: &[u8]) -> Result<(u64, WireFormat, Vec<u8>), UploadError> {
    decode_upload_traced(wire).map(|(session_id, format, body, _)| (session_id, format, body))
}

/// Reassembles a framed upload into
/// `(session_id, wire_format, body, trace)`, where `trace` is the
/// phone-minted trace id from a 21-byte traced header, or 0 for a
/// legacy 13-byte header.
pub fn decode_upload_traced(wire: &[u8]) -> Result<(u64, WireFormat, Vec<u8>, u64), UploadError> {
    let (header, mut offset) = Frame::decode(wire)?;
    if header.msg_type != MessageType::StartTest {
        return Err(UploadError::MissingHeader);
    }
    if !matches!(header.payload.len(), HEADER_BYTES | TRACED_HEADER_BYTES) {
        return Err(UploadError::MalformedHeader);
    }
    let session_id = u64::from_be_bytes(header.payload[..8].try_into().unwrap());
    let declared = u32::from_be_bytes(header.payload[8..12].try_into().unwrap()) as usize;
    let format_tag = header.payload[12];
    let trace = match header.payload.get(HEADER_BYTES..TRACED_HEADER_BYTES) {
        Some(raw) => u64::from_be_bytes(raw.try_into().unwrap()),
        None => 0,
    };
    let format =
        WireFormat::from_tag(format_tag).ok_or(UploadError::UnknownFormat { tag: format_tag })?;
    if declared > MAX_BODY_BYTES {
        return Err(UploadError::BodyTooLarge { declared });
    }
    let mut body = Vec::with_capacity(declared);
    while body.len() < declared {
        if offset >= wire.len() {
            return Err(UploadError::ShortBody {
                declared,
                received: body.len(),
            });
        }
        let (frame, used) = Frame::decode(&wire[offset..])?;
        offset += used;
        if frame.msg_type != MessageType::DataChunk {
            // Interleaved non-data frame: tolerate progress/status chatter.
            continue;
        }
        body.extend_from_slice(&frame.payload);
    }
    if body.len() > declared {
        // A chunk ran past the declared length. Truncating here would
        // silently drop the overflow, so the mismatch is typed instead.
        return Err(UploadError::OversizedBody {
            declared,
            received: body.len(),
        });
    }
    if offset < wire.len() {
        // Leftover frames after the declared body completed; ignoring
        // them would be a silent truncation of whatever they carried.
        return Err(UploadError::TrailingData {
            trailing: wire.len() - offset,
        });
    }
    if format == WireFormat::Json && std::str::from_utf8(&body).is_err() {
        return Err(UploadError::BodyNotUtf8);
    }
    Ok((session_id, format, body, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_small_and_multi_chunk_bodies() {
        for body in [
            "{}".to_string(),
            "x".repeat(CHUNK_SIZE - 1),
            "y".repeat(CHUNK_SIZE * 3 + 17),
        ] {
            let wire = encode_upload(42, &body);
            let (session, format, decoded) = decode_upload(&wire).expect("decodes");
            assert_eq!(session, 42);
            assert_eq!(format, WireFormat::Json);
            assert_eq!(decoded, body.as_bytes());
        }
    }

    #[test]
    fn binary_bodies_round_trip_with_their_format_tag() {
        let body: Vec<u8> = (0..=255u8).cycle().take(CHUNK_SIZE + 99).collect();
        let wire = encode_upload_wire(7, WireFormat::Binary, &body);
        let (session, format, decoded) = decode_upload(&wire).expect("decodes");
        assert_eq!(session, 7);
        assert_eq!(format, WireFormat::Binary);
        assert_eq!(decoded, body);
    }

    #[test]
    fn peeks_the_session_id_and_format_without_a_full_decode() {
        let wire = encode_upload(0xDEAD_BEEF, "{}");
        assert_eq!(peek_session_id(&wire), Some(0xDEAD_BEEF));
        assert_eq!(peek_format(&wire), Some(WireFormat::Json));
        let wire = encode_upload_wire(9, WireFormat::Binary, b"\x01\x02");
        assert_eq!(peek_format(&wire), Some(WireFormat::Binary));
        // Malformed inputs peek to None, never an error.
        assert_eq!(peek_session_id(&[0xFF, 0x00]), None);
        assert_eq!(peek_format(&[0xFF, 0x00]), None);
        let frame = Frame::new(MessageType::DataChunk, b"oops".to_vec()).encode();
        assert_eq!(peek_session_id(&frame), None);
    }

    #[test]
    fn rejects_uploads_without_a_header() {
        let frame = Frame::new(MessageType::DataChunk, b"oops".to_vec()).encode();
        assert_eq!(decode_upload(&frame), Err(UploadError::MissingHeader));
    }

    #[test]
    fn rejects_unknown_format_tags() {
        let mut header = Vec::new();
        header.extend_from_slice(&1u64.to_be_bytes());
        header.extend_from_slice(&0u32.to_be_bytes());
        header.push(0x7F);
        let wire = Frame::new(MessageType::StartTest, header).encode().to_vec();
        assert_eq!(
            decode_upload(&wire),
            Err(UploadError::UnknownFormat { tag: 0x7F })
        );
        assert_eq!(peek_format(&wire), None);
    }

    #[test]
    fn rejects_truncated_bodies() {
        let wire = encode_upload(7, &"z".repeat(CHUNK_SIZE + 10));
        // Drop the final chunk frame: find its start by re-decoding.
        let (_, first) = Frame::decode(&wire).unwrap();
        let (_, second) = Frame::decode(&wire[first..]).unwrap();
        let truncated = &wire[..first + second];
        match decode_upload(truncated) {
            Err(UploadError::ShortBody { declared, received }) => {
                assert_eq!(declared, CHUNK_SIZE + 10);
                assert_eq!(received, CHUNK_SIZE);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_corrupt_frames() {
        let mut wire = encode_upload(1, "hello");
        let last = wire.len() - 1;
        wire[last] ^= 0xFF; // break the checksum of the data chunk
        assert!(matches!(
            decode_upload(&wire),
            Err(UploadError::Frame(FrameError::ChecksumMismatch))
        ));
    }

    #[test]
    fn rejects_oversized_declarations() {
        let mut header = Vec::new();
        header.extend_from_slice(&1u64.to_be_bytes());
        header.extend_from_slice(&(u32::MAX).to_be_bytes());
        header.push(WireFormat::Json.tag());
        let wire = Frame::new(MessageType::StartTest, header).encode().to_vec();
        assert!(matches!(
            decode_upload(&wire),
            Err(UploadError::BodyTooLarge { .. })
        ));
    }

    #[test]
    fn rejects_malformed_headers() {
        // StartTest with the legacy 12-byte payload: right type, wrong
        // size — a pre-format-tag peer fails typed, not garbled.
        let wire = Frame::new(MessageType::StartTest, vec![0u8; 12])
            .encode()
            .to_vec();
        assert_eq!(decode_upload(&wire), Err(UploadError::MalformedHeader));
        // Between the two legal sizes is malformed too: a truncated
        // trace id must not half-decode.
        for size in (HEADER_BYTES + 1)..TRACED_HEADER_BYTES {
            let wire = Frame::new(MessageType::StartTest, vec![0u8; size])
                .encode()
                .to_vec();
            assert_eq!(
                decode_upload(&wire),
                Err(UploadError::MalformedHeader),
                "{size}-byte header"
            );
        }
    }

    #[test]
    fn traced_uploads_round_trip_and_untraced_stay_byte_identical() {
        let body = b"hello";
        let traced = encode_upload_traced(42, WireFormat::Binary, body, 0xFEED_F00D);
        let (session, format, decoded, trace) = decode_upload_traced(&traced).expect("decodes");
        assert_eq!(
            (session, format, decoded.as_slice(), trace),
            (42, WireFormat::Binary, &body[..], 0xFEED_F00D)
        );
        assert_eq!(peek_trace(&traced), Some(0xFEED_F00D));
        assert_eq!(peek_session_id(&traced), Some(42));
        assert_eq!(peek_format(&traced), Some(WireFormat::Binary));
        // A zero trace encodes the legacy header, byte for byte.
        assert_eq!(
            encode_upload_traced(42, WireFormat::Binary, body, 0),
            encode_upload_wire(42, WireFormat::Binary, body)
        );
    }

    #[test]
    fn legacy_headers_decode_with_no_trace() {
        let wire = encode_upload_wire(7, WireFormat::Json, b"{}");
        let (_, _, _, trace) = decode_upload_traced(&wire).expect("decodes");
        assert_eq!(trace, 0, "legacy header carries no trace");
        assert_eq!(peek_trace(&wire), None);
    }

    #[test]
    fn overflowing_chunks_are_typed_not_truncated() {
        // Declare 5 bytes but ship a 9-byte chunk: accepting and cutting
        // at 5 would silently drop "-extra".
        let mut header = Vec::new();
        header.extend_from_slice(&3u64.to_be_bytes());
        header.extend_from_slice(&5u32.to_be_bytes());
        header.push(WireFormat::Json.tag());
        let mut wire = Frame::new(MessageType::StartTest, header).encode().to_vec();
        wire.extend_from_slice(&Frame::new(MessageType::DataChunk, b"abc-extra".to_vec()).encode());
        assert_eq!(
            decode_upload(&wire),
            Err(UploadError::OversizedBody {
                declared: 5,
                received: 9
            })
        );
    }

    #[test]
    fn trailing_frames_after_the_body_are_typed_not_dropped() {
        let mut wire = encode_upload(4, "hello");
        let extra = Frame::new(MessageType::DataChunk, b"late".to_vec()).encode();
        wire.extend_from_slice(&extra);
        assert_eq!(
            decode_upload(&wire),
            Err(UploadError::TrailingData {
                trailing: extra.len()
            })
        );
    }

    #[test]
    fn non_utf8_bodies_are_typed_for_json_only() {
        let mut header = Vec::new();
        header.extend_from_slice(&2u64.to_be_bytes());
        header.extend_from_slice(&2u32.to_be_bytes());
        header.push(WireFormat::Json.tag());
        let mut wire = Frame::new(MessageType::StartTest, header).encode().to_vec();
        wire.extend_from_slice(&Frame::new(MessageType::DataChunk, vec![0xFF, 0xFE]).encode());
        assert_eq!(decode_upload(&wire), Err(UploadError::BodyNotUtf8));

        // The same bytes under the binary tag are opaque and legal here;
        // the message codec downstream is what validates them.
        let wire = encode_upload_wire(2, WireFormat::Binary, &[0xFF, 0xFE]);
        let (_, format, body) = decode_upload(&wire).expect("binary body is opaque");
        assert_eq!(format, WireFormat::Binary);
        assert_eq!(body, vec![0xFF, 0xFE]);
    }

    #[test]
    fn every_variant_displays_distinctly() {
        let variants: Vec<UploadError> = vec![
            UploadError::Frame(FrameError::ChecksumMismatch),
            UploadError::MissingHeader,
            UploadError::MalformedHeader,
            UploadError::UnknownFormat { tag: 3 },
            UploadError::BodyTooLarge { declared: 1 },
            UploadError::ShortBody {
                declared: 2,
                received: 1,
            },
            UploadError::OversizedBody {
                declared: 1,
                received: 2,
            },
            UploadError::TrailingData { trailing: 4 },
            UploadError::BodyNotUtf8,
        ];
        let mut rendered: Vec<String> = variants.iter().map(|v| v.to_string()).collect();
        rendered.sort();
        rendered.dedup();
        assert_eq!(rendered.len(), variants.len());
    }
}
