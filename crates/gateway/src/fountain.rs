//! Fountain symbol ingestion: per-session decoder state behind the
//! gateway's one-way upload route.
//!
//! Symbols arrive individually off the lossy uplink with no ordering or
//! delivery guarantee; this module keeps one peeling decoder per upload
//! session and hands the gateway the reassembled block the moment a
//! session completes. The table is bounded on three axes, because on a
//! one-way link the *sender can never be told to stop*:
//!
//! - **session count** — at most `max_sessions` concurrent half-decoded
//!   sessions; inserting past that evicts the stalest one (counted under
//!   `fountain.sessions_evicted`, the shed signal for this route);
//! - **per-session buffer** — a decoder holding more than
//!   `max_buffered_symbols` not-yet-peelable symbols is evicted: that
//!   shape means a corrupted or adversarial stream, not bad luck;
//! - **idle time** — sessions silent for `session_timeout` of real time
//!   are evicted on the next ingest (the phone either finished its
//!   budget long ago or will never complete).
//!
//! Completed sessions leave a tombstone so late stragglers from the
//! already-decoded stream count as redundant instead of restarting the
//! session from scratch.
//!
//! Streams are keyed by `(session_id, seed)`, not session id alone: one
//! dongle session uploads many requests over its lifetime, each as its
//! own fountain stream with a distinct per-upload seed, and a completed
//! upload's tombstone must not block the next one.

use medsen_fountain::{Decoder, DecoderStats, SymbolFrame, SymbolRejected};
use medsen_telemetry::{Counter, Gauge, Registry};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounds for the per-session decoder table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FountainConfig {
    /// Concurrent half-decoded sessions held at once.
    pub max_sessions: usize,
    /// Buffered (not yet peelable) coded symbols per session.
    pub max_buffered_symbols: usize,
    /// Real-time inactivity eviction threshold.
    pub session_timeout: Duration,
}

impl Default for FountainConfig {
    fn default() -> Self {
        Self {
            max_sessions: 256,
            max_buffered_symbols: 4096,
            session_timeout: Duration::from_secs(30),
        }
    }
}

/// `fountain.*` registry instruments. Registered at gateway build so the
/// exposition always carries the subsystem, active or not.
#[derive(Debug)]
pub(crate) struct FountainInstruments {
    pub(crate) symbols_received: Arc<Counter>,
    pub(crate) symbols_redundant: Arc<Counter>,
    pub(crate) symbols_rejected: Arc<Counter>,
    pub(crate) peel_iterations: Arc<Counter>,
    pub(crate) sessions_started: Arc<Counter>,
    pub(crate) sessions_completed: Arc<Counter>,
    pub(crate) sessions_evicted: Arc<Counter>,
    /// Decode overhead of the most recently completed session, in
    /// permille (1000 = perfect `k` symbols, 1300 = 30% extra).
    pub(crate) overhead_permille: Arc<Gauge>,
    pub(crate) active_sessions: Arc<Gauge>,
}

impl FountainInstruments {
    pub(crate) fn registered(registry: &Registry) -> Self {
        Self {
            symbols_received: registry.counter("fountain.symbols_received"),
            symbols_redundant: registry.counter("fountain.symbols_redundant"),
            symbols_rejected: registry.counter("fountain.symbols_rejected"),
            peel_iterations: registry.counter("fountain.peel_iterations"),
            sessions_started: registry.counter("fountain.sessions_started"),
            sessions_completed: registry.counter("fountain.sessions_completed"),
            sessions_evicted: registry.counter("fountain.sessions_evicted"),
            overhead_permille: registry.gauge("fountain.overhead_permille"),
            active_sessions: registry.gauge("fountain.active_sessions"),
        }
    }
}

/// What one accepted symbol did to its session.
#[derive(Debug)]
pub(crate) enum IngestStep {
    /// Accepted; the session needs more symbols.
    Progress { recovered: usize, total: usize },
    /// Accepted but carried nothing new.
    Redundant,
    /// The session already completed and dispatched; straggler dropped.
    AlreadyComplete,
    /// This symbol finished the block.
    Complete {
        block: Vec<u8>,
        stats: DecoderStats,
        /// When the session's first symbol arrived (span start).
        started: Instant,
    },
}

/// Why a symbol was refused (the stream-level errors; frame parse errors
/// are typed upstream by [`medsen_fountain::SymbolFrameError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FountainIngestError {
    /// The decoder rejected the symbol (size/stream mismatch).
    Symbol(SymbolRejected),
    /// The session exceeded `max_buffered_symbols` and was evicted.
    BufferExceeded { buffered: usize },
}

impl std::fmt::Display for FountainIngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Symbol(e) => write!(f, "symbol rejected: {e}"),
            Self::BufferExceeded { buffered } => {
                write!(
                    f,
                    "session evicted with {buffered} undecodable symbols buffered"
                )
            }
        }
    }
}

impl std::error::Error for FountainIngestError {}

enum SessionState {
    Decoding(Box<Decoder>),
    /// Completed and dispatched; retained so stragglers are counted
    /// as redundant rather than restarting the session.
    Done,
}

struct SessionEntry {
    state: SessionState,
    first_seen: Instant,
    last_seen: Instant,
}

/// One upload stream's identity: the dongle session plus the per-upload
/// stream seed (frames carry both).
type StreamKey = (u64, u64);

/// The per-session decoder table. Lives behind a mutex in the gateway.
pub(crate) struct FountainIngress {
    config: FountainConfig,
    sessions: HashMap<StreamKey, SessionEntry>,
}

impl FountainIngress {
    pub(crate) fn new(config: FountainConfig) -> Self {
        Self {
            config,
            sessions: HashMap::new(),
        }
    }

    /// Sessions currently tracked (decoding or tombstoned).
    pub(crate) fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Evict sessions idle past the timeout. Returns how many
    /// *half-decoded* sessions were dropped (tombstones go silently).
    pub(crate) fn evict_stale(&mut self, now: Instant) -> u64 {
        let timeout = self.config.session_timeout;
        let mut shed = 0;
        self.sessions.retain(|_, entry| {
            let stale = now.saturating_duration_since(entry.last_seen) > timeout;
            if stale && matches!(entry.state, SessionState::Decoding(_)) {
                shed += 1;
            }
            !stale
        });
        shed
    }

    /// Evict the stalest half-decoded session to make room. Returns
    /// whether anything was evicted.
    fn evict_one(&mut self) -> bool {
        let victim = self
            .sessions
            .iter()
            .filter(|(_, e)| matches!(e.state, SessionState::Decoding(_)))
            .min_by_key(|(_, e)| e.last_seen)
            .map(|(&id, _)| id);
        match victim {
            Some(id) => {
                self.sessions.remove(&id);
                true
            }
            None => {
                // Nothing but tombstones: drop the stalest of those
                // instead (never counted as shed).
                let oldest = self
                    .sessions
                    .iter()
                    .min_by_key(|(_, e)| e.last_seen)
                    .map(|(&id, _)| id);
                if let Some(id) = oldest {
                    self.sessions.remove(&id);
                }
                false
            }
        }
    }

    /// Feed one already-CRC-verified symbol frame. `evicted` reports how
    /// many half-decoded sessions were shed to make room (capacity
    /// pressure), for the caller's metrics.
    pub(crate) fn ingest(
        &mut self,
        frame: &SymbolFrame,
        now: Instant,
        evicted: &mut u64,
        started_new: &mut bool,
    ) -> Result<IngestStep, FountainIngestError> {
        let key: StreamKey = (frame.session_id, frame.seed);
        if !self.sessions.contains_key(&key) {
            while self.sessions.len() >= self.config.max_sessions {
                if self.evict_one() {
                    *evicted += 1;
                }
            }
            let decoder = Decoder::for_frame(frame).map_err(|_| {
                // Absurd stream parameters (zero symbol size is caught at
                // frame decode; this is the >64MiB block guard).
                FountainIngestError::Symbol(SymbolRejected::StreamMismatch)
            })?;
            self.sessions.insert(
                key,
                SessionEntry {
                    state: SessionState::Decoding(Box::new(decoder)),
                    first_seen: now,
                    last_seen: now,
                },
            );
            *started_new = true;
        }

        let entry = self.sessions.get_mut(&key).expect("inserted");
        entry.last_seen = now;
        let decoder = match &mut entry.state {
            SessionState::Done => return Ok(IngestStep::AlreadyComplete),
            SessionState::Decoding(d) => d,
        };

        let before = decoder.stats();
        let complete = match decoder.push_frame(frame) {
            Ok(c) => c,
            Err(e) => return Err(FountainIngestError::Symbol(e)),
        };

        if complete {
            let block = decoder.block().expect("complete decoder has a block");
            let stats = decoder.stats();
            let started = entry.first_seen;
            entry.state = SessionState::Done;
            return Ok(IngestStep::Complete {
                block,
                stats,
                started,
            });
        }

        if decoder.buffered_symbols() > self.config.max_buffered_symbols {
            let buffered = decoder.buffered_symbols();
            self.sessions.remove(&key);
            return Err(FountainIngestError::BufferExceeded { buffered });
        }

        let after = decoder.stats();
        if after.symbols_redundant > before.symbols_redundant {
            Ok(IngestStep::Redundant)
        } else {
            Ok(IngestStep::Progress {
                recovered: decoder.recovered_symbols(),
                total: decoder.source_symbols(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_fountain::Encoder;

    fn frames(session: u64, body: &[u8], count: u64) -> Vec<SymbolFrame> {
        let mut enc = Encoder::new(session, session ^ 99, body, 16).expect("encoder");
        (0..count).map(|id| enc.symbol(id)).collect()
    }

    fn drive_to_completion(
        ingress: &mut FountainIngress,
        frames: &[SymbolFrame],
        now: Instant,
    ) -> Option<Vec<u8>> {
        let (mut evicted, mut started) = (0, false);
        for f in frames {
            match ingress.ingest(f, now, &mut evicted, &mut started) {
                Ok(IngestStep::Complete { block, .. }) => return Some(block),
                Ok(_) => {}
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
        None
    }

    #[test]
    fn completes_a_session_and_tombstones_it() {
        let mut ingress = FountainIngress::new(FountainConfig::default());
        let body = b"fountain ingress end to end".repeat(4);
        let fs = frames(9, &body, 64);
        let now = Instant::now();
        let block = drive_to_completion(&mut ingress, &fs, now).expect("decodes");
        assert_eq!(block, body);
        // A straggler from the same stream is AlreadyComplete, not a new
        // session.
        let (mut evicted, mut started) = (0, false);
        let step = ingress
            .ingest(&fs[0], now, &mut evicted, &mut started)
            .expect("straggler ok");
        assert!(matches!(step, IngestStep::AlreadyComplete));
        assert!(!started);
        assert_eq!(ingress.session_count(), 1);
    }

    #[test]
    fn session_cap_evicts_the_stalest_half_decoded_session() {
        let mut ingress = FountainIngress::new(FountainConfig {
            max_sessions: 2,
            ..FountainConfig::default()
        });
        let t0 = Instant::now();
        let (mut evicted, mut started) = (0, false);
        // Two sessions open with one symbol each (incomplete).
        for (i, s) in [(1u64, 0u64), (2, 0)] {
            let f = &frames(i, b"0123456789abcdef0123456789abcdef0123", 4)[s as usize];
            ingress
                .ingest(f, t0 + Duration::from_millis(i), &mut evicted, &mut started)
                .expect("open");
        }
        assert_eq!(ingress.session_count(), 2);
        // A third session forces out session 1 (stalest).
        let f3 = &frames(3, b"0123456789abcdef0123456789abcdef0123", 4)[0];
        ingress
            .ingest(
                f3,
                t0 + Duration::from_millis(10),
                &mut evicted,
                &mut started,
            )
            .expect("third session");
        assert_eq!(evicted, 1, "one half-decoded session shed");
        assert_eq!(ingress.session_count(), 2);
        assert!(ingress.sessions.keys().all(|k| k.0 != 1));
    }

    #[test]
    fn idle_sessions_evict_on_timeout() {
        let mut ingress = FountainIngress::new(FountainConfig {
            session_timeout: Duration::from_millis(100),
            ..FountainConfig::default()
        });
        let t0 = Instant::now();
        let (mut evicted, mut started) = (0, false);
        let f = &frames(5, b"a slow upload that stalls mid-stream....", 4)[0];
        ingress
            .ingest(f, t0, &mut evicted, &mut started)
            .expect("open");
        assert_eq!(ingress.evict_stale(t0 + Duration::from_millis(50)), 0);
        assert_eq!(ingress.evict_stale(t0 + Duration::from_millis(200)), 1);
        assert_eq!(ingress.session_count(), 0);
    }

    #[test]
    fn mismatched_stream_parameters_are_rejected_not_fatal() {
        let mut ingress = FountainIngress::new(FountainConfig::default());
        let body = b"stream mismatch probe...........".repeat(2);
        let fs = frames(6, &body, 40);
        let now = Instant::now();
        let (mut evicted, mut started) = (0, false);
        ingress
            .ingest(&fs[0], now, &mut evicted, &mut started)
            .expect("open");
        // Same session id and seed but a different declared block: a
        // forged or corrupted stream that the CRC happened to miss.
        let mut forged = fs[1].clone();
        forged.block_len += 16;
        let err = ingress
            .ingest(&forged, now, &mut evicted, &mut started)
            .expect_err("forged stream");
        assert!(matches!(
            err,
            FountainIngestError::Symbol(SymbolRejected::StreamMismatch)
        ));
        // The genuine stream still completes afterwards.
        assert_eq!(
            drive_to_completion(&mut ingress, &fs[1..], now).expect("completes"),
            body
        );
    }

    #[test]
    fn sequential_uploads_from_one_session_use_distinct_streams() {
        // A dongle session's second request reuses its session id with a
        // fresh per-upload seed; the first upload's tombstone must not
        // swallow it.
        let mut ingress = FountainIngress::new(FountainConfig::default());
        let now = Instant::now();
        let first = b"upload one: enroll request........".to_vec();
        let second = b"upload two: analyze request.......".to_vec();
        let fs1: Vec<SymbolFrame> = {
            let mut e = Encoder::new(7, 1001, &first, 16).expect("encoder");
            (0..64).map(|id| e.symbol(id)).collect()
        };
        let fs2: Vec<SymbolFrame> = {
            let mut e = Encoder::new(7, 1002, &second, 16).expect("encoder");
            (0..64).map(|id| e.symbol(id)).collect()
        };
        assert_eq!(
            drive_to_completion(&mut ingress, &fs1, now).expect("first"),
            first
        );
        assert_eq!(
            drive_to_completion(&mut ingress, &fs2, now).expect("second"),
            second
        );
        assert_eq!(ingress.session_count(), 2, "one tombstone per stream");
    }
}
