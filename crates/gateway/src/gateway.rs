//! The bounded work-queue + worker-pool executor.
//!
//! [`Gateway`] fronts one shared [`CloudService`] with a bounded crossbeam
//! channel and a pool of OS threads. Sessions submit framed uploads; a
//! worker reassembles each upload, drives the service through
//! [`CloudService::handle_json_shared`], and posts the JSON response back
//! on a per-request reply channel ([`PendingReply`]).
//!
//! Backpressure is explicit: when the queue is full the [`ShedPolicy`]
//! either blocks the submitter or sheds the request with a retry-after
//! hint, and every outcome lands in [`GatewayMetrics`].

use crate::metrics::{GatewayMetrics, MetricsSnapshot};
use crate::wire;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use medsen_cloud::service::{CloudService, Response};
use medsen_units::Seconds;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// What to do with a submission when the work queue is full.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShedPolicy {
    /// Block the submitting session until a slot frees up.
    Block,
    /// Reject immediately, telling the client to retry after the given
    /// (simulated) interval.
    Reject {
        /// Retry-after hint returned with [`SubmitError::Busy`].
        retry_after: Seconds,
    },
}

/// Sizing and shedding knobs for a [`Gateway`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayConfig {
    /// Bounded work-queue capacity (must be > 0).
    pub queue_capacity: usize,
    /// Worker threads. `0` is allowed and means "never drain" — useful for
    /// deterministically exercising the backpressure path in tests.
    pub workers: usize,
    /// Full-queue behavior.
    pub shed_policy: ShedPolicy,
}

impl GatewayConfig {
    /// A small-clinic default: a few workers, a queue deep enough to absorb
    /// bursts, and shed-with-retry rather than blocking the dongle.
    pub fn clinic_default() -> Self {
        Self {
            queue_capacity: 64,
            workers: 4,
            shed_policy: ShedPolicy::Reject {
                retry_after: Seconds::from_millis(50.0),
            },
        }
    }
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self::clinic_default()
    }
}

/// A submission that did not enter the queue. Carries the upload back so
/// the caller can retry without re-encoding.
pub enum SubmitError {
    /// The queue was full under [`ShedPolicy::Reject`].
    Busy {
        /// How long the client should (simulated-)wait before retrying.
        retry_after: Seconds,
        /// The rejected upload, returned for resubmission.
        upload: Vec<u8>,
    },
    /// The gateway has shut down.
    Closed {
        /// The undeliverable upload.
        upload: Vec<u8>,
    },
}

impl fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy {
                retry_after,
                upload,
            } => f
                .debug_struct("Busy")
                .field("retry_after", retry_after)
                .field("upload_bytes", &upload.len())
                .finish(),
            SubmitError::Closed { upload } => f
                .debug_struct("Closed")
                .field("upload_bytes", &upload.len())
                .finish(),
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy { retry_after, .. } => {
                write!(f, "gateway queue full, retry after {retry_after}")
            }
            SubmitError::Closed { .. } => write!(f, "gateway is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a reply never materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyError {
    /// The gateway shut down before serving the request.
    Lost,
    /// The worker's response was not decodable JSON.
    Malformed {
        /// Decoder diagnostics.
        reason: String,
    },
}

impl fmt::Display for ReplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplyError::Lost => write!(f, "gateway dropped the request before replying"),
            ReplyError::Malformed { reason } => write!(f, "malformed gateway response: {reason}"),
        }
    }
}

impl std::error::Error for ReplyError {}

/// A handle to one in-flight request's eventual response.
#[derive(Debug)]
pub struct PendingReply {
    rx: Receiver<String>,
}

impl PendingReply {
    /// Blocks until the worker replies, returning the raw response JSON.
    pub fn wait_raw(self) -> Result<String, ReplyError> {
        self.rx.recv().map_err(|_| ReplyError::Lost)
    }

    /// Blocks until the worker replies and decodes the [`Response`].
    pub fn wait(self) -> Result<Response, ReplyError> {
        let json = self.wait_raw()?;
        medsen_phone::from_json(&json).map_err(|e| ReplyError::Malformed {
            reason: e.to_string(),
        })
    }
}

struct WorkItem {
    upload: Vec<u8>,
    reply: Sender<String>,
    enqueued: Instant,
}

/// The multi-session ingestion gateway.
pub struct Gateway {
    service: Arc<CloudService>,
    metrics: Arc<GatewayMetrics>,
    tx: Sender<WorkItem>,
    // Keeps the channel connected even with a zero-worker pool (used by
    // tests to freeze the queue); workers hold their own clones.
    _rx: Receiver<WorkItem>,
    workers: Vec<thread::JoinHandle<()>>,
    shed_policy: ShedPolicy,
    next_session: AtomicU64,
}

impl Gateway {
    /// Spawns the worker pool in front of `service`.
    pub fn new(service: CloudService, config: GatewayConfig) -> Self {
        let service = Arc::new(service);
        let metrics = Arc::new(GatewayMetrics::new());
        let (tx, rx) = bounded::<WorkItem>(config.queue_capacity);
        let workers = (0..config.workers)
            .map(|i| {
                let rx = rx.clone();
                let service = Arc::clone(&service);
                let metrics = Arc::clone(&metrics);
                thread::Builder::new()
                    .name(format!("gateway-worker-{i}"))
                    .spawn(move || worker_loop(rx, service, metrics))
                    .expect("spawn gateway worker")
            })
            .collect();
        Self {
            service,
            metrics,
            tx,
            _rx: rx,
            workers,
            shed_policy: config.shed_policy,
            next_session: AtomicU64::new(1),
        }
    }

    /// The shared cloud service (for fleet-level setup like classifier
    /// installation checks or direct record-store access in tests).
    pub fn service(&self) -> &CloudService {
        &self.service
    }

    /// A point-in-time copy of the gateway's metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    pub(crate) fn metrics_handle(&self) -> &GatewayMetrics {
        &self.metrics
    }

    pub(crate) fn allocate_session_id(&self) -> u64 {
        self.next_session.fetch_add(1, Ordering::Relaxed)
    }

    /// Submits a framed upload, applying the shed policy when the queue is
    /// full. On success the request is owned by the gateway and the
    /// returned [`PendingReply`] will produce exactly one response.
    pub fn submit(&self, upload: Vec<u8>) -> Result<PendingReply, SubmitError> {
        let (reply_tx, reply_rx) = bounded(1);
        let item = WorkItem {
            upload,
            reply: reply_tx,
            enqueued: Instant::now(),
        };
        match self.shed_policy {
            ShedPolicy::Block => {
                if let Err(e) = self.tx.send(item) {
                    return Err(SubmitError::Closed { upload: e.0.upload });
                }
            }
            ShedPolicy::Reject { retry_after } => match self.tx.try_send(item) {
                Ok(()) => {}
                Err(TrySendError::Full(item)) => {
                    self.metrics.on_rejected();
                    return Err(SubmitError::Busy {
                        retry_after,
                        upload: item.upload,
                    });
                }
                Err(TrySendError::Disconnected(item)) => {
                    return Err(SubmitError::Closed {
                        upload: item.upload,
                    });
                }
            },
        }
        self.metrics.on_accepted(self.tx.len());
        Ok(PendingReply { rx: reply_rx })
    }

    /// Stops accepting work, drains the queue, joins the workers, and
    /// returns the final metrics. Outstanding [`PendingReply`] handles for
    /// queued work still resolve; anything submitted afterwards fails with
    /// [`SubmitError::Closed`].
    pub fn shutdown(self) -> MetricsSnapshot {
        let Gateway {
            tx,
            workers,
            metrics,
            ..
        } = self;
        drop(tx);
        for handle in workers {
            let _ = handle.join();
        }
        metrics.snapshot()
    }
}

impl fmt::Debug for Gateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gateway")
            .field("workers", &self.workers.len())
            .field("queue_len", &self.tx.len())
            .field("shed_policy", &self.shed_policy)
            .finish()
    }
}

fn worker_loop(rx: Receiver<WorkItem>, service: Arc<CloudService>, metrics: Arc<GatewayMetrics>) {
    while let Ok(item) = rx.recv() {
        metrics.queue_wait.record(item.enqueued.elapsed());
        let started = Instant::now();
        let response_json = match wire::decode_upload(&item.upload) {
            Ok((_session_id, body)) => service.handle_json_shared(&body),
            Err(e) => error_json(&format!("malformed upload: {e}")),
        };
        metrics.service_time.record(started.elapsed());
        metrics.on_completed();
        // A session that gave up on the reply is not an error.
        let _ = item.reply.send(response_json);
    }
}

fn error_json(reason: &str) -> String {
    medsen_phone::to_json(&Response::Error {
        reason: reason.into(),
    })
    .unwrap_or_else(|_| "{\"Error\":{\"reason\":\"encode failure\"}}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_cloud::service::Request;

    fn ping_upload(session: u64) -> Vec<u8> {
        let json = medsen_phone::to_json(&Request::Ping).expect("encodes");
        wire::encode_upload(session, &json)
    }

    #[test]
    fn serves_a_ping_through_the_pool() {
        let gw = Gateway::new(
            CloudService::new(),
            GatewayConfig {
                queue_capacity: 4,
                workers: 2,
                shed_policy: ShedPolicy::Block,
            },
        );
        let reply = gw.submit(ping_upload(1)).expect("accepted");
        assert_eq!(reply.wait().expect("reply"), Response::Pong);
        let m = gw.shutdown();
        assert_eq!(m.accepted, 1);
        assert_eq!(m.completed, 1);
        assert_eq!(m.lost(), 0);
    }

    #[test]
    fn rejects_with_retry_after_when_full() {
        // Zero workers: the queue never drains, so the overflow path is
        // deterministic.
        let gw = Gateway::new(
            CloudService::new(),
            GatewayConfig {
                queue_capacity: 2,
                workers: 0,
                shed_policy: ShedPolicy::Reject {
                    retry_after: Seconds::from_millis(25.0),
                },
            },
        );
        let _a = gw.submit(ping_upload(1)).expect("fits");
        let _b = gw.submit(ping_upload(2)).expect("fits");
        match gw.submit(ping_upload(3)) {
            Err(SubmitError::Busy {
                retry_after,
                upload,
            }) => {
                assert!((retry_after.value() - 0.025).abs() < 1e-12);
                assert!(!upload.is_empty());
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        let m = gw.metrics();
        assert_eq!(m.accepted, 2);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.queue_high_water, 2);
    }

    #[test]
    fn malformed_uploads_yield_error_responses_not_crashes() {
        let gw = Gateway::new(
            CloudService::new(),
            GatewayConfig {
                queue_capacity: 4,
                workers: 1,
                shed_policy: ShedPolicy::Block,
            },
        );
        let reply = gw.submit(vec![0xFF, 0x00, 0x01]).expect("accepted");
        match reply.wait().expect("reply decodes") {
            Response::Error { reason } => assert!(reason.contains("malformed upload")),
            other => panic!("unexpected {other:?}"),
        }
        gw.shutdown();
    }

    #[test]
    fn shutdown_resolves_queued_work_then_closes() {
        let gw = Gateway::new(
            CloudService::new(),
            GatewayConfig {
                queue_capacity: 8,
                workers: 1,
                shed_policy: ShedPolicy::Block,
            },
        );
        let replies: Vec<PendingReply> = (0..5)
            .map(|i| gw.submit(ping_upload(i)).expect("accepted"))
            .collect();
        let m = gw.shutdown();
        for reply in replies {
            assert_eq!(reply.wait().expect("served before close"), Response::Pong);
        }
        assert_eq!(m.completed, 5);
        assert_eq!(m.lost(), 0);
    }
}
