//! The bounded work-queue executor behind the gateway.
//!
//! [`Gateway`] fronts one shared [`CloudService`] with a bounded queue
//! and a pool of workers. Sessions submit framed uploads tagged with a
//! [`WireFormat`]; a worker reassembles each upload, drives the service
//! through [`CloudService::handle_wire_shared`] in that format, and
//! posts the encoded response back on a per-request reply channel
//! ([`PendingReply`]).
//!
//! The queue is split into **lanes** aligned with the cloud tier's
//! identifier-hash shards: `lanes = shards.min(workers).max(1)`, each
//! lane a bounded channel of `queue_capacity / lanes` slots with its own
//! worker group (worker *w* drains lane *w mod lanes*). Submissions
//! carry a route key ([`Gateway::submit_keyed`]) — enrollments route by
//! [`medsen_cloud::identity_hash`] of the identifier so writes to the
//! same auth shard serialize in the same lane, everything else routes by
//! session id. With one shard (or one worker) this degenerates to the
//! original single-queue gateway.
//!
//! Two interchangeable engines implement the pool, selected by
//! [`RuntimeKind`]:
//!
//! * [`RuntimeKind::Async`] (the default) — M worker *tasks* multiplexed
//!   over a fixed pool of `medsen-runtime` executor threads, pulling from
//!   the runtime's async MPMC channel. Idle workers cost a task, not a
//!   thread, which is what lets one gateway host thousands of
//!   low-duty-cycle sessions.
//! * [`RuntimeKind::Threads`] — the original OS-thread-per-worker pool on
//!   a crossbeam channel, kept as a baseline and selectable from the CLI
//!   via `--runtime threads`.
//!
//! Backpressure is explicit: when the queue is full the [`ShedPolicy`]
//! either blocks the submitter or sheds the request with a retry-after
//! hint, and every outcome lands in [`GatewayMetrics`]. Retry-after and
//! backoff waits are paced on the gateway's time-compressed timer wheel
//! (see [`Gateway::pace`]), so shed-heavy tests cost milliseconds of real
//! time, not seconds.

use crate::fountain::{
    FountainConfig, FountainIngestError, FountainIngress, FountainInstruments, IngestStep,
};
use crate::limit::{RateLimitConfig, RateLimiter};
use crate::metrics::{GatewayMetrics, MetricsSnapshot};
use crate::wire;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use medsen_cloud::service::{CloudService, Request, Response};
use medsen_cloud::ReplicatedCloud;
use medsen_fountain::{decode_symbol_frame, DecoderStats, SymbolFrameError};
use medsen_runtime as runtime;
use medsen_telemetry::{
    spans_json_lines, text_exposition, ActiveTrace, Exemplars, OverloadSignal, Registry,
    RegistrySnapshot, Sampler, SamplerMode, SlowTrace, SpanRecorder, Stage, TraceId,
    DEFAULT_EXEMPLARS, DEFAULT_RING_CAPACITY,
};
use medsen_units::Seconds;
use medsen_wire::WireFormat;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// Simulated-to-real compression for retry-after and backoff pacing: a
/// 50 ms simulated shed wait parks the session for 1 ms of real time.
/// Drain pacing survives (sessions still retry at a bounded rate), but a
/// shed-heavy fleet test no longer burns wall-clock seconds.
const TIME_COMPRESSION: f64 = 50.0;

/// Upper bound on executor threads for the async engine; worker *tasks*
/// scale independently of this.
const MAX_EXECUTOR_THREADS: usize = 8;

/// One adaptive-sampler feedback observation per this many arrivals
/// (submissions + fountain symbols). Power of two so the stride check is
/// a mask, not a modulo.
const SAMPLER_OBSERVE_STRIDE: u64 = 1024;

/// Which concurrency engine drives the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeKind {
    /// One OS thread per worker (the original engine).
    Threads,
    /// Worker tasks on the `medsen-runtime` executor (fixed thread pool).
    #[default]
    Async,
}

impl fmt::Display for RuntimeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeKind::Threads => write!(f, "threads"),
            RuntimeKind::Async => write!(f, "async"),
        }
    }
}

impl std::str::FromStr for RuntimeKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "threads" => Ok(RuntimeKind::Threads),
            "async" => Ok(RuntimeKind::Async),
            other => Err(format!(
                "unknown runtime `{other}` (expected `threads` or `async`)"
            )),
        }
    }
}

/// What to do with a submission when the work queue is full.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShedPolicy {
    /// Block the submitting session until a slot frees up.
    Block,
    /// Reject immediately, telling the client to retry after the given
    /// (simulated) interval.
    Reject {
        /// Retry-after hint returned with [`SubmitError::Busy`].
        retry_after: Seconds,
    },
}

/// Sizing and shedding knobs for a [`Gateway`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayConfig {
    /// Bounded work-queue capacity (must be > 0).
    pub queue_capacity: usize,
    /// Worker count: tasks under [`RuntimeKind::Async`], OS threads under
    /// [`RuntimeKind::Threads`]. `0` is allowed and means "never drain" —
    /// useful for deterministically exercising the backpressure path in
    /// tests.
    pub workers: usize,
    /// Full-queue behavior.
    pub shed_policy: ShedPolicy,
}

impl GatewayConfig {
    /// A small-clinic default: a few workers, a queue deep enough to absorb
    /// bursts, and shed-with-retry rather than blocking the dongle.
    pub fn clinic_default() -> Self {
        Self {
            queue_capacity: 64,
            workers: 4,
            shed_policy: ShedPolicy::Reject {
                retry_after: Seconds::from_millis(50.0),
            },
        }
    }
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self::clinic_default()
    }
}

/// Span-tracing knobs for a [`Gateway`], separate from [`GatewayConfig`]
/// so existing sizing literals keep compiling.
///
/// Counters and histograms are always on (they predate this config and
/// cost a handful of relaxed atomics); this only governs the *span*
/// machinery — trace minting, ring recording, and slow-request exemplars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Mint a [`TraceId`] per admitted request and record per-stage spans.
    pub spans: bool,
    /// Span ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
    /// How many worst end-to-end traces to retain as exemplars.
    pub exemplars: usize,
    /// Head-sampling policy for spans. [`SamplerMode::Always`] (the
    /// default) records everything with zero sampling machinery in the
    /// path; the other modes route every span through a [`Sampler`]
    /// funnel so `recorded + sampled_out == admitted` holds exactly.
    pub sampling: SamplerMode,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            spans: true,
            ring_capacity: DEFAULT_RING_CAPACITY,
            exemplars: DEFAULT_EXEMPLARS,
            sampling: SamplerMode::Always,
        }
    }
}

impl TelemetryConfig {
    /// Spans and exemplars off; counters and the registry stay live.
    pub fn disabled() -> Self {
        Self {
            spans: false,
            ..Self::default()
        }
    }

    /// Spans on with the overload-adaptive head sampler: keep
    /// probability starts at 100% and the AIMD controller halves it
    /// whenever the gateway sheds, rate-limits, or churns the span ring.
    pub fn adaptive() -> Self {
        Self {
            sampling: SamplerMode::Adaptive,
            ..Self::default()
        }
    }
}

/// The span-tracing half of the gateway's telemetry: the shared ring the
/// whole stack records into, plus the K-worst exemplar tracker fed on
/// completion. Present only when [`TelemetryConfig::spans`] is on.
#[derive(Debug)]
struct GatewayTracing {
    recorder: Arc<SpanRecorder>,
    exemplars: Exemplars,
    /// The head-sampling funnel; `None` under [`SamplerMode::Always`]
    /// (the zero-overhead record-everything path).
    sampler: Option<Arc<Sampler>>,
}

/// A submission that did not enter the queue. Carries the upload back so
/// the caller can retry without re-encoding.
pub enum SubmitError {
    /// The queue was full under [`ShedPolicy::Reject`].
    Busy {
        /// How long the client should (simulated-)wait before retrying.
        retry_after: Seconds,
        /// The rejected upload, returned for resubmission.
        upload: Vec<u8>,
    },
    /// The session is over its token-bucket rate. Distinct from
    /// [`SubmitError::Busy`] so callers (and the soak harness's exact
    /// reconciliation ledger) can tell "the gateway is full" from "this
    /// device is too loud" without consulting counters.
    RateLimited {
        /// Real time until the session's bucket refills.
        retry_after: Seconds,
        /// The refused upload, returned for resubmission.
        upload: Vec<u8>,
    },
    /// The gateway has shut down or been drained.
    Closed {
        /// The undeliverable upload.
        upload: Vec<u8>,
    },
}

impl fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy {
                retry_after,
                upload,
            } => f
                .debug_struct("Busy")
                .field("retry_after", retry_after)
                .field("upload_bytes", &upload.len())
                .finish(),
            SubmitError::RateLimited {
                retry_after,
                upload,
            } => f
                .debug_struct("RateLimited")
                .field("retry_after", retry_after)
                .field("upload_bytes", &upload.len())
                .finish(),
            SubmitError::Closed { upload } => f
                .debug_struct("Closed")
                .field("upload_bytes", &upload.len())
                .finish(),
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy { retry_after, .. } => {
                write!(f, "gateway queue full, retry after {retry_after}")
            }
            SubmitError::RateLimited { retry_after, .. } => {
                write!(f, "session rate limited, retry after {retry_after}")
            }
            SubmitError::Closed { .. } => write!(f, "gateway is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Bounded shed-retry budget for dispatching a reassembled one-way
/// upload into the queue. The phone cannot retry (no downlink), so the
/// gateway absorbs backpressure on its behalf — but a saturated queue
/// must surface as [`SymbolSubmitError::Shed`], not a hang.
const DISPATCH_ATTEMPTS: u32 = 32;

/// What one fountain symbol did on the gateway's one-way upload route
/// (see [`Gateway::ingest_symbol`]).
#[derive(Debug)]
pub enum SymbolIngest {
    /// Accepted; the session needs more symbols.
    Progress {
        /// The upload session the symbol belongs to.
        session_id: u64,
        /// Source symbols recovered so far.
        recovered: usize,
        /// Source symbols in the block (`k`).
        total: usize,
    },
    /// Accepted but linearly dependent on symbols already held.
    Redundant {
        /// The upload session the symbol belongs to.
        session_id: u64,
    },
    /// Straggler for a session that already completed and dispatched.
    AlreadyComplete {
        /// The upload session the symbol belongs to.
        session_id: u64,
    },
    /// This symbol finished the block: the reassembled request is now in
    /// the queue and `reply` will produce its response.
    Complete {
        /// The upload session that completed.
        session_id: u64,
        /// The dispatched request's reply handle.
        reply: PendingReply,
        /// Decoder counters for the completed session.
        stats: DecoderStats,
    },
}

/// Why a symbol was refused by [`Gateway::ingest_symbol`].
#[derive(Debug)]
pub enum SymbolSubmitError {
    /// The symbol frame failed to parse or verify (dropped before any
    /// session state was touched).
    Frame(SymbolFrameError),
    /// The session is over its token-bucket rate; the symbol was dropped.
    /// On a one-way link the phone never sees this — the hint sizes the
    /// *gateway-side* expectation of when the stream is worth resuming.
    RateLimited {
        /// The offending session.
        session_id: u64,
        /// Real time until the bucket refills.
        retry_after: Seconds,
    },
    /// The decoder refused the symbol (stream mismatch or buffer blowout).
    Ingest(FountainIngestError),
    /// The block decoded but its payload is not a valid request upload.
    CorruptUpload {
        /// The session whose block was bad.
        session_id: u64,
        /// What failed (decompression, UTF-8, or JSON decode).
        detail: String,
    },
    /// The reassembled request could not enter the queue within the
    /// bounded dispatch-retry budget; the decoded block is lost and the
    /// phone's next full stream will retry the upload.
    Shed {
        /// The session whose dispatch was shed.
        session_id: u64,
        /// The queue's final retry-after hint.
        retry_after: Seconds,
    },
    /// The gateway has shut down or been drained.
    Closed,
}

impl fmt::Display for SymbolSubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolSubmitError::Frame(e) => write!(f, "bad symbol frame: {e}"),
            SymbolSubmitError::RateLimited {
                session_id,
                retry_after,
            } => write!(
                f,
                "session {session_id} rate limited, retry after {retry_after}"
            ),
            SymbolSubmitError::Ingest(e) => write!(f, "symbol refused: {e}"),
            SymbolSubmitError::CorruptUpload { session_id, detail } => {
                write!(
                    f,
                    "session {session_id} reassembled a corrupt upload: {detail}"
                )
            }
            SymbolSubmitError::Shed {
                session_id,
                retry_after,
            } => write!(
                f,
                "session {session_id} decoded but the queue shed it, retry after {retry_after}"
            ),
            SymbolSubmitError::Closed => write!(f, "gateway is shut down"),
        }
    }
}

impl std::error::Error for SymbolSubmitError {}

impl From<SymbolFrameError> for SymbolSubmitError {
    fn from(e: SymbolFrameError) -> Self {
        SymbolSubmitError::Frame(e)
    }
}

impl From<FountainIngestError> for SymbolSubmitError {
    fn from(e: FountainIngestError) -> Self {
        SymbolSubmitError::Ingest(e)
    }
}

/// Why a reply never materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyError {
    /// The gateway shut down before serving the request.
    Lost,
    /// The worker's response was not decodable in the reply's wire
    /// format.
    Malformed {
        /// Decoder diagnostics.
        reason: String,
    },
}

impl fmt::Display for ReplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplyError::Lost => write!(f, "gateway dropped the request before replying"),
            ReplyError::Malformed { reason } => write!(f, "malformed gateway response: {reason}"),
        }
    }
}

impl std::error::Error for ReplyError {}

/// A handle to one in-flight request's eventual response.
#[derive(Debug)]
pub struct PendingReply {
    rx: Receiver<Vec<u8>>,
    /// The wire format the reply is encoded in — peeked off the upload
    /// header at submit time, so `wait` knows which decoder to run
    /// without sniffing bytes.
    format: WireFormat,
    /// The request's trace context, so [`PendingReply::wait`] can close
    /// the chain with a phone-side `ReplyDecode` span. `None` when spans
    /// are off.
    trace: Option<ActiveTrace>,
}

impl PendingReply {
    /// Blocks until the worker replies, returning the raw response bytes
    /// (JSON text or a binary wire frame, per [`PendingReply::format`]).
    pub fn wait_raw(self) -> Result<Vec<u8>, ReplyError> {
        self.rx.recv().map_err(|_| ReplyError::Lost)
    }

    /// The wire format the reply will arrive in.
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// The trace id this reply will decode under, when spans are on.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.trace.as_ref().map(|t| t.id)
    }

    /// Blocks until the worker replies and decodes the [`Response`] —
    /// the phone-side terminus of the trace chain, recorded as a
    /// `ReplyDecode` span around the decode itself.
    pub fn wait(self) -> Result<Response, ReplyError> {
        let format = self.format;
        let trace = self.trace.clone();
        let bytes = self.wait_raw()?;
        let started = Instant::now();
        let decoded = medsen_cloud::wire::decode_response_traced(format, &bytes)
            .map(|(response, _)| response)
            .map_err(|e| ReplyError::Malformed {
                reason: e.to_string(),
            });
        if let Some(trace) = &trace {
            trace.record(Stage::ReplyDecode, 0, started, Instant::now());
        }
        decoded
    }
}

/// Where worker requests go: one shared service, or a replicated pair
/// routed through [`ReplicatedCloud::serving`] so traffic follows a
/// promotion without the workers being told.
#[derive(Clone)]
enum ServiceRoute {
    Single(Arc<CloudService>),
    Replicated(Arc<ReplicatedCloud>),
}

impl ServiceRoute {
    /// The node to dispatch the next request to. For a replicated pair
    /// this consults the pair every call — the first dispatch after a
    /// primary death (or deposition) promotes the standby and routes
    /// there, which is the gateway's failover path.
    fn serving(&self) -> Arc<CloudService> {
        match self {
            ServiceRoute::Single(service) => Arc::clone(service),
            ServiceRoute::Replicated(pair) => pair.serving(),
        }
    }

    /// Same routing decision, by reference (for snapshot paths that only
    /// read stats off the current node).
    fn serving_ref(&self) -> &Arc<CloudService> {
        match self {
            ServiceRoute::Single(service) => service,
            ServiceRoute::Replicated(pair) => {
                let _ = pair.serving(); // promote if the primary is gone
                if pair.is_promoted() {
                    pair.standby()
                } else {
                    pair.primary()
                }
            }
        }
    }

    fn replicas(&self) -> Option<&Arc<ReplicatedCloud>> {
        match self {
            ServiceRoute::Single(_) => None,
            ServiceRoute::Replicated(pair) => Some(pair),
        }
    }
}

struct WorkItem {
    upload: Vec<u8>,
    reply: Sender<Vec<u8>>,
    /// When the submitter entered `submit_keyed` — the start of the
    /// request's end-to-end latency (exemplar total).
    admitted: Instant,
    /// When the item landed in its lane (start of the queue span).
    enqueued: Instant,
    /// The lane the item was routed onto, as the queue span's tag.
    lane: u32,
    /// The request's trace context, carried across the queue so the
    /// worker records against the same [`TraceId`] the submitter minted.
    /// `None` when spans are disabled.
    trace: Option<ActiveTrace>,
}

/// The original engine: one OS thread per worker, now on one crossbeam
/// channel per lane.
struct ThreadEngine {
    lanes: Vec<Sender<WorkItem>>,
    // Keeps the channels connected even with a zero-worker pool (used by
    // tests to freeze the queue); workers hold their own clones.
    _rxs: Vec<Receiver<WorkItem>>,
    workers: Vec<thread::JoinHandle<()>>,
}

/// The task engine: M worker tasks over N executor threads, one runtime
/// channel per lane.
struct AsyncEngine {
    executor: runtime::Executor,
    lanes: Vec<runtime::channel::Sender<WorkItem>>,
    // Same zero-worker trick as the thread engine: hold receivers so the
    // queues can fill without disconnecting.
    _rxs: Vec<runtime::channel::Receiver<WorkItem>>,
    tasks: Vec<runtime::JoinHandle<()>>,
}

impl AsyncEngine {
    /// Ordered teardown: stop intake on every lane, let tasks drain their
    /// queues, join them, then stop the executor pool (its `Drop` joins
    /// the threads).
    fn quiesce(&mut self) {
        for tx in &self.lanes {
            tx.close();
        }
        for task in self.tasks.drain(..) {
            task.join();
        }
    }
}

impl Drop for AsyncEngine {
    fn drop(&mut self) {
        self.quiesce();
    }
}

enum Engine {
    Threads(ThreadEngine),
    Async(AsyncEngine),
}

/// The multi-session ingestion gateway.
pub struct Gateway {
    route: ServiceRoute,
    metrics: Arc<GatewayMetrics>,
    /// The unified instrument registry every gateway counter/histogram is
    /// registered in; [`Gateway::registry_snapshot`] overlays the cloud
    /// tier's subsystem-owned stats on top of it.
    registry: Arc<Registry>,
    /// Span ring + exemplars, when [`TelemetryConfig::spans`] is on.
    tracing: Option<Arc<GatewayTracing>>,
    engine: Engine,
    /// Time-compressed wheel pacing shed retry-after and backoff waits.
    /// Created lazily on the first paced wait: a scaled timer owns a
    /// driver thread, and gateways that never shed should not pay for one.
    pacer: OnceLock<runtime::Timer>,
    shed_policy: ShedPolicy,
    runtime_kind: RuntimeKind,
    next_session: AtomicU64,
    /// Admin drain state: once set, new submissions are refused with
    /// [`SubmitError::Closed`] while the workers keep serving what is
    /// already queued.
    drained: AtomicBool,
    /// Admin pause state: while set, workers hold admitted work (nothing
    /// dequeues) but submissions are still accepted — the opposite half
    /// of drain. Shared with the worker loops.
    paused: Arc<AtomicBool>,
    /// Per-session fountain decoder table for the one-way upload route.
    uplink: Mutex<FountainIngress>,
    /// `fountain.*` registry instruments, registered at build so the
    /// exposition always carries the subsystem.
    fountain: FountainInstruments,
    /// Optional per-session token-bucket limiter. `None` = unlimited.
    limiter: Mutex<Option<RateLimiter>>,
    /// Submission counter striding the adaptive sampler's feedback
    /// observations: every [`SAMPLER_OBSERVE_STRIDE`]-th arrival feeds the
    /// controller one [`OverloadSignal`], keeping the control loop off the
    /// per-request hot path.
    sampler_tick: AtomicU64,
}

impl Gateway {
    /// Spawns the worker pool in front of `service` on the default
    /// (async) engine.
    pub fn new(service: CloudService, config: GatewayConfig) -> Self {
        Self::with_runtime(service, config, RuntimeKind::default())
    }

    /// Spawns the worker pool on an explicitly chosen engine with default
    /// telemetry (spans on, default ring and exemplar sizing).
    pub fn with_runtime(
        service: CloudService,
        config: GatewayConfig,
        runtime_kind: RuntimeKind,
    ) -> Self {
        Self::with_telemetry(service, config, runtime_kind, TelemetryConfig::default())
    }

    /// Spawns the worker pool with explicit span-tracing knobs.
    pub fn with_telemetry(
        service: CloudService,
        config: GatewayConfig,
        runtime_kind: RuntimeKind,
        telemetry: TelemetryConfig,
    ) -> Self {
        Self::build(
            ServiceRoute::Single(Arc::new(service)),
            config,
            runtime_kind,
            telemetry,
        )
    }

    /// Spawns the worker pool in front of a replicated pair. Requests
    /// route to the pair's current serving node on every dispatch, so a
    /// primary death fails the fleet over to the promoted standby without
    /// touching the sessions.
    pub fn with_replicas(
        replicas: Arc<ReplicatedCloud>,
        config: GatewayConfig,
        runtime_kind: RuntimeKind,
        telemetry: TelemetryConfig,
    ) -> Self {
        Self::build(
            ServiceRoute::Replicated(replicas),
            config,
            runtime_kind,
            telemetry,
        )
    }

    fn build(
        route: ServiceRoute,
        config: GatewayConfig,
        runtime_kind: RuntimeKind,
        telemetry: TelemetryConfig,
    ) -> Self {
        let lanes = lane_count_for(route.serving_ref().shard_count(), config.workers);
        // `queue_capacity` stays the *total* budget: splitting it across
        // lanes preserves the seed invariant that at most `queue_capacity`
        // items are queued gateway-wide.
        let per_lane_capacity = (config.queue_capacity / lanes).max(1);
        let registry = Arc::new(Registry::new());
        let metrics = Arc::new(GatewayMetrics::registered(lanes, &registry));
        let fountain = FountainInstruments::registered(&registry);
        let tracing = telemetry.spans.then(|| {
            // `Always` keeps the seed fast path: no sampler object, no
            // per-span funnel, every record goes straight to the ring.
            let sampler = match telemetry.sampling {
                SamplerMode::Always => None,
                mode => Some(Arc::new(Sampler::new(mode))),
            };
            Arc::new(GatewayTracing {
                recorder: Arc::new(SpanRecorder::with_capacity(telemetry.ring_capacity)),
                exemplars: Exemplars::new(telemetry.exemplars),
                sampler,
            })
        });
        let paused = Arc::new(AtomicBool::new(false));
        let engine = match runtime_kind {
            RuntimeKind::Threads => {
                let mut txs = Vec::with_capacity(lanes);
                let mut rxs = Vec::with_capacity(lanes);
                for _ in 0..lanes {
                    let (tx, rx) = bounded::<WorkItem>(per_lane_capacity);
                    txs.push(tx);
                    rxs.push(rx);
                }
                let workers = (0..config.workers)
                    .map(|i| {
                        let rx = rxs[i % lanes].clone();
                        let route = route.clone();
                        let metrics = Arc::clone(&metrics);
                        let tracing = tracing.clone();
                        let paused = Arc::clone(&paused);
                        thread::Builder::new()
                            .name(format!("gateway-worker-{i}"))
                            .spawn(move || worker_loop(rx, route, metrics, tracing, paused))
                            .expect("spawn gateway worker")
                    })
                    .collect();
                Engine::Threads(ThreadEngine {
                    lanes: txs,
                    _rxs: rxs,
                    workers,
                })
            }
            RuntimeKind::Async => {
                let executor =
                    runtime::Executor::new(config.workers.clamp(1, MAX_EXECUTOR_THREADS));
                let mut txs = Vec::with_capacity(lanes);
                let mut rxs = Vec::with_capacity(lanes);
                for _ in 0..lanes {
                    let (tx, rx) = runtime::channel::bounded::<WorkItem>(per_lane_capacity);
                    txs.push(tx);
                    rxs.push(rx);
                }
                let tasks = (0..config.workers)
                    .map(|i| {
                        let rx = rxs[i % lanes].clone();
                        let route = route.clone();
                        let metrics = Arc::clone(&metrics);
                        let tracing = tracing.clone();
                        let paused = Arc::clone(&paused);
                        executor.spawn(worker_task(rx, route, metrics, tracing, paused))
                    })
                    .collect();
                Engine::Async(AsyncEngine {
                    executor,
                    lanes: txs,
                    _rxs: rxs,
                    tasks,
                })
            }
        };
        Self {
            route,
            metrics,
            registry,
            tracing,
            engine,
            pacer: OnceLock::new(),
            shed_policy: config.shed_policy,
            runtime_kind,
            next_session: AtomicU64::new(1),
            drained: AtomicBool::new(false),
            paused,
            uplink: Mutex::new(FountainIngress::new(FountainConfig::default())),
            fountain,
            limiter: Mutex::new(None),
            sampler_tick: AtomicU64::new(0),
        }
    }

    /// Which engine this gateway runs on.
    pub fn runtime_kind(&self) -> RuntimeKind {
        self.runtime_kind
    }

    /// The cloud service requests currently route to (for fleet-level
    /// setup like classifier installation checks or direct record-store
    /// access in tests). For a replicated gateway this follows the pair's
    /// promotion state.
    pub fn service(&self) -> &CloudService {
        self.route.serving_ref()
    }

    /// The replicated pair behind this gateway, when it fronts one.
    pub fn replicas(&self) -> Option<&Arc<ReplicatedCloud>> {
        self.route.replicas()
    }

    /// A point-in-time copy of the gateway's metrics, including the cloud
    /// tier's per-shard lock-contention counters and (for a durable
    /// service) the write-ahead-log counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        fill_service_snapshot(&mut snap, self.route.serving_ref(), self.is_drained());
        snap
    }

    /// The unified instrument registry behind [`Gateway::metrics`].
    /// Instruments registered here are live — the same `Arc` handles the
    /// workers mutate.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A registry snapshot with the cloud tier's subsystem-owned stats
    /// overlaid: `cloud.shard.<i>.contention`, the `wal.*` counters (for
    /// a durable service), `cache.*`, `gateway.drained`, and — when spans
    /// are on — `telemetry.spans_recorded`. This is the value
    /// [`Gateway::telemetry_text`] renders.
    pub fn registry_snapshot(&self) -> RegistrySnapshot {
        let mut snap = self.registry.snapshot();
        let service = self.route.serving_ref();
        for (i, s) in service.shard_stats().iter().enumerate() {
            snap.set_counter(&format!("cloud.shard.{i}.contention"), s.contended_writes);
        }
        if let Some(wal) = service.storage_stats() {
            snap.set_counter("wal.appends", wal.appends);
            snap.set_counter("wal.fsyncs", wal.fsyncs);
            snap.set_counter("wal.bytes_written", wal.bytes_written);
            snap.set_counter("wal.recovered_entries", wal.recovered_entries);
            snap.set_counter(
                "wal.recovered_truncated_bytes",
                wal.recovered_truncated_bytes,
            );
        }
        let cache = service.cache_stats();
        snap.set_counter("cache.hits", cache.hits);
        snap.set_counter("cache.misses", cache.misses);
        snap.set_gauge("cache.entries", cache.entries as u64);
        snap.set_gauge("gateway.drained", u64::from(self.is_drained()));
        snap.set_gauge("gateway.paused", u64::from(self.is_paused()));
        if let Some(pair) = self.route.replicas() {
            let status = pair.status();
            snap.set_counter("replica.shipped_frames", status.shipper.shipped_frames);
            snap.set_counter("replica.shipped_bytes", status.shipper.shipped_bytes);
            snap.set_counter("replica.acked_bytes", status.shipper.acked_bytes);
            snap.set_gauge("replica.lag_bytes", status.shipper.lag_bytes);
            snap.set_counter("replica.snapshots", status.shipper.snapshots_shipped);
            snap.set_counter("replica.ship_failures", status.shipper.ship_failures);
            snap.set_counter("replica.applied_frames", status.standby.applied_frames);
            snap.set_counter("replica.stale_rejected", status.standby.stale_rejected);
            snap.set_counter("replica.promotions", status.standby.promotions);
            snap.set_gauge("replica.epoch", status.epoch);
            snap.set_gauge("replica.promoted", u64::from(status.promoted));
        }
        if let Some(tracing) = &self.tracing {
            snap.set_counter("telemetry.spans_recorded", tracing.recorder.recorded());
            if let Some(sampler) = &tracing.sampler {
                snap.set_counter("telemetry.spans_admitted", sampler.admitted());
                snap.set_counter("telemetry.spans_sampled_out", sampler.sampled_out());
                snap.set_gauge(
                    "telemetry.sampler_permille",
                    u64::from(sampler.keep_permille()),
                );
            }
        }
        snap
    }

    /// The whole stack's metrics as line-oriented `name value` text
    /// (see `medsen_telemetry::text_exposition` for the grammar).
    pub fn telemetry_text(&self) -> String {
        text_exposition(&self.registry_snapshot())
    }

    /// Every span the ring currently retains, as JSON lines — one object
    /// per span, oldest claim first. Empty when spans are disabled.
    pub fn spans_json(&self) -> String {
        match &self.tracing {
            Some(tracing) => spans_json_lines(&tracing.recorder.snapshot()),
            None => String::new(),
        }
    }

    /// The K worst end-to-end requests seen so far, each joined with its
    /// per-stage breakdown. Empty when spans are disabled.
    pub fn slow_traces(&self) -> Vec<SlowTrace> {
        match &self.tracing {
            Some(tracing) => tracing.exemplars.report(&tracing.recorder),
            None => Vec::new(),
        }
    }

    /// The shared span ring, when spans are on (tests correlate traces).
    pub fn span_recorder(&self) -> Option<&Arc<SpanRecorder>> {
        self.tracing.as_ref().map(|t| &t.recorder)
    }

    /// How many queue lanes this gateway runs
    /// (`shards.min(workers).max(1)`).
    pub fn lane_count(&self) -> usize {
        match &self.engine {
            Engine::Threads(engine) => engine.lanes.len(),
            Engine::Async(engine) => engine.lanes.len(),
        }
    }

    pub(crate) fn metrics_handle(&self) -> &GatewayMetrics {
        &self.metrics
    }

    pub(crate) fn allocate_session_id(&self) -> u64 {
        self.next_session.fetch_add(1, Ordering::Relaxed)
    }

    /// Parks the calling session for `wait` of *simulated* time on the
    /// gateway's compressed timer wheel (real time = `wait` ÷
    /// [`TIME_COMPRESSION`]). Used for shed retry-after hints and flaky
    /// -link backoffs: drain pacing is preserved without burning
    /// wall-clock seconds.
    pub(crate) fn pace(&self, wait: Seconds) {
        let secs = wait.value();
        if secs.is_finite() && secs > 0.0 {
            self.pacer
                .get_or_init(|| runtime::Timer::scaled(TIME_COMPRESSION))
                .sleep_blocking(Duration::from_secs_f64(secs));
        }
    }

    /// Submits a framed upload, applying the shed policy when the target
    /// lane is full. Routes by the upload's session id (peeked from the
    /// `StartTest` header; malformed uploads fall back to lane 0 and get
    /// their precise error from the worker-side decode). On success the
    /// request is owned by the gateway and the returned [`PendingReply`]
    /// will produce exactly one response.
    pub fn submit(&self, upload: Vec<u8>) -> Result<PendingReply, SubmitError> {
        let key = wire::peek_session_id(&upload).unwrap_or(0);
        self.submit_keyed(upload, key)
    }

    /// Puts the gateway in the `Drain` admin state: new submissions are
    /// refused with [`SubmitError::Closed`], in-flight and queued work is
    /// allowed to finish, and a final WAL flush forces everything the
    /// workers wrote to disk regardless of the flush policy. Unlike
    /// [`Gateway::shutdown`], the gateway stays alive afterwards — reads
    /// of its metrics and service keep working, which is what an operator
    /// wants between "stop taking traffic" and "kill the process".
    ///
    /// Idempotent. With a zero-worker pool (test configurations) queued
    /// work can never finish, so the wait is skipped and only intake is
    /// closed and the WAL flushed. A paused gateway is resumed first —
    /// drain's contract is "everything admitted gets served", which held
    /// work cannot satisfy.
    pub fn drain(&self) {
        self.resume();
        self.drained.store(true, Ordering::SeqCst);
        if self.worker_count() > 0 {
            loop {
                let snap = self.metrics.snapshot();
                if snap.completed >= snap.accepted {
                    break;
                }
                thread::sleep(Duration::from_millis(1));
            }
        }
        self.route.serving_ref().flush_storage();
    }

    /// Whether [`Gateway::drain`] has been called.
    pub fn is_drained(&self) -> bool {
        self.drained.load(Ordering::SeqCst)
    }

    /// Puts the gateway in the `Pause` admin state: workers stop
    /// dequeuing, holding everything admitted, while new submissions are
    /// still accepted into the queue (the shed policy applies once it
    /// fills). The complement of [`Gateway::drain`] — drain refuses new
    /// work and finishes the old; pause takes new work and sits on it.
    /// Operators use it to hold traffic across a cloud-side intervention
    /// (say, a replica promotion) without bouncing sessions.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::SeqCst);
    }

    /// Lifts [`Gateway::pause`]; held work resumes draining immediately.
    pub fn resume(&self) {
        self.paused.store(false, Ordering::SeqCst);
    }

    /// Whether the gateway is currently paused.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }

    /// Submits a framed upload to the lane selected by `route_key % lanes`.
    /// Sessions pass [`medsen_cloud::identity_hash`] of the identifier for
    /// enrollments — aligning the queue lane with the auth shard the write
    /// will land on — and their session id for everything else.
    pub fn submit_keyed(
        &self,
        upload: Vec<u8>,
        route_key: u64,
    ) -> Result<PendingReply, SubmitError> {
        // The rate limit keys on the session id, not the route key: an
        // enrollment's route key is its identity hash, but the noisy
        // *device* is what the limiter must recognize.
        let session = wire::peek_session_id(&upload).unwrap_or(route_key);
        self.observe_sampler();
        if let Some(retry_after) = self.check_rate_limit(session) {
            self.metrics.on_rate_limited();
            return Err(SubmitError::RateLimited {
                retry_after,
                upload,
            });
        }
        let trace = self.trace_for_upload(&upload);
        self.submit_traced(upload, route_key, trace)
    }

    /// Mints the phone-side trace context for a session about to encode
    /// a request — the origin of the cross-tier chain. `None` when spans
    /// are off.
    pub(crate) fn phone_trace(&self) -> Option<ActiveTrace> {
        self.trace_with_id(TraceId::mint())
    }

    /// A trace context for an upload: joins the trace id embedded in the
    /// upload header (a phone that minted the trace at encode time), or
    /// mints a fresh one for legacy untraced frames. `None` when spans
    /// are off.
    fn trace_for_upload(&self, upload: &[u8]) -> Option<ActiveTrace> {
        let joined = wire::peek_trace(upload).and_then(TraceId::from_raw);
        self.trace_with_id(joined.unwrap_or_else(TraceId::mint))
    }

    /// Builds the context for `id` — through the sampler's head-verdict
    /// draw when one is installed, so every tier holding this id reaches
    /// the same keep/drop decision without coordination.
    fn trace_with_id(&self, id: TraceId) -> Option<ActiveTrace> {
        self.tracing.as_ref().map(|t| match &t.sampler {
            Some(sampler) => ActiveTrace::sampled(id, Arc::clone(&t.recorder), Arc::clone(sampler)),
            None => ActiveTrace::unsampled(id, Arc::clone(&t.recorder)),
        })
    }

    /// Every [`SAMPLER_OBSERVE_STRIDE`]-th arrival feeds the adaptive
    /// controller one overload observation: ring churn from the recorder,
    /// refusal pressure from the shed + rate-limit counters.
    fn observe_sampler(&self) {
        let Some(tracing) = &self.tracing else { return };
        let Some(sampler) = &tracing.sampler else {
            return;
        };
        let tick = self.sampler_tick.fetch_add(1, Ordering::Relaxed);
        if !tick.is_multiple_of(SAMPLER_OBSERVE_STRIDE) {
            return;
        }
        sampler.observe(OverloadSignal {
            recorded_total: tracing.recorder.recorded(),
            refused_total: self.metrics.refusals(),
            ring_capacity: tracing.recorder.capacity() as u64,
        });
    }

    /// One token from `session`'s bucket, when a limiter is installed.
    /// `Some(wait)` means the submission must be refused.
    fn check_rate_limit(&self, session: u64) -> Option<Seconds> {
        let mut guard = self.limiter.lock().expect("rate limiter lock");
        let limiter = guard.as_mut()?;
        limiter.try_take(session, Instant::now()).err()
    }

    /// The enqueue path shared by [`Gateway::submit_keyed`] and the
    /// fountain dispatch: the caller supplies the trace so a reassembled
    /// upload's `FountainDecode` span and its request spans join under
    /// one [`TraceId`].
    fn submit_traced(
        &self,
        upload: Vec<u8>,
        route_key: u64,
        trace: Option<ActiveTrace>,
    ) -> Result<PendingReply, SubmitError> {
        let admitted = Instant::now();
        if self.is_drained() {
            // A drained gateway sheds exactly like a full one, and the
            // turn-away shows up in the same counter.
            self.metrics.on_rejected();
            return Err(SubmitError::Closed { upload });
        }
        let lane = (route_key % self.lane_count() as u64) as usize;
        // Remember the upload's wire format so `wait` runs the matching
        // decoder. An upload too mangled to peek falls back to JSON —
        // the same fallback the worker's error path uses, so the reply
        // and the handle always agree on the encoding.
        let format = wire::peek_format(&upload).unwrap_or(WireFormat::Json);
        let (reply_tx, reply_rx) = bounded(1);
        let item = WorkItem {
            upload,
            reply: reply_tx,
            admitted,
            enqueued: Instant::now(),
            lane: lane as u32,
            trace: trace.clone(),
        };
        let lane_depth = match &self.engine {
            Engine::Threads(engine) => {
                let tx = &engine.lanes[lane];
                match self.shed_policy {
                    ShedPolicy::Block => {
                        if let Err(e) = tx.send(item) {
                            return Err(SubmitError::Closed { upload: e.0.upload });
                        }
                    }
                    ShedPolicy::Reject { retry_after } => match tx.try_send(item) {
                        Ok(()) => {}
                        Err(TrySendError::Full(item)) => {
                            self.metrics.on_rejected();
                            return Err(SubmitError::Busy {
                                retry_after,
                                upload: item.upload,
                            });
                        }
                        Err(TrySendError::Disconnected(item)) => {
                            return Err(SubmitError::Closed {
                                upload: item.upload,
                            });
                        }
                    },
                }
                tx.len()
            }
            Engine::Async(engine) => {
                let tx = &engine.lanes[lane];
                match self.shed_policy {
                    ShedPolicy::Block => {
                        if let Err(e) = runtime::block_on(tx.send(item)) {
                            return Err(SubmitError::Closed { upload: e.0.upload });
                        }
                    }
                    ShedPolicy::Reject { retry_after } => match tx.try_send(item) {
                        Ok(()) => {}
                        Err(runtime::channel::TrySendError::Full(item)) => {
                            self.metrics.on_rejected();
                            return Err(SubmitError::Busy {
                                retry_after,
                                upload: item.upload,
                            });
                        }
                        Err(runtime::channel::TrySendError::Closed(item)) => {
                            return Err(SubmitError::Closed {
                                upload: item.upload,
                            });
                        }
                    },
                }
                tx.len()
            }
        };
        // One depth probe on the lane just written: the submit path stays
        // O(1) in the lane count instead of summing every lane's queue.
        self.metrics.on_accepted(lane, lane_depth);
        if let Some(trace) = &trace {
            trace.record(Stage::Admission, lane as u32, admitted, Instant::now());
        }
        Ok(PendingReply {
            rx: reply_rx,
            format,
            trace,
        })
    }

    /// Installs (or replaces) the per-session token-bucket rate limit.
    /// Applies to both the two-way submit path and the fountain symbol
    /// route; refusals count under `gateway.rate_limited`. A gateway
    /// starts with no limit installed.
    pub fn set_rate_limit(&self, config: RateLimitConfig) {
        *self.limiter.lock().expect("rate limiter lock") = Some(RateLimiter::new(config));
    }

    /// Removes the rate limit installed by [`Gateway::set_rate_limit`].
    pub fn clear_rate_limit(&self) {
        *self.limiter.lock().expect("rate limiter lock") = None;
    }

    /// Replaces the fountain ingestion bounds (session cap, per-session
    /// buffer cap, idle timeout). Drops all half-decoded session state —
    /// call before traffic, not during it.
    pub fn set_fountain_config(&self, config: FountainConfig) {
        *self.uplink.lock().expect("fountain ingress lock") = FountainIngress::new(config);
    }

    /// Feeds one fountain symbol frame from a one-way (no-ACK) uplink.
    ///
    /// Each surviving symbol of a phone's rateless stream lands here
    /// individually; the gateway accumulates them in a bounded
    /// per-session peeling decoder and, the moment a session's block
    /// completes, decompresses it, reconstructs the request upload, and
    /// dispatches it into the same lane/shed/worker pipeline a two-way
    /// submission takes. The returned [`SymbolIngest::Complete`] carries
    /// the request's [`PendingReply`].
    ///
    /// Errors are per-symbol and non-fatal to the gateway: a corrupt
    /// frame, a rate-limited session, or an evicted stream refuses that
    /// symbol only. The sender, by design, is never told — overhead in
    /// the symbol budget is the phone's only defense, which is the
    /// fountain-coding bargain.
    pub fn ingest_symbol(&self, bytes: &[u8]) -> Result<SymbolIngest, SymbolSubmitError> {
        let frame = match decode_symbol_frame(bytes) {
            Ok((frame, _)) => frame,
            Err(e) => {
                self.fountain.symbols_rejected.incr();
                return Err(SymbolSubmitError::Frame(e));
            }
        };
        if self.is_drained() {
            self.metrics.on_rejected();
            return Err(SymbolSubmitError::Closed);
        }
        self.observe_sampler();
        // One token per symbol: a session spraying far past its budget
        // stops consuming decoder memory and lock time at the door.
        if let Some(retry_after) = self.check_rate_limit(frame.session_id) {
            self.metrics.on_rate_limited();
            return Err(SymbolSubmitError::RateLimited {
                session_id: frame.session_id,
                retry_after,
            });
        }
        let now = Instant::now();
        let step = {
            let mut uplink = self.uplink.lock().expect("fountain ingress lock");
            let stale = uplink.evict_stale(now);
            let (mut evicted, mut started) = (0u64, false);
            let step = uplink.ingest(&frame, now, &mut evicted, &mut started);
            // Every half-decoded session dropped — idle timeout or
            // capacity pressure — is this route's shed: the upload is
            // lost and the phone must re-stream. Count it alongside the
            // queue's own rejections so one counter answers "are we
            // turning work away?".
            let shed = stale + evicted;
            if shed > 0 {
                self.fountain.sessions_evicted.add(shed);
                for _ in 0..shed {
                    self.metrics.on_rejected();
                }
            }
            if started {
                self.fountain.sessions_started.incr();
            }
            self.fountain
                .active_sessions
                .set(uplink.session_count() as u64);
            step
        };
        let step = match step {
            Ok(step) => step,
            Err(e) => {
                self.fountain.symbols_rejected.incr();
                return Err(SymbolSubmitError::Ingest(e));
            }
        };
        self.fountain.symbols_received.incr();
        match step {
            IngestStep::Progress { recovered, total } => Ok(SymbolIngest::Progress {
                session_id: frame.session_id,
                recovered,
                total,
            }),
            IngestStep::Redundant => {
                self.fountain.symbols_redundant.incr();
                Ok(SymbolIngest::Redundant {
                    session_id: frame.session_id,
                })
            }
            IngestStep::AlreadyComplete => {
                self.fountain.symbols_redundant.incr();
                Ok(SymbolIngest::AlreadyComplete {
                    session_id: frame.session_id,
                })
            }
            IngestStep::Complete {
                block,
                stats,
                started,
            } => {
                self.fountain.sessions_completed.incr();
                self.fountain.peel_iterations.add(stats.peel_iterations);
                self.fountain
                    .overhead_permille
                    .set((stats.overhead_ratio() * 1000.0).round() as u64);
                let reply = self.dispatch_reassembled(frame.session_id, &block, started, now)?;
                Ok(SymbolIngest::Complete {
                    session_id: frame.session_id,
                    reply,
                    stats,
                })
            }
        }
    }

    /// Decompresses a completed fountain block — which carries the full
    /// framed upload, wire-format tag and all — derives the route key,
    /// and pushes the upload into the queue with a bounded paced
    /// shed-retry loop (the phone has no downlink, so the gateway does
    /// the retrying a two-way session would do itself).
    fn dispatch_reassembled(
        &self,
        session_id: u64,
        block: &[u8],
        decode_started: Instant,
        decode_finished: Instant,
    ) -> Result<PendingReply, SymbolSubmitError> {
        let corrupt = |detail: String| SymbolSubmitError::CorruptUpload { session_id, detail };
        // The fountain block carries the *complete framed upload* the
        // session would have submitted over a two-way link, so one-way
        // traffic rides the same format-tagged ingest path as everything
        // else. Decode it here only to derive the route key.
        let mut upload =
            medsen_phone::decompress(block).map_err(|e| corrupt(format!("decompress: {e}")))?;
        let (_, format, body, trace_raw) =
            wire::decode_upload_traced(&upload).map_err(|e| corrupt(format!("upload: {e}")))?;
        // Reassembled enrollments route by the identifier's shard hash,
        // exactly like two-way submissions; anything else (including a
        // body the worker will reject anyway) routes by session id.
        let route_key = match medsen_cloud::wire::decode_request_traced(format, &body) {
            Ok((Request::Enroll { ref identifier, .. }, _)) => {
                medsen_cloud::identity_hash(identifier)
            }
            Ok(_) => session_id,
            Err(e) => return Err(corrupt(format!("request decode: {e}"))),
        };
        // Join the trace the *phone* minted at encode time (carried
        // through the fountain stream inside the reassembled upload's
        // header) rather than minting a second one — a one-way request is
        // one trace, reassembly included. Legacy untraced uploads still
        // get a fresh id.
        let trace = self.trace_with_id(TraceId::from_raw(trace_raw).unwrap_or_else(TraceId::mint));
        if let Some(trace) = &trace {
            // The decode span and the request's admission/queue/service
            // spans share that one trace, so slow-trace reports show
            // reassembly time next to pipeline time.
            trace.record(
                Stage::FountainDecode,
                session_id as u32,
                decode_started,
                decode_finished,
            );
        }
        let mut last_hint = Seconds::ZERO;
        for _ in 0..DISPATCH_ATTEMPTS {
            match self.submit_traced(upload, route_key, trace.clone()) {
                Ok(reply) => return Ok(reply),
                Err(
                    SubmitError::Busy {
                        retry_after,
                        upload: returned,
                    }
                    | SubmitError::RateLimited {
                        retry_after,
                        upload: returned,
                    },
                ) => {
                    upload = returned;
                    last_hint = retry_after;
                    self.metrics.on_retried();
                    self.pace(retry_after);
                }
                Err(SubmitError::Closed { .. }) => return Err(SymbolSubmitError::Closed),
            }
        }
        self.metrics.on_failed();
        Err(SymbolSubmitError::Shed {
            session_id,
            retry_after: last_hint,
        })
    }

    /// Stops accepting work, drains the queue, joins the workers, and
    /// returns the final metrics. Outstanding [`PendingReply`] handles for
    /// queued work still resolve; anything submitted afterwards fails with
    /// [`SubmitError::Closed`].
    pub fn shutdown(self) -> MetricsSnapshot {
        // A paused pool would never drain its queues; shutdown implies
        // resume for the same reason drain does.
        self.resume();
        let Gateway {
            route,
            engine,
            metrics,
            drained,
            ..
        } = self;
        match engine {
            Engine::Threads(ThreadEngine { lanes, workers, .. }) => {
                drop(lanes);
                for handle in workers {
                    let _ = handle.join();
                }
            }
            // Quiesce before the snapshot below so queued work is counted;
            // the subsequent `Drop` is an idempotent no-op.
            Engine::Async(mut engine) => engine.quiesce(),
        }
        // A durable service's unsynced tail goes to disk before the final
        // numbers are reported — shutdown is a graceful exit, not a crash.
        let service = route.serving_ref();
        service.flush_storage();
        let mut snap = metrics.snapshot();
        fill_service_snapshot(&mut snap, service, drained.load(Ordering::SeqCst));
        snap
    }

    fn worker_count(&self) -> usize {
        match &self.engine {
            Engine::Threads(engine) => engine.workers.len(),
            Engine::Async(engine) => engine.tasks.len(),
        }
    }

    fn queue_len(&self) -> usize {
        match &self.engine {
            Engine::Threads(engine) => engine.lanes.iter().map(|t| t.len()).sum(),
            Engine::Async(engine) => engine.lanes.iter().map(|t| t.len()).sum(),
        }
    }
}

/// Completes a bare metrics snapshot with the cloud-service-side stats
/// only the gateway can correlate: per-shard lock contention, the
/// durable service's WAL counters, and the drain flag.
fn fill_service_snapshot(snap: &mut MetricsSnapshot, service: &CloudService, drained: bool) {
    snap.shard_contention = service
        .shard_stats()
        .iter()
        .map(|s| s.contended_writes)
        .collect();
    if let Some(wal) = service.storage_stats() {
        snap.wal_appends = wal.appends;
        snap.wal_fsyncs = wal.fsyncs;
        snap.wal_bytes = wal.bytes_written;
        snap.wal_recovered_entries = wal.recovered_entries;
        snap.wal_truncated_bytes = wal.recovered_truncated_bytes;
    }
    let cache = service.cache_stats();
    snap.cache_hits = cache.hits;
    snap.cache_misses = cache.misses;
    snap.drained = drained;
}

/// Lane sizing: one lane per cloud shard, but never more lanes than
/// workers (an unstaffed lane would strand its queue) and never zero
/// (a zero-worker gateway still needs somewhere to park submissions for
/// the deterministic backpressure tests).
fn lane_count_for(shards: usize, workers: usize) -> usize {
    shards.min(workers).max(1)
}

impl fmt::Debug for Gateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Gateway");
        s.field("runtime", &self.runtime_kind)
            .field("workers", &self.worker_count())
            .field("lanes", &self.lane_count())
            .field("queue_len", &self.queue_len())
            .field("shed_policy", &self.shed_policy);
        if let Engine::Async(engine) = &self.engine {
            s.field("executor_threads", &engine.executor.threads());
        }
        s.finish()
    }
}

/// Decode → serve → reply for one work item; shared by both engines.
///
/// When the item carries a trace, the worker records its queue span
/// (enqueue → dequeue) and service span, and installs the trace as the
/// thread's active context for the duration of the cloud call — that is
/// what lets the shard-lock, WAL, and analysis layers attribute their
/// spans to this request without any parameter threading.
fn handle_item(
    item: WorkItem,
    route: &ServiceRoute,
    metrics: &GatewayMetrics,
    tracing: Option<&GatewayTracing>,
) {
    let dequeued = Instant::now();
    metrics
        .queue_wait
        .record(dequeued.saturating_duration_since(item.enqueued));
    let _context = item.trace.clone().map(|trace| {
        trace.record(Stage::Queue, item.lane, item.enqueued, dequeued);
        medsen_telemetry::install(trace)
    });
    let started = Instant::now();
    let response = match wire::decode_upload(&item.upload) {
        Ok((_session_id, format, body)) => {
            let service = route.serving();
            let mut bytes = service.handle_wire_shared(format, &body);
            // Failover on error: the node was deposed between the routing
            // decision and the dispatch (a fenced node refuses everything
            // and applied nothing, so the retry is safe). The next
            // `serving()` call observes the fence and promotes.
            if service.is_fenced() && medsen_cloud::wire::reply_is_deposed(format, &bytes) {
                if let Some(pair) = route.replicas() {
                    bytes = pair.serving().handle_wire_shared(format, &body);
                }
            }
            bytes
        }
        Err(e) => {
            // An undecodable upload still gets a well-formed refusal, in
            // whatever format its header claimed (JSON when even the
            // header is gone — matching the submit-side peek fallback).
            let format = wire::peek_format(&item.upload).unwrap_or(WireFormat::Json);
            medsen_cloud::wire::encode_error(format, &format!("malformed upload: {e}"))
        }
    };
    let finished = Instant::now();
    metrics
        .service_time
        .record(finished.saturating_duration_since(started));
    medsen_telemetry::record(Stage::Service, item.lane, started, finished);
    metrics.on_completed();
    if let (Some(trace), Some(tracing)) = (&item.trace, tracing) {
        let total_ns = finished
            .saturating_duration_since(item.admitted)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        tracing.exemplars.offer(trace.id, total_ns);
    }
    // A session that gave up on the reply is not an error.
    let _ = item.reply.send(response);
}

fn worker_loop(
    rx: Receiver<WorkItem>,
    route: ServiceRoute,
    metrics: Arc<GatewayMetrics>,
    tracing: Option<Arc<GatewayTracing>>,
    paused: Arc<AtomicBool>,
) {
    while let Ok(item) = rx.recv() {
        // An engaged pause holds the item right here — dequeued but not
        // started — until an operator resumes (or drain/shutdown does).
        while paused.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(1));
        }
        handle_item(item, &route, &metrics, tracing.as_deref());
    }
}

/// One worker task: pull, serve, cooperatively yield so sibling workers
/// sharing the executor thread get a turn between requests.
async fn worker_task(
    rx: runtime::channel::Receiver<WorkItem>,
    route: ServiceRoute,
    metrics: Arc<GatewayMetrics>,
    tracing: Option<Arc<GatewayTracing>>,
    paused: Arc<AtomicBool>,
) {
    while let Ok(item) = rx.recv().await {
        // Paused workers briefly park the executor thread between polls:
        // every sibling task is paused too, so there is no useful work
        // being starved, and the 1 ms nap keeps the wait from spinning.
        while paused.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(1));
            runtime::yield_now().await;
        }
        handle_item(item, &route, &metrics, tracing.as_deref());
        runtime::yield_now().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsen_cloud::service::Request;

    fn ping_upload(session: u64) -> Vec<u8> {
        let json = medsen_phone::to_json(&Request::Ping).expect("encodes");
        wire::encode_upload(session, &json)
    }

    fn ping_upload_binary(session: u64) -> Vec<u8> {
        let body = medsen_cloud::wire::encode_request(WireFormat::Binary, &Request::Ping)
            .expect("encodes");
        wire::encode_upload_wire(session, WireFormat::Binary, &body)
    }

    fn engines() -> [RuntimeKind; 2] {
        [RuntimeKind::Threads, RuntimeKind::Async]
    }

    #[test]
    fn default_engine_is_async() {
        let gw = Gateway::new(CloudService::new(), GatewayConfig::clinic_default());
        assert_eq!(gw.runtime_kind(), RuntimeKind::Async);
        gw.shutdown();
    }

    #[test]
    fn runtime_kind_parses_and_displays() {
        assert_eq!("threads".parse::<RuntimeKind>(), Ok(RuntimeKind::Threads));
        assert_eq!("async".parse::<RuntimeKind>(), Ok(RuntimeKind::Async));
        assert!("green-threads".parse::<RuntimeKind>().is_err());
        assert_eq!(RuntimeKind::Async.to_string(), "async");
        assert_eq!(RuntimeKind::Threads.to_string(), "threads");
    }

    #[test]
    fn serves_a_ping_through_the_pool() {
        for kind in engines() {
            let gw = Gateway::with_runtime(
                CloudService::new(),
                GatewayConfig {
                    queue_capacity: 4,
                    workers: 2,
                    shed_policy: ShedPolicy::Block,
                },
                kind,
            );
            let reply = gw.submit(ping_upload(1)).expect("accepted");
            assert_eq!(reply.wait().expect("reply"), Response::Pong);
            let m = gw.shutdown();
            assert_eq!(m.accepted, 1, "{kind}");
            assert_eq!(m.completed, 1, "{kind}");
            assert_eq!(m.lost(), 0, "{kind}");
        }
    }

    #[test]
    fn serves_a_binary_ping_through_the_pool() {
        for kind in engines() {
            let gw = Gateway::with_runtime(
                CloudService::new(),
                GatewayConfig {
                    queue_capacity: 4,
                    workers: 2,
                    shed_policy: ShedPolicy::Block,
                },
                kind,
            );
            let reply = gw.submit(ping_upload_binary(1)).expect("accepted");
            assert_eq!(reply.format(), WireFormat::Binary);
            assert_eq!(reply.wait().expect("reply"), Response::Pong);
            let m = gw.shutdown();
            assert_eq!(m.completed, 1, "{kind}");
        }
    }

    #[test]
    fn rejects_with_retry_after_when_full() {
        // Zero workers: the queue never drains, so the overflow path is
        // deterministic.
        for kind in engines() {
            let gw = Gateway::with_runtime(
                CloudService::new(),
                GatewayConfig {
                    queue_capacity: 2,
                    workers: 0,
                    shed_policy: ShedPolicy::Reject {
                        retry_after: Seconds::from_millis(25.0),
                    },
                },
                kind,
            );
            let _a = gw.submit(ping_upload(1)).expect("fits");
            let _b = gw.submit(ping_upload(2)).expect("fits");
            match gw.submit(ping_upload(3)) {
                Err(SubmitError::Busy {
                    retry_after,
                    upload,
                }) => {
                    assert!((retry_after.value() - 0.025).abs() < 1e-12);
                    assert!(!upload.is_empty());
                }
                other => panic!("expected Busy, got {other:?}"),
            }
            let m = gw.metrics();
            assert_eq!(m.accepted, 2, "{kind}");
            assert_eq!(m.rejected, 1, "{kind}");
            assert_eq!(m.queue_high_water, 2, "{kind}");
        }
    }

    #[test]
    fn malformed_uploads_yield_error_responses_not_crashes() {
        for kind in engines() {
            let gw = Gateway::with_runtime(
                CloudService::new(),
                GatewayConfig {
                    queue_capacity: 4,
                    workers: 1,
                    shed_policy: ShedPolicy::Block,
                },
                kind,
            );
            let reply = gw.submit(vec![0xFF, 0x00, 0x01]).expect("accepted");
            match reply.wait().expect("reply decodes") {
                Response::Error { reason } => assert!(reason.contains("malformed upload")),
                other => panic!("unexpected {other:?}"),
            }
            gw.shutdown();
        }
    }

    #[test]
    fn shutdown_resolves_queued_work_then_closes() {
        for kind in engines() {
            let gw = Gateway::with_runtime(
                CloudService::new(),
                GatewayConfig {
                    queue_capacity: 8,
                    workers: 1,
                    shed_policy: ShedPolicy::Block,
                },
                kind,
            );
            let replies: Vec<PendingReply> = (0..5)
                .map(|i| gw.submit(ping_upload(i)).expect("accepted"))
                .collect();
            let m = gw.shutdown();
            for reply in replies {
                assert_eq!(reply.wait().expect("served before close"), Response::Pong);
            }
            assert_eq!(m.completed, 5, "{kind}");
            assert_eq!(m.lost(), 0, "{kind}");
        }
    }

    /// A paced shed wait must cost ~wait ÷ [`TIME_COMPRESSION`] of real
    /// time — compressed, but never skipped. The idle gap between the two
    /// `pace` calls is the regression half: a pacer whose wheel goes stale
    /// while parked used to date post-idle deadlines in the past and turn
    /// retry-after waits into no-ops.
    #[test]
    fn pace_compresses_the_wait_without_skipping_it() {
        let gw = Gateway::new(CloudService::new(), GatewayConfig::clinic_default());
        // Prime the lazy pacer, then leave it idle long enough that the
        // gap dwarfs the next wait (30 ms real = 1.5 s virtual at 50×).
        gw.pace(Seconds::from_millis(50.0));
        thread::sleep(Duration::from_millis(30));
        let started = Instant::now();
        // 1 simulated second at 50× ≈ 20 ms real.
        gw.pace(Seconds::from_millis(1000.0));
        let real = started.elapsed();
        assert!(
            real >= Duration::from_millis(15),
            "paced wait was skipped: {real:?}"
        );
        assert!(
            real < Duration::from_millis(1000),
            "paced wait was not compressed: {real:?}"
        );
        gw.shutdown();
    }

    #[test]
    fn lane_sizing_follows_shards_and_workers() {
        assert_eq!(lane_count_for(8, 4), 4);
        assert_eq!(lane_count_for(8, 16), 8);
        assert_eq!(lane_count_for(1, 16), 1);
        assert_eq!(lane_count_for(8, 0), 1);
        assert_eq!(lane_count_for(0, 0), 1);
    }

    #[test]
    fn gateway_forms_one_lane_per_shard_up_to_workers() {
        for kind in engines() {
            let gw = Gateway::with_runtime(
                CloudService::with_shards(8),
                GatewayConfig {
                    queue_capacity: 16,
                    workers: 4,
                    shed_policy: ShedPolicy::Block,
                },
                kind,
            );
            assert_eq!(gw.lane_count(), 4, "{kind}");
            gw.shutdown();
        }
    }

    #[test]
    fn keyed_submissions_land_on_their_lane() {
        for kind in engines() {
            // Zero workers so the queued items stay put and the per-lane
            // depth is observable deterministically.
            let gw = Gateway::with_runtime(
                CloudService::with_shards(4),
                GatewayConfig {
                    queue_capacity: 16,
                    workers: 0,
                    shed_policy: ShedPolicy::Block,
                },
                kind,
            );
            // workers = 0 clamps to a single lane; every key maps to it.
            assert_eq!(gw.lane_count(), 1, "{kind}");
            let _a = gw.submit_keyed(ping_upload(1), 7).expect("accepted");
            let m = gw.metrics();
            assert_eq!(m.shard_routed, vec![1], "{kind}");
            drop(gw);
        }
    }

    #[test]
    fn per_lane_routing_counters_split_by_key() {
        let gw = Gateway::with_runtime(
            CloudService::with_shards(4),
            GatewayConfig {
                queue_capacity: 16,
                workers: 4,
                shed_policy: ShedPolicy::Block,
            },
            RuntimeKind::Async,
        );
        assert_eq!(gw.lane_count(), 4);
        let mut replies = Vec::new();
        for key in 0..8u64 {
            replies.push(gw.submit_keyed(ping_upload(key), key).expect("accepted"));
        }
        for reply in replies {
            assert_eq!(reply.wait().expect("reply"), Response::Pong);
        }
        let m = gw.shutdown();
        // key % 4 spreads 8 keys as exactly 2 per lane.
        assert_eq!(m.shard_routed, vec![2, 2, 2, 2]);
        // The default cloud service saw no enrollments, so no shard's
        // write lock was ever contended.
        assert_eq!(m.shard_contention.len(), 4);
        assert!(m.shard_contention.iter().all(|&c| c == 0));
    }

    #[test]
    fn unkeyed_submit_routes_by_peeked_session_id() {
        let gw = Gateway::with_runtime(
            CloudService::with_shards(2),
            GatewayConfig {
                queue_capacity: 8,
                workers: 0, // freeze the queues
                shed_policy: ShedPolicy::Block,
            },
            RuntimeKind::Threads,
        );
        // workers = 0 → one lane regardless; this test just proves the
        // peek path accepts both well-formed and malformed uploads.
        let _a = gw.submit(ping_upload(3)).expect("accepted");
        let _b = gw
            .submit(vec![0xFF, 0x00])
            .expect("malformed routes to lane 0");
        assert_eq!(gw.metrics().shard_routed, vec![2]);
        drop(gw);
    }

    #[test]
    fn drain_serves_queued_work_then_refuses_new_sessions() {
        for kind in engines() {
            let gw = Gateway::with_runtime(
                CloudService::new(),
                GatewayConfig {
                    queue_capacity: 8,
                    workers: 2,
                    shed_policy: ShedPolicy::Block,
                },
                kind,
            );
            let replies: Vec<PendingReply> = (0..4)
                .map(|i| gw.submit(ping_upload(i)).expect("accepted"))
                .collect();
            gw.drain();
            assert!(gw.is_drained(), "{kind}");
            match gw.submit(ping_upload(99)) {
                Err(SubmitError::Closed { upload }) => assert!(!upload.is_empty()),
                other => panic!("expected Closed after drain, got {other:?}"),
            }
            // Everything admitted before the drain was still served.
            for reply in replies {
                assert_eq!(reply.wait().expect("served"), Response::Pong, "{kind}");
            }
            let m = gw.metrics();
            assert!(m.drained, "{kind}");
            assert_eq!(m.accepted, 4, "{kind}");
            assert_eq!(m.completed, 4, "{kind}");
            let m = gw.shutdown();
            assert!(m.drained, "flag survives shutdown: {kind}");
            assert_eq!(m.rejected, 1, "{kind}");
        }
    }

    #[test]
    fn drain_forces_a_final_wal_flush() {
        use medsen_cloud::{BeadSignature, FlushPolicy};
        use medsen_microfluidics::ParticleKind;

        let dir = std::env::temp_dir().join(format!(
            "medsen-gateway-drain-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // A batch threshold far above the workload: only the drain's
        // explicit flush can account for the fsync observed below.
        let service =
            CloudService::with_storage(&dir, 2, FlushPolicy::EveryN(1_000)).expect("opens");
        let gw = Gateway::with_runtime(
            service,
            GatewayConfig {
                queue_capacity: 8,
                workers: 2,
                shed_policy: ShedPolicy::Block,
            },
            RuntimeKind::Threads,
        );
        let json = medsen_phone::to_json(&Request::Enroll {
            identifier: "alice".into(),
            signature: BeadSignature::from_counts(&[(ParticleKind::Bead358, 40)]),
        })
        .expect("encodes");
        let reply = gw.submit(wire::encode_upload(1, &json)).expect("accepted");
        assert_eq!(reply.wait().expect("served"), Response::Enrolled);
        gw.drain();
        let m = gw.metrics();
        assert!(m.drained);
        assert_eq!(m.wal_appends, 1);
        assert!(
            m.wal_fsyncs >= 1,
            "drain must force the group-commit buffer out: {m:?}"
        );
        gw.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spans_chain_admission_queue_service_for_each_request() {
        for kind in engines() {
            let gw = Gateway::with_telemetry(
                CloudService::new(),
                GatewayConfig {
                    queue_capacity: 8,
                    workers: 2,
                    shed_policy: ShedPolicy::Block,
                },
                kind,
                TelemetryConfig::default(),
            );
            let replies: Vec<PendingReply> = (0..4)
                .map(|i| gw.submit(ping_upload(i)).expect("accepted"))
                .collect();
            for reply in replies {
                assert_eq!(reply.wait().expect("reply"), Response::Pong);
            }
            let recorder = gw.span_recorder().expect("spans on");
            let spans = recorder.snapshot();
            let mut traces: Vec<TraceId> = spans.iter().map(|s| s.trace).collect();
            traces.sort_unstable();
            traces.dedup();
            assert_eq!(traces.len(), 4, "one trace per request: {kind}");
            for trace in traces {
                let chain = recorder.spans_for(trace);
                let stages: Vec<Stage> = chain.iter().map(|s| s.stage).collect();
                for want in [Stage::Admission, Stage::Queue, Stage::Service] {
                    assert!(stages.contains(&want), "missing {want:?}: {kind}");
                }
                // Pipeline order: each stage starts no earlier than the
                // previous one (admission start ≤ queue start ≤ service).
                let mut ordered = chain.clone();
                ordered.sort_by_key(|s| s.stage);
                for pair in ordered.windows(2) {
                    assert!(
                        pair[0].start_ns <= pair[1].start_ns,
                        "stage starts regress: {pair:?} ({kind})"
                    );
                }
            }
            gw.shutdown();
        }
    }

    #[test]
    fn exemplars_retain_the_slowest_requests_with_breakdowns() {
        let gw = Gateway::with_telemetry(
            CloudService::new(),
            GatewayConfig {
                queue_capacity: 8,
                workers: 1,
                shed_policy: ShedPolicy::Block,
            },
            RuntimeKind::Threads,
            TelemetryConfig {
                exemplars: 2,
                ..TelemetryConfig::default()
            },
        );
        let replies: Vec<PendingReply> = (0..6)
            .map(|i| gw.submit(ping_upload(i)).expect("accepted"))
            .collect();
        for reply in replies {
            reply.wait().expect("reply");
        }
        let slow = gw.slow_traces();
        assert!(!slow.is_empty() && slow.len() <= 2);
        assert!(slow[0].total_ns > 0);
        assert!(
            slow.windows(2).all(|w| w[0].total_ns >= w[1].total_ns),
            "worst first"
        );
        assert!(
            slow[0].stages.iter().any(|s| s.stage == Stage::Service),
            "breakdown joins the ring"
        );
        gw.shutdown();
    }

    #[test]
    fn telemetry_text_covers_every_legacy_counter_and_parses() {
        let gw = Gateway::new(CloudService::new(), GatewayConfig::clinic_default());
        let reply = gw.submit(ping_upload(1)).expect("accepted");
        reply.wait().expect("reply");
        let text = gw.telemetry_text();
        medsen_telemetry::parse_text_exposition(&text).expect("grammar-clean");
        for name in [
            "gateway.accepted",
            "gateway.rejected",
            "gateway.retried",
            "gateway.completed",
            "gateway.failed",
            "gateway.queue_high_water",
            "gateway.lane.0.routed",
            "gateway.queue_wait.count",
            "gateway.service_time.p99_us",
            "gateway.uplink_time.count",
            "cloud.shard.0.contention",
            "cache.hits",
            "cache.misses",
            "gateway.drained",
            "telemetry.spans_recorded",
        ] {
            assert!(
                text.lines().any(|l| l.starts_with(&format!("{name} "))),
                "missing {name} in:\n{text}"
            );
        }
        gw.shutdown();
    }

    #[test]
    fn disabled_telemetry_keeps_counters_but_drops_spans() {
        let gw = Gateway::with_telemetry(
            CloudService::new(),
            GatewayConfig::clinic_default(),
            RuntimeKind::Async,
            TelemetryConfig::disabled(),
        );
        let reply = gw.submit(ping_upload(1)).expect("accepted");
        assert_eq!(reply.wait().expect("reply"), Response::Pong);
        assert!(gw.span_recorder().is_none());
        assert!(gw.spans_json().is_empty());
        assert!(gw.slow_traces().is_empty());
        let text = gw.telemetry_text();
        assert!(text.contains("gateway.accepted 1"));
        assert!(!text.contains("telemetry.spans_recorded"));
        let m = gw.shutdown();
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn pause_holds_admitted_work_without_rejecting_new_sessions() {
        for kind in engines() {
            let gw = Gateway::with_runtime(
                CloudService::new(),
                GatewayConfig {
                    queue_capacity: 8,
                    workers: 2,
                    shed_policy: ShedPolicy::Block,
                },
                kind,
            );
            gw.pause();
            assert!(gw.is_paused(), "{kind}");
            // New sessions are still admitted — pause is not drain.
            let replies: Vec<PendingReply> = (0..4)
                .map(|i| gw.submit(ping_upload(i)).expect("admitted while paused"))
                .collect();
            // Give the pool a moment: nothing may complete while paused.
            thread::sleep(Duration::from_millis(20));
            let m = gw.metrics();
            assert_eq!(m.accepted, 4, "{kind}");
            assert_eq!(m.completed, 0, "paused workers must hold work: {kind}");
            assert!(!m.drained, "{kind}");
            gw.resume();
            assert!(!gw.is_paused(), "{kind}");
            for reply in replies {
                assert_eq!(reply.wait().expect("served after resume"), Response::Pong);
            }
            assert_eq!(gw.metrics().completed, 4, "{kind}");
            gw.shutdown();
        }
    }

    #[test]
    fn drain_implies_resume_so_held_work_still_finishes() {
        let gw = Gateway::with_runtime(
            CloudService::new(),
            GatewayConfig {
                queue_capacity: 8,
                workers: 2,
                shed_policy: ShedPolicy::Block,
            },
            RuntimeKind::Threads,
        );
        gw.pause();
        let reply = gw.submit(ping_upload(1)).expect("admitted");
        gw.drain(); // must not deadlock on the held item
        assert!(!gw.is_paused());
        assert_eq!(reply.wait().expect("served"), Response::Pong);
        gw.shutdown();
    }

    #[test]
    fn paused_gauge_lands_in_the_exposition() {
        let gw = Gateway::new(CloudService::new(), GatewayConfig::clinic_default());
        assert!(gw.telemetry_text().contains("gateway.paused 0"));
        gw.pause();
        let text = gw.telemetry_text();
        medsen_telemetry::parse_text_exposition(&text).expect("grammar-clean");
        assert!(text.contains("gateway.paused 1"));
        gw.shutdown();
    }

    fn replica_pair(tag: &str) -> (Arc<medsen_cloud::ReplicatedCloud>, [std::path::PathBuf; 2]) {
        use medsen_cloud::{FlushPolicy, StorageConfig};
        let dirs = ["p", "s"].map(|side| {
            let dir = std::env::temp_dir().join(format!(
                "medsen-gateway-replica-{tag}-{side}-{}-{:?}",
                std::process::id(),
                thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        });
        let [primary, standby] = dirs.each_ref().map(|dir| {
            CloudService::with_storage_config(
                StorageConfig::new(dir).flush(FlushPolicy::EveryWrite),
                2,
            )
            .expect("open")
        });
        (primary.with_replication(standby).expect("pair"), dirs)
    }

    #[test]
    fn replicated_gateway_fails_over_to_the_promoted_standby() {
        let (pair, dirs) = replica_pair("failover");
        let gw = Gateway::with_replicas(
            Arc::clone(&pair),
            GatewayConfig {
                queue_capacity: 8,
                workers: 2,
                shed_policy: ShedPolicy::Block,
            },
            RuntimeKind::Threads,
            TelemetryConfig::default(),
        );
        let json = medsen_phone::to_json(&Request::Enroll {
            identifier: "alice".into(),
            signature: medsen_cloud::BeadSignature::from_counts(&[(
                medsen_microfluidics::ParticleKind::Bead358,
                40,
            )]),
        })
        .expect("encodes");
        let reply = gw.submit(wire::encode_upload(1, &json)).expect("accepted");
        assert_eq!(reply.wait().expect("served"), Response::Enrolled);

        pair.kill_primary();
        // The next dispatch promotes and routes to the standby, which
        // already holds the acknowledged enrollment.
        let reply = gw.submit(ping_upload(2)).expect("accepted");
        assert_eq!(reply.wait().expect("served"), Response::Pong);
        assert!(pair.is_promoted());
        assert!(Arc::ptr_eq(pair.standby(), &pair.serving()));
        assert_eq!(
            gw.service()
                .shard_stats()
                .iter()
                .map(|s| s.enrolled)
                .sum::<usize>(),
            1,
            "gateway accessors follow the promotion"
        );

        let text = gw.telemetry_text();
        medsen_telemetry::parse_text_exposition(&text).expect("grammar-clean");
        for name in [
            "replica.shipped_frames",
            "replica.shipped_bytes",
            "replica.acked_bytes",
            "replica.lag_bytes",
            "replica.promotions",
            "replica.stale_rejected",
            "replica.epoch",
        ] {
            assert!(
                text.lines().any(|l| l.starts_with(&format!("{name} "))),
                "missing {name} in:\n{text}"
            );
        }
        assert!(text.contains("replica.epoch 2"));
        assert!(text.contains("replica.promotions 1"));
        gw.shutdown();
        for dir in dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// The async engine multiplexes many more worker tasks than executor
    /// threads without losing work.
    #[test]
    fn async_engine_runs_more_tasks_than_threads() {
        let gw = Gateway::with_runtime(
            CloudService::new(),
            GatewayConfig {
                queue_capacity: 64,
                workers: 32, // tasks — far more than MAX_EXECUTOR_THREADS
                shed_policy: ShedPolicy::Block,
            },
            RuntimeKind::Async,
        );
        let replies: Vec<PendingReply> = (0..64)
            .map(|i| gw.submit(ping_upload(i)).expect("accepted"))
            .collect();
        for reply in replies {
            assert_eq!(reply.wait().expect("reply"), Response::Pong);
        }
        let m = gw.shutdown();
        assert_eq!(m.completed, 64);
        assert_eq!(m.lost(), 0);
    }

    /// One noisy session exhausts its bucket; a second session on the
    /// same gateway is untouched — the satellite fairness guarantee.
    #[test]
    fn rate_limit_stops_one_session_without_starving_another() {
        for kind in engines() {
            let gw = Gateway::with_runtime(
                CloudService::new(),
                GatewayConfig {
                    queue_capacity: 64,
                    workers: 2,
                    shed_policy: ShedPolicy::Block,
                },
                kind,
            );
            gw.set_rate_limit(RateLimitConfig::per_session(3.0, 0.0));
            // Session 1 burns its burst, then gets refused.
            let mut refused = 0;
            let mut replies = Vec::new();
            for _ in 0..5 {
                match gw.submit(ping_upload(1)) {
                    Ok(r) => replies.push(r),
                    Err(SubmitError::RateLimited { retry_after, .. }) => {
                        refused += 1;
                        assert!(retry_after.value() > 0.0);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(refused, 2, "{kind}: burst of 3 admits exactly 3 of 5");
            // Session 2 submits the same count and is never refused.
            for _ in 0..3 {
                replies.push(gw.submit(ping_upload(2)).expect("session 2 unaffected"));
            }
            for r in replies {
                assert_eq!(r.wait().expect("reply"), Response::Pong);
            }
            let m = gw.metrics();
            assert_eq!(m.rate_limited, 2, "{kind}");
            assert_eq!(m.accepted, 6, "{kind}");
            assert!(gw
                .telemetry_text()
                .contains(&format!("gateway.rate_limited {refused}")));
            gw.shutdown();
        }
    }

    /// Fountain symbols pushed one at a time reassemble the request and
    /// dispatch it through the normal pipeline on both engines.
    #[test]
    fn fountain_symbols_reassemble_and_dispatch() {
        use medsen_phone::OneWayUploader;
        for kind in engines() {
            let gw = Gateway::with_runtime(
                CloudService::new(),
                GatewayConfig {
                    queue_capacity: 8,
                    workers: 2,
                    shed_policy: ShedPolicy::Block,
                },
                kind,
            );
            let session = 41;
            let upload = OneWayUploader::default()
                .encode(session, &ping_upload(session))
                .expect("encodes");
            let mut reply = None;
            // Feed every third symbol — any sufficient subset decodes.
            for wire in upload.frames.iter().step_by(3) {
                match gw.ingest_symbol(wire).expect("symbol accepted") {
                    SymbolIngest::Complete {
                        session_id,
                        reply: r,
                        stats,
                    } => {
                        assert_eq!(session_id, session);
                        assert!(stats.overhead_ratio() >= 1.0);
                        reply = Some(r);
                        break;
                    }
                    SymbolIngest::Progress { session_id, .. }
                    | SymbolIngest::Redundant { session_id } => assert_eq!(session_id, session),
                    other => panic!("unexpected {other:?}"),
                }
            }
            let reply = reply.expect("stream completed within budget");
            assert_eq!(reply.wait().expect("reply"), Response::Pong);
            let text = gw.telemetry_text();
            for name in [
                "fountain.symbols_received",
                "fountain.sessions_completed 1",
                "fountain.overhead_permille 1",
            ] {
                assert!(text.contains(name), "{kind}: missing {name} in:\n{text}");
            }
            // The decode span joins the request's spans in the ring.
            let spans = gw.spans_json();
            assert!(
                spans.contains("fountain_decode"),
                "{kind}: no decode span in:\n{spans}"
            );
            let m = gw.shutdown();
            assert_eq!(m.accepted, 1, "{kind}");
            assert_eq!(m.completed, 1, "{kind}");
        }
    }

    /// Stragglers after completion are redundant, never a second dispatch.
    #[test]
    fn straggler_symbols_after_completion_do_not_redispatch() {
        let gw = Gateway::new(
            CloudService::new(),
            GatewayConfig {
                queue_capacity: 8,
                workers: 1,
                shed_policy: ShedPolicy::Block,
            },
        );
        let upload = medsen_phone::OneWayUploader::default()
            .encode(11, &ping_upload(11))
            .expect("encodes");
        let mut completed = false;
        for wire in &upload.frames {
            match gw.ingest_symbol(wire).expect("accepted") {
                SymbolIngest::Complete { reply, .. } => {
                    assert!(!completed, "second Complete for one stream");
                    completed = true;
                    assert_eq!(reply.wait().expect("reply"), Response::Pong);
                }
                SymbolIngest::AlreadyComplete { .. } => assert!(completed),
                _ => {}
            }
        }
        assert!(completed);
        let m = gw.shutdown();
        assert_eq!(m.accepted, 1, "stragglers must not re-enqueue");
    }

    /// Frame-level garbage is typed and counted, and a drained gateway
    /// refuses symbols like it refuses submissions.
    #[test]
    fn symbol_route_rejects_garbage_and_respects_drain() {
        let gw = Gateway::new(
            CloudService::new(),
            GatewayConfig {
                queue_capacity: 4,
                workers: 1,
                shed_policy: ShedPolicy::Block,
            },
        );
        match gw.ingest_symbol(&[0xAB; 7]) {
            Err(SymbolSubmitError::Frame(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(gw.telemetry_text().contains("fountain.symbols_rejected 1"));
        let upload = medsen_phone::OneWayUploader::default()
            .encode(12, &ping_upload(12))
            .expect("encodes");
        gw.drain();
        match gw.ingest_symbol(&upload.frames[0]) {
            Err(SymbolSubmitError::Closed) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
