//! Peeling (belief-propagation) decoder.
//!
//! Each arriving symbol has its already-recovered neighbors XORed out
//! immediately; if exactly one unknown neighbor remains the symbol
//! *releases* it, and the release cascades through every buffered symbol
//! that referenced the newly known source index. Buffered symbols keep
//! only their unresolved neighbor lists, so memory is bounded by the
//! number of not-yet-useful symbols — a figure the gateway caps per
//! session.

use std::collections::HashMap;

use crate::frame::SymbolFrame;
use crate::soliton::RobustSoliton;

/// Why the decoder refused a symbol. None of these are fatal to the
/// session — on a one-way link the only recourse is to wait for more
/// symbols, so every error leaves the decoder usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolRejected {
    /// Payload length differs from the stream's symbol size.
    SizeMismatch { expected: usize, actual: usize },
    /// Frame parameters disagree with the stream this decoder was
    /// bootstrapped from (a cross-wired or forged stream).
    StreamMismatch,
}

impl std::fmt::Display for SymbolRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SizeMismatch { expected, actual } => {
                write!(f, "symbol carries {actual} bytes, stream uses {expected}")
            }
            Self::StreamMismatch => write!(f, "symbol parameters do not match this stream"),
        }
    }
}

impl std::error::Error for SymbolRejected {}

/// Counters describing a decode in progress (or finished).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecoderStats {
    /// Source symbols in the block (`k`).
    pub source_symbols: usize,
    /// Symbols accepted, including ones that turned out redundant.
    pub symbols_received: u64,
    /// Symbols that contributed nothing new: duplicates, symbols whose
    /// neighbors were all already recovered, or arrivals after
    /// completion.
    pub symbols_redundant: u64,
    /// Individual peel steps (each one source symbol released).
    pub peel_iterations: u64,
    /// Symbols received at the moment the block completed; 0 while
    /// decoding is still in progress.
    pub symbols_to_complete: u64,
}

impl DecoderStats {
    /// Decode overhead: symbols needed to complete divided by `k`.
    /// 1.0 would be a perfect (non-rateless) transfer; LT codes land a
    /// little above it. 0.0 until the block completes.
    pub fn overhead_ratio(&self) -> f64 {
        if self.source_symbols == 0 || self.symbols_to_complete == 0 {
            0.0
        } else {
            self.symbols_to_complete as f64 / self.source_symbols as f64
        }
    }
}

/// A coded symbol still waiting for more of its neighbors.
#[derive(Debug, Clone)]
struct Held {
    data: Vec<u8>,
    /// Unresolved source indices; shrinks as peeling progresses.
    remaining: Vec<u32>,
    /// Consumed symbols keep their slot (stable ids) but drop their data.
    consumed: bool,
}

/// A peeling LT decoder for one source block.
#[derive(Debug, Clone)]
pub struct Decoder {
    block_len: usize,
    symbol_size: usize,
    seed: u64,
    soliton: RobustSoliton,
    /// Recovered source symbols, `k * symbol_size` bytes.
    slab: Vec<u8>,
    known: Vec<bool>,
    known_count: usize,
    held: Vec<Held>,
    buffered: usize,
    /// source index -> held-symbol slots still referencing it.
    by_source: Vec<Vec<u32>>,
    /// symbol id -> seen (duplicates carry no new information).
    seen: HashMap<u64, ()>,
    stats: DecoderStats,
}

impl Decoder {
    /// A decoder for a block of `block_len` bytes in `symbol_size`-byte
    /// symbols under stream seed `seed`. Usually bootstrapped from the
    /// first surviving frame via [`Decoder::for_frame`].
    pub fn new(block_len: usize, symbol_size: usize, seed: u64) -> Result<Self, crate::CodecError> {
        if symbol_size == 0 {
            return Err(crate::CodecError::ZeroSymbolSize);
        }
        if block_len > crate::MAX_BLOCK_BYTES {
            return Err(crate::CodecError::BlockTooLarge { len: block_len });
        }
        let k = crate::source_symbol_count(block_len, symbol_size);
        Ok(Self {
            block_len,
            symbol_size,
            seed,
            soliton: RobustSoliton::new(k),
            slab: vec![0u8; k * symbol_size],
            known: vec![false; k],
            known_count: 0,
            held: Vec::new(),
            buffered: 0,
            by_source: vec![Vec::new(); k],
            seen: HashMap::new(),
            stats: DecoderStats {
                source_symbols: k,
                ..DecoderStats::default()
            },
        })
    }

    /// A decoder bootstrapped from the stream parameters of `frame`.
    /// The frame itself is *not* consumed — push it afterwards.
    pub fn for_frame(frame: &SymbolFrame) -> Result<Self, crate::CodecError> {
        Self::new(
            frame.block_len as usize,
            frame.symbol_size as usize,
            frame.seed,
        )
    }

    /// Number of source symbols (`k`).
    pub fn source_symbols(&self) -> usize {
        self.soliton.k()
    }

    /// Source symbols recovered so far.
    pub fn recovered_symbols(&self) -> usize {
        self.known_count
    }

    /// Whether the whole block has been recovered.
    pub fn is_complete(&self) -> bool {
        self.known_count == self.soliton.k()
    }

    /// Coded symbols currently buffered awaiting more neighbors.
    pub fn buffered_symbols(&self) -> usize {
        self.buffered
    }

    /// Approximate heap bytes held by buffered symbol payloads — the
    /// figure the gateway bounds per session.
    pub fn buffered_bytes(&self) -> usize {
        self.buffered * self.symbol_size
    }

    /// Counters for the decode so far.
    pub fn stats(&self) -> DecoderStats {
        self.stats
    }

    /// Whether `frame` belongs to the stream this decoder was built for.
    pub fn matches_stream(&self, frame: &SymbolFrame) -> bool {
        frame.seed == self.seed
            && frame.block_len as usize == self.block_len
            && frame.symbol_size as usize == self.symbol_size
    }

    /// Feed one frame. Returns `Ok(true)` once the block is complete
    /// (including for redundant symbols arriving afterwards).
    pub fn push_frame(&mut self, frame: &SymbolFrame) -> Result<bool, SymbolRejected> {
        if !self.matches_stream(frame) {
            return Err(SymbolRejected::StreamMismatch);
        }
        self.push(frame.symbol_id, &frame.data)
    }

    /// Feed the XOR payload of symbol `symbol_id`.
    pub fn push(&mut self, symbol_id: u64, data: &[u8]) -> Result<bool, SymbolRejected> {
        if data.len() != self.symbol_size {
            return Err(SymbolRejected::SizeMismatch {
                expected: self.symbol_size,
                actual: data.len(),
            });
        }
        self.stats.symbols_received += 1;
        if self.is_complete() || self.seen.insert(symbol_id, ()).is_some() {
            self.stats.symbols_redundant += 1;
            return Ok(self.is_complete());
        }

        let mut data = data.to_vec();
        let mut remaining = Vec::new();
        for neighbor in self.soliton.neighbors(self.seed, symbol_id) {
            if self.known[neighbor as usize] {
                Self::xor_chunk(&mut data, &self.slab, neighbor as usize, self.symbol_size);
            } else {
                remaining.push(neighbor);
            }
        }

        match remaining.len() {
            0 => {
                // Everything it covered is already known.
                self.stats.symbols_redundant += 1;
            }
            1 => {
                let release = remaining[0];
                self.recover(release, &data);
                self.peel_from(release);
            }
            _ => {
                let slot = self.held.len() as u32;
                for &n in &remaining {
                    self.by_source[n as usize].push(slot);
                }
                self.held.push(Held {
                    data,
                    remaining,
                    consumed: false,
                });
                self.buffered += 1;
            }
        }

        if self.is_complete() && self.stats.symbols_to_complete == 0 {
            self.stats.symbols_to_complete = self.stats.symbols_received;
        }
        Ok(self.is_complete())
    }

    /// The recovered block, or `None` while incomplete.
    pub fn block(&self) -> Option<Vec<u8>> {
        self.is_complete()
            .then(|| self.slab[..self.block_len].to_vec())
    }

    fn xor_chunk(data: &mut [u8], slab: &[u8], index: usize, size: usize) {
        let chunk = &slab[index * size..(index + 1) * size];
        for (d, s) in data.iter_mut().zip(chunk) {
            *d ^= s;
        }
    }

    /// Record source symbol `index` as known with payload `data`.
    fn recover(&mut self, index: u32, data: &[u8]) {
        debug_assert!(!self.known[index as usize]);
        let start = index as usize * self.symbol_size;
        self.slab[start..start + self.symbol_size].copy_from_slice(data);
        self.known[index as usize] = true;
        self.known_count += 1;
        self.stats.peel_iterations += 1;
    }

    /// Cascade a newly known source symbol through the held symbols.
    fn peel_from(&mut self, first: u32) {
        let mut queue = vec![first];
        while let Some(source) = queue.pop() {
            let watchers = std::mem::take(&mut self.by_source[source as usize]);
            for slot in watchers {
                let held = &mut self.held[slot as usize];
                if held.consumed {
                    continue;
                }
                // XOR the now-known source chunk out of the held symbol
                // and drop the reference.
                Self::xor_chunk(
                    &mut held.data,
                    &self.slab,
                    source as usize,
                    self.symbol_size,
                );
                held.remaining.retain(|&n| n != source);
                match held.remaining.len() {
                    1 => {
                        let release = held.remaining[0];
                        held.consumed = true;
                        let data = std::mem::take(&mut held.data);
                        self.buffered -= 1;
                        if !self.known[release as usize] {
                            self.recover(release, &data);
                            queue.push(release);
                        }
                    }
                    0 => {
                        // Fully explained by recovered symbols; free it.
                        held.consumed = true;
                        held.data = Vec::new();
                        self.buffered -= 1;
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use crate::prng::XorShift64;

    fn round_trip(block: &[u8], symbol_size: usize, seed: u64) -> DecoderStats {
        let mut enc = Encoder::new(1, seed, block, symbol_size).expect("encoder");
        let mut dec = Decoder::new(block.len(), symbol_size, seed).expect("decoder");
        for id in 0..10_000u64 {
            if dec.push(id, &enc.symbol(id).data).expect("push") {
                break;
            }
        }
        assert!(dec.is_complete(), "decoder starved after 10k symbols");
        assert_eq!(dec.block().expect("block"), block);
        dec.stats()
    }

    #[test]
    fn round_trips_across_block_shapes() {
        round_trip(b"", 8, 1);
        round_trip(b"x", 8, 2);
        round_trip(b"exactly sixteen!", 16, 3);
        round_trip(b"exactly sixteen!", 4, 4);
        let big: Vec<u8> = (0..10_000u32).map(|i| (i * 7 + 13) as u8).collect();
        round_trip(&big, 64, 5);
    }

    #[test]
    fn overhead_is_reasonable_for_a_midsize_block() {
        let block: Vec<u8> = (0..4096u32).map(|i| (i * 31) as u8).collect();
        let stats = round_trip(&block, 64, 7); // k = 64
        assert_eq!(stats.source_symbols, 64);
        let overhead = stats.overhead_ratio();
        assert!(overhead >= 1.0);
        assert!(overhead < 3.0, "overhead {overhead} is pathological");
        assert_eq!(stats.peel_iterations, 64);
    }

    #[test]
    fn decodes_from_a_lossy_shuffled_subset() {
        let block: Vec<u8> = (0..2000u32).map(|i| (i ^ 0xA5) as u8).collect();
        let symbol_size = 32; // k = 63
        let mut enc = Encoder::new(1, 42, &block, symbol_size).expect("encoder");
        // Emit 4k, drop 50% by parity of a seeded draw, deliver out of order.
        let mut rng = XorShift64::new(99);
        let mut delivered: Vec<(u64, Vec<u8>)> = (0..(4 * 63) as u64)
            .filter(|_| rng.next_f64() >= 0.5)
            .map(|id| (id, enc.symbol(id).data))
            .collect();
        // Seeded Fisher-Yates shuffle: arrival order must not matter.
        for i in (1..delivered.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            delivered.swap(i, j);
        }
        let mut dec = Decoder::new(block.len(), symbol_size, 42).expect("decoder");
        for (id, data) in delivered {
            if dec.push(id, &data).expect("push") {
                break;
            }
        }
        assert!(dec.is_complete(), "subset should have sufficed");
        assert_eq!(dec.block().expect("block"), block);
    }

    #[test]
    fn duplicates_and_post_completion_symbols_count_redundant() {
        let block = b"redundancy accounting";
        let mut enc = Encoder::new(1, 6, block, 4).expect("encoder");
        let mut dec = Decoder::new(block.len(), 4, 6).expect("decoder");
        let first = enc.symbol(0).data;
        dec.push(0, &first).expect("push");
        dec.push(0, &first).expect("duplicate push");
        assert!(dec.stats().symbols_redundant >= 1);
        let mut id = 1;
        while !dec.push(id, &enc.symbol(id).data).expect("push") {
            id += 1;
        }
        let at_completion = dec.stats();
        dec.push(id + 1, &enc.symbol(id + 1).data).expect("late");
        let after = dec.stats();
        assert_eq!(after.symbols_redundant, at_completion.symbols_redundant + 1);
        assert_eq!(after.symbols_to_complete, at_completion.symbols_to_complete);
        assert_eq!(dec.block().expect("block"), block);
    }

    #[test]
    fn size_and_stream_mismatches_are_typed() {
        let mut dec = Decoder::new(100, 10, 5).expect("decoder");
        assert_eq!(
            dec.push(0, &[0u8; 9]).unwrap_err(),
            SymbolRejected::SizeMismatch {
                expected: 10,
                actual: 9
            }
        );
        let frame = SymbolFrame {
            session_id: 1,
            symbol_id: 0,
            seed: 6, // wrong stream seed
            block_len: 100,
            symbol_size: 10,
            data: vec![0u8; 10],
        };
        assert_eq!(
            dec.push_frame(&frame).unwrap_err(),
            SymbolRejected::StreamMismatch
        );
    }

    #[test]
    fn garbage_symbols_never_panic_and_terminate() {
        // Valid-shape but adversarial payloads under wrong ids: peeling
        // must terminate and the decoder must stay usable. (Garbage data
        // under a *correct* id is indistinguishable from data to an LT
        // code — integrity is the frame CRC's job, which is why corrupt
        // frames are dropped before reaching the decoder.)
        let mut dec = Decoder::new(320, 32, 8).expect("decoder");
        let mut rng = XorShift64::new(1234);
        for id in 0..500u64 {
            let data: Vec<u8> = (0..32).map(|_| rng.next_u64() as u8).collect();
            let _ = dec.push(id, &data).expect("push");
        }
        assert!(dec.stats().symbols_received == 500);
        assert!(dec.buffered_bytes() <= 500 * 32);
    }

    #[test]
    fn buffered_memory_shrinks_as_peeling_consumes_symbols() {
        let block: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
        let mut enc = Encoder::new(1, 77, &block, 32).expect("encoder");
        let mut dec = Decoder::new(block.len(), 32, 77).expect("decoder");
        let mut peak = 0usize;
        for id in 0..10_000u64 {
            if dec.push(id, &enc.symbol(id).data).expect("push") {
                break;
            }
            peak = peak.max(dec.buffered_symbols());
        }
        assert!(dec.is_complete());
        assert_eq!(dec.buffered_symbols(), 0, "completion must free the buffer");
        assert!(peak > 0, "a nontrivial decode buffers something");
    }
}
