//! Rateless symbol encoder: XOR loops over a flat byte slab.
//!
//! The source block is padded up to a whole number of symbols and held
//! as one contiguous slab; emitting symbol `i` is a recipe lookup plus a
//! `degree × symbol_size` XOR. Because the stream is rateless the
//! encoder never tracks what was received — callers just keep asking for
//! the next symbol id until their budget runs out.

use crate::frame::{symbol_frame_bytes, SymbolFrame};
use crate::soliton::RobustSoliton;

/// Hard cap on an encodable block, mirroring the gateway's upload cap.
pub const MAX_BLOCK_BYTES: usize = 64 << 20;

/// Why a block could not be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// `symbol_size` was zero.
    ZeroSymbolSize,
    /// The block exceeds [`MAX_BLOCK_BYTES`].
    BlockTooLarge { len: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroSymbolSize => write!(f, "symbol size must be nonzero"),
            Self::BlockTooLarge { len } => {
                write!(f, "block of {len} bytes exceeds {MAX_BLOCK_BYTES}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Number of source symbols for a block of `block_len` bytes cut into
/// `symbol_size`-byte symbols. An empty block still occupies one (all
/// padding) symbol so the stream is never empty.
pub fn source_symbol_count(block_len: usize, symbol_size: usize) -> usize {
    debug_assert!(symbol_size > 0);
    block_len.div_ceil(symbol_size).max(1)
}

/// Counters describing an encoder's output so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncoderStats {
    /// Source symbols in the block (`k`).
    pub source_symbols: usize,
    /// Source block length in bytes, before padding.
    pub block_len: usize,
    /// Coded symbols emitted so far.
    pub symbols_emitted: u64,
    /// Total wire bytes emitted (frames, including overhead).
    pub bytes_emitted: u64,
}

impl EncoderStats {
    /// Emitted symbols per source symbol — the stream's expansion factor.
    pub fn expansion_ratio(&self) -> f64 {
        if self.source_symbols == 0 {
            0.0
        } else {
            self.symbols_emitted as f64 / self.source_symbols as f64
        }
    }
}

/// An LT encoder over one source block.
#[derive(Debug, Clone)]
pub struct Encoder {
    session_id: u64,
    seed: u64,
    slab: Vec<u8>,
    block_len: usize,
    symbol_size: usize,
    soliton: RobustSoliton,
    stats: EncoderStats,
}

impl Encoder {
    /// An encoder for `block`, emitting `symbol_size`-byte symbols for
    /// upload session `session_id` with stream seed `seed`.
    pub fn new(
        session_id: u64,
        seed: u64,
        block: &[u8],
        symbol_size: usize,
    ) -> Result<Self, CodecError> {
        if symbol_size == 0 {
            return Err(CodecError::ZeroSymbolSize);
        }
        if block.len() > MAX_BLOCK_BYTES {
            return Err(CodecError::BlockTooLarge { len: block.len() });
        }
        let k = source_symbol_count(block.len(), symbol_size);
        let mut slab = vec![0u8; k * symbol_size];
        slab[..block.len()].copy_from_slice(block);
        Ok(Self {
            session_id,
            seed,
            slab,
            block_len: block.len(),
            symbol_size,
            soliton: RobustSoliton::new(k),
            stats: EncoderStats {
                source_symbols: k,
                block_len: block.len(),
                ..EncoderStats::default()
            },
        })
    }

    /// Number of source symbols (`k`).
    pub fn source_symbols(&self) -> usize {
        self.soliton.k()
    }

    /// Source block length in bytes.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// The XOR payload of symbol `symbol_id` (no framing).
    pub fn symbol_data(&self, symbol_id: u64) -> Vec<u8> {
        let mut data = vec![0u8; self.symbol_size];
        for neighbor in self.soliton.neighbors(self.seed, symbol_id) {
            let start = neighbor as usize * self.symbol_size;
            let chunk = &self.slab[start..start + self.symbol_size];
            for (d, s) in data.iter_mut().zip(chunk) {
                *d ^= s;
            }
        }
        data
    }

    /// Symbol `symbol_id` as a self-describing [`SymbolFrame`].
    pub fn symbol(&mut self, symbol_id: u64) -> SymbolFrame {
        let frame = SymbolFrame {
            session_id: self.session_id,
            symbol_id,
            seed: self.seed,
            block_len: self.block_len as u32,
            symbol_size: self.symbol_size as u32,
            data: self.symbol_data(symbol_id),
        };
        self.stats.symbols_emitted += 1;
        self.stats.bytes_emitted += (crate::frame::SYMBOL_FRAME_OVERHEAD
            + crate::frame::SYMBOL_HEADER_BYTES) as u64
            + self.symbol_size as u64;
        frame
    }

    /// Symbol `symbol_id` already encoded to wire bytes.
    pub fn symbol_bytes(&mut self, symbol_id: u64) -> Vec<u8> {
        symbol_frame_bytes(&self.symbol(symbol_id))
    }

    /// Counters for the stream emitted so far.
    pub fn stats(&self) -> EncoderStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_symbol_size_is_rejected() {
        assert_eq!(
            Encoder::new(1, 2, b"abc", 0).unwrap_err(),
            CodecError::ZeroSymbolSize
        );
    }

    #[test]
    fn oversized_block_is_rejected() {
        // Construct the error path without allocating 64 MiB: the length
        // check happens before the slab copy, so probe the boundary fn.
        assert_eq!(source_symbol_count(0, 16), 1);
        assert_eq!(source_symbol_count(1, 16), 1);
        assert_eq!(source_symbol_count(16, 16), 1);
        assert_eq!(source_symbol_count(17, 16), 2);
        let big = vec![0u8; MAX_BLOCK_BYTES + 1];
        assert!(matches!(
            Encoder::new(1, 2, &big, 4096).unwrap_err(),
            CodecError::BlockTooLarge { .. }
        ));
    }

    #[test]
    fn empty_block_still_has_one_symbol() {
        let mut enc = Encoder::new(1, 2, b"", 8).expect("empty block");
        assert_eq!(enc.source_symbols(), 1);
        assert_eq!(enc.block_len(), 0);
        let frame = enc.symbol(0);
        assert_eq!(frame.data, vec![0u8; 8]);
    }

    #[test]
    fn symbols_are_deterministic_and_stats_accumulate() {
        let mut enc = Encoder::new(7, 9, b"the quick brown fox", 4).expect("encoder");
        let a = enc.symbol(3);
        let b = enc.symbol(3);
        assert_eq!(a, b, "same id must yield the same symbol");
        let stats = enc.stats();
        assert_eq!(stats.symbols_emitted, 2);
        assert_eq!(stats.source_symbols, 5);
        assert!(stats.bytes_emitted > 0);
        assert!((stats.expansion_ratio() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn degree_one_symbols_expose_source_chunks() {
        // Across enough ids, some symbol must be degree 1 and therefore
        // equal a raw (padded) source chunk.
        let block = b"0123456789abcdef";
        let enc = Encoder::new(1, 5, block, 4).expect("encoder");
        let chunks: Vec<&[u8]> = block.chunks(4).collect();
        let hit = (0..200u64)
            .map(|id| enc.symbol_data(id))
            .any(|data| chunks.iter().any(|c| *c == &data[..]));
        assert!(hit, "no degree-1 symbol in 200 ids");
    }
}
