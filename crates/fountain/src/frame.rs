//! The symbol wire frame: length-prefixed + CRC32, in the
//! `crates/store/src/frame.rs` idiom.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [len: u32][crc: u32][kind: u8][header: 32 bytes][data: symbol_size bytes]
//!  \_ kind + header + data length   \_ session_id u64 | symbol_id u64
//!           \_ CRC32 of kind..end      | seed u64 | block_len u32
//!                                      | symbol_size u32
//! ```
//!
//! Every symbol is self-describing: it carries the stream parameters
//! (`block_len`, `symbol_size`, `seed`) alongside its id, so a decoder
//! can be bootstrapped from *any* symbol that survives the link — there
//! is no setup handshake to lose. On a one-way link corruption cannot be
//! re-requested, so a frame that fails its CRC is simply dropped, exactly
//! like a symbol the link ate; the codec's redundancy covers both.
//!
//! The CRC32 (IEEE, reflected) is a deliberate copy of the store crate's
//! implementation: the wire format must never drift with a dependency,
//! and the fountain crate takes none.

/// Frame kind for a fountain symbol. Chosen to collide with neither the
/// store WAL kinds nor the phone AOAP message types (0x10..0x13), so a
/// mis-routed buffer fails typed instead of decoding as garbage.
pub const SYMBOL_FRAME_KIND: u8 = 0xF7;

/// Bytes of symbol metadata inside the payload, before the XOR data.
pub const SYMBOL_HEADER_BYTES: usize = 32;

/// Fixed outer framing cost: length + CRC + kind byte.
pub const SYMBOL_FRAME_OVERHEAD: usize = 9;

/// Upper bound on a declared frame length; anything larger is treated as
/// corruption rather than an allocation request.
pub const MAX_SYMBOL_FRAME_BYTES: usize = 1 << 20;

/// One coded symbol plus the stream parameters needed to decode it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolFrame {
    /// Upload session this symbol belongs to.
    pub session_id: u64,
    /// Position in the rateless stream; determines the recipe.
    pub symbol_id: u64,
    /// Stream seed shared by encoder and decoder.
    pub seed: u64,
    /// Length of the source block in bytes (pre-padding).
    pub block_len: u32,
    /// Size of every symbol's XOR payload in bytes.
    pub symbol_size: u32,
    /// The XOR of this symbol's source-symbol neighbors.
    pub data: Vec<u8>,
}

/// Why a byte slice failed to decode as a symbol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolFrameError {
    /// Fewer bytes than the fixed length+CRC prefix.
    TruncatedPrefix,
    /// Declared length is zero or exceeds [`MAX_SYMBOL_FRAME_BYTES`].
    BadLength { declared: usize },
    /// Declared length runs past the end of the buffer.
    TruncatedBody { declared: usize, available: usize },
    /// CRC32 over kind+payload did not match.
    ChecksumMismatch,
    /// Kind byte is not [`SYMBOL_FRAME_KIND`].
    WrongKind { found: u8 },
    /// Payload shorter than the 32-byte symbol header.
    ShortHeader { len: usize },
    /// Data length disagrees with the declared `symbol_size`.
    DataSizeMismatch { declared: u32, actual: usize },
}

impl std::fmt::Display for SymbolFrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TruncatedPrefix => write!(f, "symbol frame shorter than its prefix"),
            Self::BadLength { declared } => {
                write!(f, "symbol frame declares implausible length {declared}")
            }
            Self::TruncatedBody {
                declared,
                available,
            } => write!(
                f,
                "symbol frame declares {declared} bytes but only {available} remain"
            ),
            Self::ChecksumMismatch => write!(f, "symbol frame checksum mismatch"),
            Self::WrongKind { found } => {
                write!(f, "symbol frame kind {found:#04x} is not a fountain symbol")
            }
            Self::ShortHeader { len } => {
                write!(f, "symbol payload of {len} bytes cannot hold the header")
            }
            Self::DataSizeMismatch { declared, actual } => write!(
                f,
                "symbol declares size {declared} but carries {actual} bytes"
            ),
        }
    }
}

impl std::error::Error for SymbolFrameError {}

/// CRC32 (IEEE, reflected). Table built at compile time; the check value
/// is `crc32(b"123456789") == 0xCBF4_3926`.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ u32::MAX
}

/// Append `frame` to `out` in wire format.
pub fn encode_symbol_frame(frame: &SymbolFrame, out: &mut Vec<u8>) {
    let body_len = 1 + SYMBOL_HEADER_BYTES + frame.data.len();
    let start = out.len();
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // CRC placeholder
    out.push(SYMBOL_FRAME_KIND);
    out.extend_from_slice(&frame.session_id.to_le_bytes());
    out.extend_from_slice(&frame.symbol_id.to_le_bytes());
    out.extend_from_slice(&frame.seed.to_le_bytes());
    out.extend_from_slice(&frame.block_len.to_le_bytes());
    out.extend_from_slice(&frame.symbol_size.to_le_bytes());
    out.extend_from_slice(&frame.data);
    let crc = crc32(&out[start + 8..]);
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// `frame` as a standalone wire buffer.
pub fn symbol_frame_bytes(frame: &SymbolFrame) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(SYMBOL_FRAME_OVERHEAD + SYMBOL_HEADER_BYTES + frame.data.len());
    encode_symbol_frame(frame, &mut out);
    out
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

fn read_u64(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(b)
}

/// Decode one symbol frame from the front of `bytes`. On success returns
/// the frame and the number of bytes consumed, so callers can walk a
/// concatenated stream. Never panics, whatever the input.
pub fn decode_symbol_frame(bytes: &[u8]) -> Result<(SymbolFrame, usize), SymbolFrameError> {
    if bytes.len() < 8 {
        return Err(SymbolFrameError::TruncatedPrefix);
    }
    let declared = read_u32(bytes) as usize;
    if declared == 0 || declared > MAX_SYMBOL_FRAME_BYTES {
        return Err(SymbolFrameError::BadLength { declared });
    }
    let total = 8 + declared;
    if bytes.len() < total {
        return Err(SymbolFrameError::TruncatedBody {
            declared,
            available: bytes.len().saturating_sub(8),
        });
    }
    let expected = read_u32(&bytes[4..]);
    let body = &bytes[8..total];
    if crc32(body) != expected {
        return Err(SymbolFrameError::ChecksumMismatch);
    }
    if body[0] != SYMBOL_FRAME_KIND {
        return Err(SymbolFrameError::WrongKind { found: body[0] });
    }
    let payload = &body[1..];
    if payload.len() < SYMBOL_HEADER_BYTES {
        return Err(SymbolFrameError::ShortHeader { len: payload.len() });
    }
    let session_id = read_u64(payload);
    let symbol_id = read_u64(&payload[8..]);
    let seed = read_u64(&payload[16..]);
    let block_len = read_u32(&payload[24..]);
    let symbol_size = read_u32(&payload[24 + 4..]);
    let data = &payload[SYMBOL_HEADER_BYTES..];
    if data.len() != symbol_size as usize {
        return Err(SymbolFrameError::DataSizeMismatch {
            declared: symbol_size,
            actual: data.len(),
        });
    }
    Ok((
        SymbolFrame {
            session_id,
            symbol_id,
            seed,
            block_len,
            symbol_size,
            data: data.to_vec(),
        },
        total,
    ))
}

/// Whether `bytes` begins with a structurally valid symbol frame.
///
/// The gateway uses this to discriminate fountain traffic from legacy
/// framed uploads on the same ingress path: a full CRC check means a
/// legacy upload can never be misread as a symbol.
pub fn is_symbol_frame(bytes: &[u8]) -> bool {
    decode_symbol_frame(bytes).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> SymbolFrame {
        SymbolFrame {
            session_id: 0xDEAD_BEEF_0042,
            symbol_id: 17,
            seed: 0x5EED,
            block_len: 1000,
            symbol_size: 4,
            data: vec![1, 2, 3, 4],
        }
    }

    #[test]
    fn crc_check_value_is_pinned() {
        // The IEEE CRC32 check value; shared with crates/store/src/frame.rs
        // and must never drift.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn round_trip() {
        let frame = sample_frame();
        let wire = symbol_frame_bytes(&frame);
        let (decoded, used) = decode_symbol_frame(&wire).expect("round trip");
        assert_eq!(decoded, frame);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn consumed_length_walks_a_concatenated_stream() {
        let mut wire = Vec::new();
        for id in 0..3u64 {
            let mut f = sample_frame();
            f.symbol_id = id;
            encode_symbol_frame(&f, &mut wire);
        }
        let mut offset = 0;
        for id in 0..3u64 {
            let (f, used) = decode_symbol_frame(&wire[offset..]).expect("stream walk");
            assert_eq!(f.symbol_id, id);
            offset += used;
        }
        assert_eq!(offset, wire.len());
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let wire = symbol_frame_bytes(&sample_frame());
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[byte] ^= 1 << bit;
                // A flip may corrupt the length prefix (truncation errors),
                // the CRC, or the body — but must never decode cleanly to
                // a different frame.
                if let Ok((frame, _)) = decode_symbol_frame(&bad) {
                    assert_eq!(frame, sample_frame(), "bit flip at {byte}:{bit} accepted");
                    panic!("bit flip at {byte}:{bit} produced an identical frame?");
                }
            }
        }
    }

    #[test]
    fn truncations_are_typed_not_panics() {
        let wire = symbol_frame_bytes(&sample_frame());
        for cut in 0..wire.len() {
            let err = decode_symbol_frame(&wire[..cut]).expect_err("truncated");
            assert!(
                matches!(
                    err,
                    SymbolFrameError::TruncatedPrefix | SymbolFrameError::TruncatedBody { .. }
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn zero_and_oversized_lengths_are_rejected() {
        let mut zero = vec![0u8; 16];
        assert_eq!(
            decode_symbol_frame(&zero),
            Err(SymbolFrameError::BadLength { declared: 0 })
        );
        zero[..4].copy_from_slice(&(MAX_SYMBOL_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert!(matches!(
            decode_symbol_frame(&zero),
            Err(SymbolFrameError::BadLength { .. })
        ));
    }

    #[test]
    fn wrong_kind_is_typed() {
        let mut wire = symbol_frame_bytes(&sample_frame());
        wire[8] = 0x10; // legacy AOAP StartTest kind
        let crc = crc32(&wire[8..]);
        wire[4..8].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_symbol_frame(&wire),
            Err(SymbolFrameError::WrongKind { found: 0x10 })
        );
    }

    #[test]
    fn size_mismatch_is_typed() {
        let mut frame = sample_frame();
        frame.symbol_size = 8; // but data is 4 bytes
        let wire = symbol_frame_bytes(&frame);
        assert_eq!(
            decode_symbol_frame(&wire),
            Err(SymbolFrameError::DataSizeMismatch {
                declared: 8,
                actual: 4
            })
        );
    }

    #[test]
    fn legacy_upload_bytes_are_not_symbol_frames() {
        // A phone AOAP frame starts with a message-type byte and a
        // big-endian length; the CRC gate rejects it long before the
        // kind check could be fooled.
        let legacy = [0x10, 0x00, 0x00, 0x00, 0x0C, 1, 2, 3, 4, 5, 6, 7, 8];
        assert!(!is_symbol_frame(&legacy));
        assert!(!is_symbol_frame(b""));
        assert!(!is_symbol_frame(&[0xF7; 64]));
    }
}
