//! The seeded PRNG shared by encoder and decoder.
//!
//! A fountain symbol's *recipe* — its degree and neighbor set — is never
//! carried on the wire. Both sides derive it from `(stream_seed,
//! symbol_id)` through the same deterministic generator, so the only
//! per-symbol metadata a frame needs is the 8-byte symbol id. That makes
//! the generator part of the codec contract: it is implemented here,
//! from scratch, and must never drift with a dependency (the same
//! reasoning that keeps the WAL's CRC in `medsen-store`).
//!
//! The generator is xorshift64* — 3 shifts, 1 multiply, full 2^64−1
//! period — seeded through a SplitMix64 finalizer so that adjacent seeds
//! (symbol ids are sequential) land in uncorrelated streams.

/// SplitMix64 finalizer: a bijective avalanche over one 64-bit word.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seed for symbol `symbol_id` of the stream seeded `stream_seed`.
///
/// Mixing happens *before* the xor so that streams whose seeds differ
/// only in low bits still produce unrelated symbol recipes.
#[inline]
pub fn symbol_seed(stream_seed: u64, symbol_id: u64) -> u64 {
    mix64(mix64(stream_seed) ^ mix64(symbol_id ^ 0xF0E1_D2C3_B4A5_9687))
}

/// xorshift64* with SplitMix64 seeding. Deterministic, dependency-free,
/// and identical on both ends of the one-way link.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// A generator whose stream is fully determined by `seed` (any value,
    /// including 0, is a valid seed — the mixer keeps the state nonzero).
    pub fn new(seed: u64) -> Self {
        let mut state = mix64(seed);
        if state == 0 {
            // xorshift fixes the all-zero state; mix64(x) == 0 only for
            // one input, which this constant displaces.
            state = 0x9E37_79B9_7F4A_7C15;
        }
        Self { state }
    }

    /// The next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    ///
    /// Plain modulo: the bias for the `n` values this codec draws
    /// (degrees and indices, well under 2^32) is below 2^-32 and both
    /// sides share it, so it cancels out of the contract.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds must not correlate");
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = XorShift64::new(0);
        let first = rng.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, rng.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = XorShift64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn below_covers_the_range() {
        let mut rng = XorShift64::new(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 draws must hit all of 0..5");
    }

    #[test]
    fn symbol_seeds_are_distinct_across_ids_and_streams() {
        let mut seeds = std::collections::HashSet::new();
        for stream in 0..8u64 {
            for id in 0..64u64 {
                assert!(seeds.insert(symbol_seed(stream, id)), "collision");
            }
        }
    }
}
