//! Robust soliton degree distribution and per-symbol recipes.
//!
//! LT codes work because most coded symbols XOR together only a handful
//! of source symbols (so peeling keeps finding degree-1 symbols to
//! propagate) while a thin tail of high-degree symbols guarantees every
//! source symbol is covered. The *robust* soliton distribution of Luby's
//! original construction delivers exactly that shape: the ideal soliton
//! ρ(d) plus a spike τ(d) near `k/S` that keeps the decoder's ripple from
//! dying out, normalised into a CDF we can sample with one uniform draw.

use crate::prng::{symbol_seed, XorShift64};

/// Default robust-soliton `c` parameter (ripple width scaling).
pub const DEFAULT_C: f64 = 0.05;
/// Default robust-soliton `delta` parameter (decode failure bound).
pub const DEFAULT_DELTA: f64 = 0.5;

/// A sampled robust soliton distribution over degrees `1..=k`,
/// precomputed as a CDF so each symbol costs one `f64` draw plus a
/// binary search.
#[derive(Debug, Clone)]
pub struct RobustSoliton {
    k: usize,
    /// `cdf[d - 1]` = P(degree <= d). `cdf[k - 1]` is exactly 1.0.
    cdf: Vec<f64>,
}

impl RobustSoliton {
    /// The distribution for `k` source symbols with the crate's default
    /// `(c, delta)` parameters. `k` must be at least 1.
    pub fn new(k: usize) -> Self {
        Self::with_params(k, DEFAULT_C, DEFAULT_DELTA)
    }

    /// The distribution with explicit robust-soliton parameters.
    pub fn with_params(k: usize, c: f64, delta: f64) -> Self {
        assert!(k >= 1, "a block has at least one source symbol");
        if k == 1 {
            // Degenerate block: every symbol is the single source symbol.
            return Self { k, cdf: vec![1.0] };
        }
        let kf = k as f64;
        // Expected ripple size; clamp so the spike index stays in 1..=k.
        let s = (c * (kf / delta).ln() * kf.sqrt()).max(1.0);
        let spike = ((kf / s).round() as usize).clamp(1, k);

        let mut weights = vec![0.0f64; k];
        for d in 1..=k {
            // Ideal soliton ρ(d).
            let rho = if d == 1 {
                1.0 / kf
            } else {
                1.0 / (d as f64 * (d as f64 - 1.0))
            };
            // Robust addition τ(d).
            let tau = if d < spike {
                s / (d as f64 * kf)
            } else if d == spike {
                s * (s / delta).ln() / kf
            } else {
                0.0
            };
            weights[d - 1] = rho + tau;
        }

        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf = Vec::with_capacity(k);
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard the tail against float rounding so sampling can never
        // walk past the end.
        cdf[k - 1] = 1.0;
        Self { k, cdf }
    }

    /// Number of source symbols this distribution was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// One degree draw in `1..=k`.
    pub fn sample(&self, rng: &mut XorShift64) -> usize {
        let u = rng.next_f64();
        // First index whose CDF value exceeds the draw.
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i + 1).min(self.k),
        }
    }

    /// The recipe for symbol `symbol_id` of the stream seeded
    /// `stream_seed`: a set of distinct source-symbol indices in `0..k`.
    ///
    /// Both the encoder and the decoder call this with the same inputs,
    /// which is what lets the wire carry nothing but the symbol id.
    /// Neighbor selection uses Floyd's combination sampling so a degree-d
    /// draw costs O(d) rng draws regardless of `k`.
    pub fn neighbors(&self, stream_seed: u64, symbol_id: u64) -> Vec<u32> {
        let mut rng = XorShift64::new(symbol_seed(stream_seed, symbol_id));
        let degree = self.sample(&mut rng);
        let k = self.k as u64;
        let mut chosen: Vec<u32> = Vec::with_capacity(degree);
        for j in (k - degree as u64)..k {
            let t = rng.below(j + 1) as u32;
            if chosen.contains(&t) {
                chosen.push(j as u32);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        for k in [1, 2, 3, 10, 100, 1000] {
            let dist = RobustSoliton::new(k);
            let mut prev = 0.0;
            for &p in &dist.cdf {
                assert!(p >= prev, "k={k}: CDF must be non-decreasing");
                prev = p;
            }
            assert_eq!(dist.cdf[k - 1], 1.0);
        }
    }

    #[test]
    fn k_of_one_always_samples_degree_one() {
        let dist = RobustSoliton::new(1);
        let mut rng = XorShift64::new(3);
        for _ in 0..50 {
            assert_eq!(dist.sample(&mut rng), 1);
        }
    }

    #[test]
    fn degrees_stay_in_range_and_skew_low() {
        let dist = RobustSoliton::new(100);
        let mut rng = XorShift64::new(11);
        let mut low = 0usize;
        for _ in 0..2000 {
            let d = dist.sample(&mut rng);
            assert!((1..=100).contains(&d));
            if d <= 3 {
                low += 1;
            }
        }
        // Soliton mass concentrates at small degrees: roughly ρ(1)+ρ(2)+ρ(3)
        // plus the robust spike ≈ 0.7 for k=100. Loose bound to stay
        // seed-stable.
        assert!(low > 1000, "only {low}/2000 draws had degree <= 3");
    }

    #[test]
    fn degree_one_occurs_often_enough_to_seed_peeling() {
        let dist = RobustSoliton::new(64);
        let mut rng = XorShift64::new(5);
        let ones = (0..2000).filter(|_| dist.sample(&mut rng) == 1).count();
        assert!(ones > 50, "peeling needs degree-1 symbols, saw {ones}/2000");
    }

    #[test]
    fn neighbors_are_distinct_in_range_and_deterministic() {
        let dist = RobustSoliton::new(37);
        for id in 0..200u64 {
            let n1 = dist.neighbors(99, id);
            let n2 = dist.neighbors(99, id);
            assert_eq!(n1, n2, "recipes must be reproducible");
            assert!(!n1.is_empty());
            let mut sorted = n1.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n1.len(), "neighbors must be distinct");
            assert!(sorted.iter().all(|&i| (i as usize) < 37));
        }
    }

    #[test]
    fn neighbors_differ_across_streams() {
        let dist = RobustSoliton::new(37);
        let distinct = (0..64u64)
            .filter(|&id| dist.neighbors(1, id) != dist.neighbors(2, id))
            .count();
        assert!(distinct > 48, "streams must decorrelate, got {distinct}/64");
    }

    #[test]
    fn every_source_symbol_is_eventually_covered() {
        let dist = RobustSoliton::new(50);
        let mut covered = [false; 50];
        for id in 0..400u64 {
            for n in dist.neighbors(7, id) {
                covered[n as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "coverage hole in 400 symbols");
    }
}
