//! # medsen-fountain — rateless one-way uploads
//!
//! An LT/fountain erasure codec for the RF-restricted clinic scenario:
//! the phone compresses a cytometry upload, cuts it into `k` source
//! symbols, and emits an endless stream of *coded* symbols — each the
//! XOR of a pseudo-random neighbor set drawn from a robust soliton
//! degree distribution. The gateway reassembles the block from **any**
//! sufficiently large subset of the stream via peeling, so the link
//! needs no back-channel at all: no ACKs, no retries, no RF downlink
//! into the clinic.
//!
//! The codec contract is deliberately self-contained:
//!
//! - [`prng`] — the seeded xorshift64* generator both sides share.
//!   Symbol recipes are derived from `(stream_seed, symbol_id)`, so no
//!   neighbor lists ever cross the wire.
//! - [`soliton`] — the robust soliton degree distribution and the
//!   per-symbol recipe sampler.
//! - [`encode`] — [`Encoder`]: flat-slab XOR symbol generation with
//!   [`EncoderStats`].
//! - [`decode`] — [`Decoder`]: the peeling/belief-propagation decoder
//!   with [`DecoderStats`] (including the decode overhead ratio).
//! - [`frame`] — the length-prefixed + CRC32 symbol wire frame, in the
//!   `crates/store` framing idiom. Corrupt frames are dropped like lost
//!   symbols; the code's redundancy covers both.
//!
//! Like `medsen-store`, `medsen-telemetry`, and `medsen-replica`, this
//! crate is std-only with zero dependencies (CI-enforced): the wire
//! format and PRNG are a cross-device contract that must never drift
//! with a dependency bump.

pub mod decode;
pub mod encode;
pub mod frame;
pub mod prng;
pub mod soliton;

pub use decode::{Decoder, DecoderStats, SymbolRejected};
pub use encode::{source_symbol_count, CodecError, Encoder, EncoderStats, MAX_BLOCK_BYTES};
pub use frame::{
    crc32, decode_symbol_frame, encode_symbol_frame, is_symbol_frame, symbol_frame_bytes,
    SymbolFrame, SymbolFrameError, MAX_SYMBOL_FRAME_BYTES, SYMBOL_FRAME_KIND,
    SYMBOL_FRAME_OVERHEAD, SYMBOL_HEADER_BYTES,
};
pub use prng::XorShift64;
pub use soliton::RobustSoliton;

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: encode → frame → lossy wire → parse → peel → block.
    #[test]
    fn framed_round_trip_over_a_lossy_wire() {
        let block: Vec<u8> = (0..3000u32).map(|i| (i * 131) as u8).collect();
        let mut enc = Encoder::new(0xC11_71C, 2024, &block, 128).expect("encoder");
        let mut dec: Option<Decoder> = None;
        let mut rng = XorShift64::new(55);
        for id in 0..10_000u64 {
            let wire = enc.symbol_bytes(id);
            if rng.next_f64() < 0.3 {
                continue; // the link ate it; nobody will ever know
            }
            let (frame, used) = decode_symbol_frame(&wire).expect("frame");
            assert_eq!(used, wire.len());
            let d = dec.get_or_insert_with(|| Decoder::for_frame(&frame).expect("bootstrap"));
            if d.push_frame(&frame).expect("push") {
                break;
            }
        }
        let d = dec.expect("at least one symbol survived");
        assert!(d.is_complete());
        assert_eq!(d.block().expect("block"), block);
        assert!(d.stats().overhead_ratio() >= 1.0);
    }
}
