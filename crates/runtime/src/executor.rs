//! The run queue and worker-thread pool, plus a standalone [`block_on`].
//!
//! The executor is deliberately simple: one injector run queue protected
//! by a mutex + condvar, N worker threads popping tasks, and `Arc`-based
//! wakers (via [`std::task::Wake`]) pushing tasks back when their I/O —
//! here, timers and channels — becomes ready. Simplicity is the point:
//! every later subsystem (session sharding, drain/pause) must be able to
//! reason about exactly when a task runs.

use crate::task::{BoxFuture, JoinHandle, JoinShared, Task};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread;

pub(crate) struct Inner {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    shutting_down: AtomicBool,
    spawned: AtomicUsize,
}

impl Inner {
    pub(crate) fn enqueue(&self, task: Arc<Task>) {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(task);
        drop(queue);
        self.available.notify_one();
    }
}

/// A fixed pool of worker threads multiplexing any number of tasks.
///
/// Dropping the executor shuts it down (draining already-runnable tasks);
/// call [`Executor::shutdown`] to do so explicitly.
pub struct Executor {
    inner: Arc<Inner>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            spawned: AtomicUsize::new(0),
        });
        let threads = (0..threads.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("medsen-rt-{i}"))
                    .spawn(move || worker(inner))
                    .expect("spawn runtime worker")
            })
            .collect();
        Self { inner, threads }
    }

    /// Schedules `future` as a new task and returns a handle to its output.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let shared = JoinShared::new();
        let completion = Arc::clone(&shared);
        let wrapped: BoxFuture = Box::pin(async move {
            completion.complete(future.await);
        });
        self.inner.spawned.fetch_add(1, Ordering::Relaxed);
        let task = Task::new(wrapped, Arc::clone(&self.inner));
        self.inner.enqueue(task);
        JoinHandle { shared }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Total tasks spawned over the executor's lifetime.
    pub fn tasks_spawned(&self) -> usize {
        self.inner.spawned.load(Ordering::Relaxed)
    }

    /// Stops the pool: already-runnable tasks are drained, workers join.
    /// Tasks still parked on external wakers (timers, channels) are
    /// abandoned, so quiesce the workload first.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.inner.shutting_down.store(true, Ordering::Release);
        self.inner.available.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads.len())
            .field("tasks_spawned", &self.tasks_spawned())
            .finish()
    }
}

fn worker(inner: Arc<Inner>) {
    loop {
        let task = {
            let mut queue = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(task) = queue.pop_front() {
                    break Some(task);
                }
                if inner.shutting_down.load(Ordering::Acquire) {
                    break None;
                }
                queue = inner
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match task {
            Some(task) => task.run(),
            None => return,
        }
    }
}

/// Waker that unparks a specific thread; used by [`block_on`].
struct ThreadWaker {
    thread: thread::Thread,
    notified: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        Self::wake_by_ref(&self);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.notified.swap(true, Ordering::AcqRel) {
            self.thread.unpark();
        }
    }
}

/// Drives `future` to completion on the calling thread, parking between
/// polls. Independent of any [`Executor`]: sessions use it to await
/// timer-paced submissions without occupying a pool thread.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let parker = Arc::new(ThreadWaker {
        thread: thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&parker));
    let mut cx = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        if let Poll::Ready(value) = future.as_mut().poll(&mut cx) {
            return value;
        }
        while !parker.notified.swap(false, Ordering::AcqRel) {
            thread::park();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn block_on_returns_ready_value() {
        assert_eq!(block_on(async { 2 + 2 }), 4);
    }

    #[test]
    fn spawn_join_round_trip() {
        let executor = Executor::new(2);
        let handle = executor.spawn(async { 21 * 2 });
        assert_eq!(handle.join(), 42);
        executor.shutdown();
    }

    #[test]
    fn join_handle_is_awaitable() {
        let executor = Executor::new(2);
        let inner = executor.spawn(async { "nested" });
        let outer = executor.spawn(async move { inner.await.len() });
        assert_eq!(outer.join(), 6);
        executor.shutdown();
    }

    #[test]
    fn many_tasks_on_few_threads() {
        let executor = Executor::new(2);
        let total = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..256)
            .map(|i| {
                let total = Arc::clone(&total);
                executor.spawn(async move {
                    total.fetch_add(i, Ordering::Relaxed);
                })
            })
            .collect();
        for handle in handles {
            handle.join();
        }
        assert_eq!(total.load(Ordering::Relaxed), (0..256).sum::<u32>());
        assert_eq!(executor.threads(), 2);
        assert_eq!(executor.tasks_spawned(), 256);
        executor.shutdown();
    }

    /// A future that wakes itself *during* poll must be polled again: the
    /// wake lands in the `RUNNING` state and re-arms the task (the
    /// `NOTIFIED` transition), instead of being dropped.
    #[test]
    fn wake_during_poll_rearms_the_task() {
        struct SelfWake {
            remaining: u32,
        }
        impl Future for SelfWake {
            type Output = u32;
            fn poll(mut self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                if self.remaining == 0 {
                    Poll::Ready(0)
                } else {
                    self.remaining -= 1;
                    // Wake while the task is RUNNING.
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        let executor = Executor::new(1);
        let handle = executor.spawn(SelfWake { remaining: 64 });
        assert_eq!(handle.join(), 0);
        executor.shutdown();
    }

    /// A trace context installed inside a task survives its yields (the
    /// task's `TaskSlot` parks it between polls) and never leaks onto
    /// sibling tasks interleaved on the same worker thread.
    #[test]
    fn trace_context_is_task_local_across_yields() {
        use medsen_telemetry::{ActiveTrace, SpanRecorder, Stage, TraceId};
        use std::time::Instant;

        let recorder = Arc::new(SpanRecorder::with_capacity(64));
        let executor = Executor::new(1);
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let recorder = Arc::clone(&recorder);
                executor.spawn(async move {
                    let id = TraceId::mint();
                    let _guard = medsen_telemetry::install(ActiveTrace::unsampled(
                        id,
                        Arc::clone(&recorder),
                    ));
                    for _ in 0..4 {
                        crate::yield_now().await;
                        // After every yield this thread has interleaved
                        // other tasks; the context must still be ours.
                        let current =
                            medsen_telemetry::current().expect("context survives the yield");
                        assert_eq!(current.id, id, "task {i} sees its own trace");
                        medsen_telemetry::record(Stage::Service, i, Instant::now(), Instant::now());
                    }
                    id
                })
            })
            .collect();
        let ids: Vec<TraceId> = handles.into_iter().map(|h| h.join()).collect();
        for (i, id) in ids.iter().enumerate() {
            let spans = recorder.spans_for(*id);
            assert_eq!(spans.len(), 4, "task {i} recorded one span per yield");
            assert!(spans.iter().all(|s| s.tag == i as u32));
        }
        executor.shutdown();
    }

    /// Redundant wakes collapse: waking an already-scheduled task many
    /// times queues it exactly once per poll cycle.
    #[test]
    fn redundant_wakes_are_idempotent() {
        struct CountPolls {
            polls: Arc<AtomicU32>,
            woken: bool,
        }
        impl Future for CountPolls {
            type Output = ();
            fn poll(mut self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                self.polls.fetch_add(1, Ordering::Relaxed);
                if self.woken {
                    Poll::Ready(())
                } else {
                    self.woken = true;
                    let waker = cx.waker().clone();
                    // Hammer the waker mid-poll: every wake after the
                    // first lands on a RUNNING/NOTIFIED task.
                    for _ in 0..100 {
                        waker.wake_by_ref();
                    }
                    Poll::Pending
                }
            }
        }
        let polls = Arc::new(AtomicU32::new(0));
        let executor = Executor::new(1);
        let handle = executor.spawn(CountPolls {
            polls: Arc::clone(&polls),
            woken: false,
        });
        handle.join();
        // One initial poll plus at most a couple of re-polls — never 100.
        assert!(polls.load(Ordering::Relaxed) <= 3);
        executor.shutdown();
    }
}
